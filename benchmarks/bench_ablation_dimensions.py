"""Ablation — latent dimensionality d on the Crime workload.

DESIGN.md calls out d as the lever that gives γ leverage: d close to the
feature count reduces PFR to a rotation (no fairness effect); d too small
starves the classifier. This ablation traces the whole curve.
"""

from repro.experiments import ExperimentHarness, render_table
from repro.experiments import make_workload
from repro.experiments.figures import FigureResult

from conftest import bench_scale, save_render


def _run():
    data = make_workload("crime", seed=0, scale=bench_scale("crime"))
    rows = []
    for d in (1, 2, 4, 8, 16, 25):
        harness = ExperimentHarness(data, seed=0, n_components=d)
        result = harness.run_method("pfr", gamma=1.0)
        rows.append(
            [
                d,
                result.auc,
                result.consistency_wf,
                result.rates.gap("positive_rate"),
            ]
        )
    text = render_table(["d", "AUC", "Consistency(WF)", "parity gap"], rows)
    return FigureResult(
        figure_id="ablation_dimensions",
        description="crime: PFR vs. latent dimensionality d",
        data={"rows": rows},
        text=text,
    )


def test_bench_ablation_dimensions(once):
    result = once(_run)
    save_render(result)
    rows = {r[0]: r for r in result.data["rows"]}
    # Full-dimensional PFR is a rotation: its parity gap stays large, while
    # the compressed operating point (d=2) closes most of it.
    assert rows[2][3] < rows[25][3]
    # Utility grows with d (more of the input is preserved).
    assert rows[25][1] > rows[1][1]
