"""Ablation — eigensolver path: dense LAPACK vs. sparse Lanczos.

The paper solves the eigenproblem with LAPACK (dense). For the standard
``VᵀV = I`` problem the trace-optimization layer also offers a Lanczos
path; this bench times both on a COMPAS-scale kernel objective and checks
they agree.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import smallest_eigenvectors
from repro.graphs import knn_graph, laplacian


@pytest.fixture(scope="module")
def big_sparse_objective():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(3000, 6))
    L = laplacian(knn_graph(X, n_neighbors=10))
    # n×n sparse PSD matrix (kernel-PFR-shaped problem).
    return L.tocsr()


def test_bench_dense_eigensolver(benchmark, big_sparse_objective):
    values, vectors = benchmark.pedantic(
        smallest_eigenvectors,
        args=(big_sparse_objective, 4),
        kwargs={"solver": "dense"},
        rounds=1,
        iterations=1,
    )
    assert values.shape == (4,)
    np.testing.assert_allclose(vectors.T @ vectors, np.eye(4), atol=1e-8)


def test_bench_sparse_eigensolver(benchmark, big_sparse_objective):
    values, vectors = benchmark.pedantic(
        smallest_eigenvectors,
        args=(big_sparse_objective, 4),
        kwargs={"solver": "sparse"},
        rounds=1,
        iterations=1,
    )
    dense_values, _ = smallest_eigenvectors(big_sparse_objective, 4, solver="dense")
    np.testing.assert_allclose(values, dense_values, atol=1e-5)
