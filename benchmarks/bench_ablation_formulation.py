"""Ablation — the paper's two formulation ambiguities, quantified.

DESIGN.md §5 documents two resolved ambiguities: the orthonormality
constraint (Eq. 5's ``ZZᵀ=I`` vs Eq. 6's ``VᵀV=I``) and the balancing of
the two graph terms (trace-normalized objectives vs the verbatim
combination). This bench runs all four combinations on the Crime workload
so the repository carries evidence for its defaults, not just argument.
"""

from repro.experiments import ExperimentHarness, render_table
from repro.experiments import make_workload
from repro.experiments.figures import FigureResult

from conftest import bench_scale, save_render


def _run():
    data = make_workload("crime", seed=0, scale=bench_scale("crime"))
    rows = []
    for constraint in ("z", "v"):
        for rescale in ("objective", "none"):
            harness = ExperimentHarness(data, seed=0, n_components=2)
            result = harness.run_method(
                "pfr", gamma=0.8, constraint=constraint, rescale=rescale
            )
            rows.append(
                [
                    f"constraint={constraint}, rescale={rescale}",
                    result.auc,
                    result.consistency_wf,
                    result.rates.gap("positive_rate"),
                ]
            )
    text = render_table(
        ["formulation", "AUC", "Consistency(WF)", "parity gap"], rows
    )
    return FigureResult(
        figure_id="ablation_formulation",
        description="crime: Eq.5-vs-Eq.6 constraint and graph-balancing variants",
        data={"rows": rows},
        text=text,
    )


def test_bench_ablation_formulation(once):
    result = once(_run)
    save_render(result)
    by_name = {row[0]: row for row in result.data["rows"]}
    default = by_name["constraint=z, rescale=objective"]
    literal = by_name["constraint=v, rescale=none"]
    # The default (Eq. 5 constraint + trace balancing) must dominate the
    # literal Eq. 6 reading on utility — the null-space pathology DESIGN.md
    # describes shows up as a large AUC loss.
    assert default[1] > literal[1] + 0.05
