"""Ablation — kernel PFR (§3.3.4) vs. linear PFR on non-linear data.

The paper defers the kernelized variant to future work; this bench
quantifies what it buys on a workload where the class structure is
non-linear (concentric rings) while the fairness graph links individuals
across two interleaved groups.
"""

import numpy as np

from repro.core import PFR, KernelPFR
from repro.experiments import render_table
from repro.experiments.figures import FigureResult
from repro.graphs import pairwise_judgment_graph
from repro.ml import LogisticRegression, StandardScaler, roc_auc_score, train_test_split

from conftest import save_render


def _make_rings(n_per_ring=150, seed=0):
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0, 2 * np.pi, size=2 * n_per_ring)
    radii = np.concatenate(
        [rng.normal(1.0, 0.08, n_per_ring), rng.normal(3.0, 0.08, n_per_ring)]
    )
    X = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    y = (radii > 2.0).astype(np.int64)
    return X, y


def _evaluate(model, X, y, train, test, w_fair):
    Z_train = model.fit(X[train], w_fair).transform(X[train])
    Z_test = model.transform(X[test])
    scaler = StandardScaler().fit(Z_train)
    clf = LogisticRegression().fit(scaler.transform(Z_train), y[train])
    return roc_auc_score(
        y[test], clf.predict_proba(scaler.transform(Z_test))[:, 1]
    )


def _run():
    X, y = _make_rings()
    indices = np.arange(len(y))
    train, test = train_test_split(indices, test_size=0.3, stratify=y, seed=0)
    w_fair = pairwise_judgment_graph(
        [(i, i + 1) for i in range(0, len(train) - 1, 2)], n=len(train)
    )
    rows = [
        ["linear PFR",
         _evaluate(PFR(n_components=2, gamma=0.3, n_neighbors=8), X, y, train, test, w_fair)],
        ["kernel PFR (rbf)",
         _evaluate(KernelPFR(n_components=8, gamma=0.3, n_neighbors=8, kernel="rbf"),
                   X, y, train, test, w_fair)],
        # degree-2 polynomials of 2 features span only 6 monomials, so the
        # kernel rank caps the component count at 6.
        ["kernel PFR (poly)",
         _evaluate(KernelPFR(n_components=5, gamma=0.3, n_neighbors=8,
                             kernel="poly", degree=2), X, y, train, test, w_fair)],
    ]
    text = render_table(["model", "AUC (rings)"], rows)
    return FigureResult(
        figure_id="ablation_kernel",
        description="kernel vs. linear PFR on concentric rings",
        data={"rows": rows},
        text=text,
    )


def test_bench_ablation_kernel(once):
    result = once(_run)
    save_render(result)
    by_name = {r[0]: r[1] for r in result.data["rows"]}
    assert by_name["kernel PFR (rbf)"] > by_name["linear PFR"] + 0.2
    assert by_name["kernel PFR (poly)"] > by_name["linear PFR"] + 0.1
