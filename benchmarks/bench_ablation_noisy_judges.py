"""Ablation — judge quality: how PFR degrades with unreliable judgments.

The paper assumes judges give coarse but *honest* verdicts. This ablation
injects Likert-judge noise into the synthetic workload's elicitation and
traces PFR's utility and fairness as the judgments degrade from reliable
to random.
"""

import numpy as np

from repro.experiments import ExperimentHarness, render_table
from repro.experiments import make_workload
from repro.experiments.figures import FigureResult
from repro.graphs import equivalence_class_graph, likert_judgments
from repro.metrics import restrict_graph

from conftest import bench_scale, save_render


def _run():
    data = make_workload("synthetic", seed=0, scale=bench_scale("synthetic"))
    # Ground-truth suitability: distance above the group's own admission
    # threshold (the simulator's generative notion of deservingness).
    total = data.X[:, 0] + data.X[:, 1]
    thresholds = np.where(data.s == 0, 210.0, 200.0)
    suitability = total - thresholds

    rows = []
    for noise in (0.0, 0.05, 0.1, 0.2, 0.4):
        levels = likert_judgments(
            suitability, n_levels=5, judge_noise=noise, coverage=0.9, seed=1
        )
        w_fair = equivalence_class_graph(levels, mask=levels != -1)

        harness = ExperimentHarness(data, seed=0, n_components=2)
        harness.prepare()
        # Swap in the elicited graph for the harness's default one.
        harness.W_fair_full = w_fair
        harness.W_fair_train = restrict_graph(w_fair, harness.train_idx)
        harness.W_fair_test = restrict_graph(w_fair, harness.test_idx)
        result = harness.run_method("pfr", gamma=0.9)
        rows.append(
            [noise, result.auc, result.consistency_wf,
             result.rates.gap("positive_rate")]
        )
    text = render_table(
        ["judge noise", "AUC", "Consistency(WF)", "parity gap"], rows
    )
    return FigureResult(
        figure_id="ablation_noisy_judges",
        description="synthetic: PFR under Likert-judge noise",
        data={"rows": rows},
        text=text,
    )


def test_bench_ablation_noisy_judges(once):
    result = once(_run)
    save_render(result)
    rows = result.data["rows"]
    reliable = rows[0]
    # Reliable judges give high utility; the pipeline keeps working (finite,
    # reasonable AUC) even with badly noisy judges.
    assert reliable[1] > 0.9
    for _, auc, consistency_wf, _ in rows:
        assert np.isfinite(auc) and auc > 0.6
        assert 0.0 <= consistency_wf <= 1.0
