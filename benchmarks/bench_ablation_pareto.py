"""Ablation — the best-achievable trade-off (the framing of Figures 2/5/8).

The paper reports "the best achievable trade-off between utility and the
two notions of individual fairness". This bench traces PFR's
(AUC, Consistency(WF)) Pareto frontier over γ on the Crime workload and
checks the frontier is a genuine curve: fairness is bought with utility.
"""

from repro.experiments import render_table, tradeoff_frontier
from repro.experiments.figures import FigureResult, _harness

from conftest import bench_scale, save_render


def _run():
    harness = _harness("crime", seed=0, scale=bench_scale("crime"))
    out = tradeoff_frontier(
        harness,
        "pfr",
        grid={"gamma": [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]},
    )
    rows = [
        [params["gamma"], result.auc, result.consistency_wf]
        for params, result in out["frontier"]
    ]
    text = render_table(["gamma", "AUC", "Consistency(WF)"], rows)
    return FigureResult(
        figure_id="ablation_pareto",
        description="crime: PFR's AUC vs Consistency(WF) Pareto frontier over gamma",
        data={"frontier": rows, "n_evaluated": len(out["results"])},
        text=text,
    )


def test_bench_ablation_pareto(once):
    result = once(_run)
    save_render(result)
    frontier = result.data["frontier"]
    assert 2 <= len(frontier) <= result.data["n_evaluated"]
    # Sorted by AUC: consistency must decrease as AUC increases — a true
    # trade-off curve, not a single dominating point.
    aucs = [row[1] for row in frontier]
    consistencies = [row[2] for row in frontier]
    assert aucs == sorted(aucs)
    assert consistencies == sorted(consistencies, reverse=True)
