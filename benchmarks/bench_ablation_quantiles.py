"""Ablation — fairness-graph granularity: number of quantiles q.

The paper fixes q implicitly (deciles for COMPAS). This ablation sweeps q
on the synthetic workload: coarser buckets give denser graphs and stronger
cross-group coupling; finer buckets approach exact rank matching.
"""

from repro.experiments import ExperimentHarness, render_table
from repro.experiments import make_workload

from conftest import bench_scale, save_render
from repro.experiments.figures import FigureResult


def _run():
    data = make_workload("synthetic", seed=0, scale=bench_scale("synthetic"))
    rows = []
    for q in (2, 4, 10, 25, 50):
        harness = ExperimentHarness(data, seed=0, n_quantiles=q, n_components=2)
        result = harness.run_method("pfr", gamma=0.9)
        rows.append(
            [q, result.auc, result.consistency_wf,
             result.rates.gap("positive_rate")]
        )
    text = render_table(["q", "AUC", "Consistency(WF)", "parity gap"], rows)
    return FigureResult(
        figure_id="ablation_quantiles",
        description="synthetic: PFR vs. quantile count q",
        data={"rows": rows},
        text=text,
    )


def test_bench_ablation_quantiles(once):
    result = once(_run)
    save_render(result)
    rows = result.data["rows"]
    # Every granularity must stay strongly utile and far above the
    # unconstrained parity gap (~0.5 on this workload).
    for _, auc, consistency_wf, parity in rows:
        assert auc > 0.9
        assert parity < 0.3
        assert consistency_wf > 0.5
