"""Ablation — sparse judgments: subsample the fairness graph's edges.

The paper stresses that pairwise judgments "may be sparse, if such
information is obtained only for sampled representatives". This ablation
keeps 100 % / 30 % / 10 % / 3 % of WF's edges and measures how gracefully
PFR degrades.
"""

import numpy as np

from repro.core import PFR
from repro.experiments import ExperimentHarness, render_table
from repro.experiments import make_workload
from repro.experiments.figures import FigureResult
from repro.graphs import subsample_edges
from repro.metrics import consistency, restrict_graph
from repro.ml import LogisticRegression, StandardScaler, roc_auc_score

from conftest import bench_scale, save_render


def _run():
    data = make_workload("synthetic", seed=0, scale=bench_scale("synthetic"))
    harness = ExperimentHarness(data, seed=0, n_components=2)
    harness.prepare()

    rows = []
    for fraction in (1.0, 0.3, 0.1, 0.03):
        w_sparse = subsample_edges(harness.W_fair_train, fraction, seed=1)
        model = PFR(
            n_components=2, gamma=0.9, exclude_columns=harness.protected
        ).fit(harness.X_train, w_sparse)
        scaler = StandardScaler().fit(model.transform(harness.X_train))
        Z_train = scaler.transform(model.transform(harness.X_train))
        Z_test = scaler.transform(model.transform(harness.X_test))
        clf = LogisticRegression().fit(Z_train, harness.y_train)
        pred = clf.predict(Z_test)
        rows.append(
            [
                fraction,
                roc_auc_score(harness.y_test, clf.predict_proba(Z_test)[:, 1]),
                consistency(pred, harness.W_fair_test),
            ]
        )
    text = render_table(["edge fraction", "AUC", "Consistency(WF)"], rows)
    return FigureResult(
        figure_id="ablation_sparsity",
        description="synthetic: PFR under fairness-graph edge subsampling",
        data={"rows": rows},
        text=text,
    )


def test_bench_ablation_sparsity(once):
    result = once(_run)
    save_render(result)
    rows = result.data["rows"]
    full_auc = rows[0][1]
    # Even at 10% of the judgments, PFR keeps most of its utility — the
    # paper's sparse-elicitation premise.
    ten_percent = [r for r in rows if r[0] == 0.1][0]
    assert ten_percent[1] > full_auc - 0.15
    assert all(np.isfinite(r[1]) for r in rows)
