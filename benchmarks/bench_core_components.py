"""Micro-benchmarks of the core computational kernels.

These time the individual pieces that the figure regenerations compose:
k-NN graph construction, fairness-graph construction, PFR fitting, the
baselines' optimizers, and the downstream classifier — at COMPAS-scale
inputs where meaningful.
"""

import numpy as np
import pytest

from repro.baselines import IFair, LFR
from repro.core import PFR
from repro.graphs import between_group_quantile_graph, knn_graph
from repro.ml import LogisticRegression


@pytest.fixture(scope="module")
def payload():
    rng = np.random.default_rng(0)
    n = 4000
    X = rng.normal(size=(n, 7))
    y = (X[:, 0] + rng.normal(scale=0.8, size=n) > 0).astype(np.int64)
    s = rng.integers(0, 2, n)
    scores = X[:, 0] + rng.normal(scale=0.5, size=n)
    w_fair = between_group_quantile_graph(scores, s, n_quantiles=10)
    return X, y, s, w_fair


def test_bench_knn_graph(benchmark, payload):
    X, *_ = payload
    W = benchmark(knn_graph, X, n_neighbors=10)
    assert W.shape == (len(X), len(X))


def test_bench_quantile_graph(benchmark, payload):
    X, _, s, _ = payload
    rng = np.random.default_rng(1)
    scores = rng.random(len(X))
    W = benchmark(
        between_group_quantile_graph, scores, s, n_quantiles=10
    )
    assert W.nnz > 0


def test_bench_pfr_fit(benchmark, payload):
    X, _, _, w_fair = payload

    def fit():
        return PFR(n_components=3, gamma=0.7).fit(X, w_fair)

    model = benchmark.pedantic(fit, rounds=2, iterations=1, warmup_rounds=0)
    assert model.components_.shape == (7, 3)


def test_bench_logistic_regression(benchmark, payload):
    X, y, *_ = payload
    model = benchmark(lambda: LogisticRegression().fit(X, y))
    assert model.score(X, y) > 0.6


def test_bench_lfr_fit(benchmark, payload):
    X, y, s, _ = payload

    def fit():
        return LFR(n_prototypes=10, max_iter=50, seed=0).fit(X, y, s=s)

    model = benchmark.pedantic(fit, rounds=1, iterations=1, warmup_rounds=0)
    assert model.prototypes_.shape == (10, 7)


def test_bench_ifair_fit(benchmark, payload):
    X, *_ = payload

    def fit():
        return IFair(n_prototypes=10, max_iter=50, seed=0).fit(X)

    model = benchmark.pedantic(fit, rounds=1, iterations=1, warmup_rounds=0)
    assert model.prototypes_.shape == (10, 7)
