"""Figure 10 — COMPAS: influence of γ."""

from repro.experiments import figure10

from conftest import bench_scale, save_render


def test_bench_figure10(once):
    result = once(
        figure10,
        scale=bench_scale("compas"),
        seed=0,
        gammas=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    )
    save_render(result)

    series = result.data["series"]
    sweep = result.data["sweep"]
    # γ ↑ ⇒ Consistency(WF) ↑ and Consistency(WX) ↓; the demographic-parity
    # gap collapses. (Deviation vs the paper: overall AUC stays flat or
    # rises slightly instead of declining — see EXPERIMENTS.md.)
    assert series["consistency_wf"][-1] > series["consistency_wf"][0]
    assert series["consistency_wx"][-1] < series["consistency_wx"][0]
    assert (
        sweep[-1].rates.gap("positive_rate")
        < sweep[0].rates.gap("positive_rate")
    )
