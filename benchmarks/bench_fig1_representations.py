"""Figure 1 — learned 2-D representations on the synthetic dataset."""

from repro.experiments import figure1

from conftest import bench_scale, save_render


def test_bench_figure1(once):
    result = once(figure1, scale=bench_scale("synthetic"), seed=0)
    save_render(result)

    geometry = result.data["geometry"]
    # Original separates the groups; PFR mixes them and aligns the
    # deserving candidates of both groups.
    assert geometry["original"]["cross_group_distance"] > 1.05
    assert (
        geometry["pfr"]["cross_group_distance"]
        < geometry["original"]["cross_group_distance"]
    )
    assert (
        geometry["pfr"]["deserving_alignment"]
        < geometry["original"]["deserving_alignment"] - 0.2
    )
