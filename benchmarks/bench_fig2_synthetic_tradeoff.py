"""Figure 2 — synthetic: AUC / Consistency(WX) / Consistency(WF) bars."""

from repro.experiments import figure2

from conftest import bench_scale, save_render


def test_bench_figure2(once):
    result = once(figure2, scale=bench_scale("synthetic"), seed=0)
    save_render(result)

    results = result.data["results"]
    # PFR wins Consistency(WF) by a wide margin over Original and LFR, and
    # its AUC is at least on par with every method (the fairness graph is
    # aligned with ground truth on this workload).
    assert results["pfr"].consistency_wf > results["original"].consistency_wf + 0.1
    assert results["pfr"].consistency_wf > results["lfr"].consistency_wf
    assert results["pfr"].auc >= results["original"].auc - 0.02
    assert results["pfr"].auc >= results["lfr"].auc - 0.02
