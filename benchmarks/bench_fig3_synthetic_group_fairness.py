"""Figure 3 — synthetic: per-group positive rates and error rates."""

from repro.experiments import figure3

from conftest import bench_scale, save_render


def test_bench_figure3(once):
    result = once(figure3, scale=bench_scale("synthetic"), seed=0)
    save_render(result)

    results = result.data["results"]
    original = results["original"].rates
    pfr = results["pfr"].rates
    # The original data is strongly biased; PFR closes the gaps.
    assert original.gap("positive_rate") > 0.2
    assert pfr.gap("positive_rate") < original.gap("positive_rate")
    assert pfr.gap("fnr") < original.gap("fnr")
    # Hardt (the group-fairness reference point) balances error rates.
    hardt = results["hardt"].rates
    assert hardt.gap("fpr") < 0.15
