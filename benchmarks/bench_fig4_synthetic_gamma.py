"""Figure 4 — synthetic: influence of γ on fairness and utility."""

from repro.experiments import figure4

from conftest import bench_scale, save_render


def test_bench_figure4(once):
    result = once(
        figure4,
        scale=bench_scale("synthetic"),
        seed=0,
        gammas=(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
    )
    save_render(result)

    series = result.data["series"]
    # γ ↑ ⇒ Consistency(WF) ↑, Consistency(WX) ↓, AUC ↑ (graph aligned
    # with ground truth on the synthetic workload).
    assert series["consistency_wf"][-1] > series["consistency_wf"][0] + 0.2
    assert series["consistency_wx"][-1] < series["consistency_wx"][0]
    assert series["auc_any"][-1] > series["auc_any"][0] + 0.05
