"""Figure 5 — Crime & Communities: utility vs. individual fairness."""

from repro.experiments import figure5

from conftest import bench_scale, save_render


def test_bench_figure5(once):
    result = once(figure5, scale=bench_scale("crime"), seed=0)
    save_render(result)

    results = result.data["results"]
    # PFR wins Consistency(WF) against the unconstrained baselines outright
    # and is at worst statistically tied with LFR+, while paying some AUC
    # relative to Original+ — the paper's trade-off.
    assert results["pfr"].consistency_wf > results["original+"].consistency_wf
    assert results["pfr"].consistency_wf > results["ifair+"].consistency_wf
    best_baseline_wf = max(
        r.consistency_wf for m, r in results.items() if m != "pfr"
    )
    assert results["pfr"].consistency_wf > best_baseline_wf - 0.02
    assert results["pfr"].auc < results["original+"].auc
    assert results["pfr"].auc > 0.6
