"""Figure 6 — Crime & Communities: group fairness (incl. Hardt+)."""

from repro.experiments import figure6

from conftest import bench_scale, save_render


def test_bench_figure6(once):
    result = once(figure6, scale=bench_scale("crime"), seed=0)
    save_render(result)

    results = result.data["results"]
    pfr = results["pfr"].rates
    # PFR shrinks the parity gap dramatically relative to the
    # unconstrained baselines and balances error rates comparably to
    # Hardt+ (mean of the FPR and FNR gaps).
    for method in ("original+", "ifair+"):
        assert pfr.gap("positive_rate") < results[method].rates.gap("positive_rate")
    pfr_mean = 0.5 * (pfr.gap("fpr") + pfr.gap("fnr"))
    hardt = results["hardt+"].rates
    hardt_mean = 0.5 * (hardt.gap("fpr") + hardt.gap("fnr"))
    # Hardt+ optimizes error equality directly; PFR gets within 0.1 of it
    # without any group-fairness term (see EXPERIMENTS.md for the residual
    # FPR gap on this extreme-base-rate workload).
    assert pfr_mean <= hardt_mean + 0.1
