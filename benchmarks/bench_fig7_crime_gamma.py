"""Figure 7 — Crime & Communities: influence of γ."""

from repro.experiments import figure7

from conftest import bench_scale, save_render


def test_bench_figure7(once):
    result = once(
        figure7,
        scale=bench_scale("crime"),
        seed=0,
        gammas=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    )
    save_render(result)

    series = result.data["series"]
    # γ ↑ ⇒ overall AUC ↓ while the protected group's AUC improves and the
    # between-group AUC gap narrows — the paper's key Crime result.
    assert series["auc_any"][-1] < series["auc_any"][0]
    assert series["auc_s1"][-1] > series["auc_s1"][0]
    gap_start = abs(series["auc_s0"][0] - series["auc_s1"][0])
    gap_end = abs(series["auc_s0"][-1] - series["auc_s1"][-1])
    assert gap_end < gap_start
