"""Figure 8 — COMPAS: utility vs. individual fairness."""

from repro.experiments import figure8

from conftest import bench_scale, save_render


def test_bench_figure8(once):
    result = once(figure8, scale=bench_scale("compas"), seed=0)
    save_render(result)

    results = result.data["results"]
    # §4.3.3: PFR performs similarly to the other representation learners
    # on utility and individual fairness, and beats the unconstrained
    # baselines on Consistency(WF).
    assert results["pfr"].auc > results["original+"].auc - 0.05
    assert results["pfr"].consistency_wf > results["original+"].consistency_wf
    assert results["pfr"].consistency_wf > results["ifair+"].consistency_wf
