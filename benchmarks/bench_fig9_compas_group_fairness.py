"""Figure 9 — COMPAS: group fairness (incl. Hardt+)."""

from repro.experiments import figure9

from conftest import bench_scale, save_render


def test_bench_figure9(once):
    result = once(figure9, scale=bench_scale("compas"), seed=0)
    save_render(result)

    results = result.data["results"]
    pfr = results["pfr"].rates
    # "PFR clearly outperforms all other methods on group fairness": near-
    # equal positive rates, and error balance as good as Hardt+.
    assert pfr.gap("positive_rate") < 0.12
    for method in ("original+", "ifair+"):
        assert pfr.gap("positive_rate") < results[method].rates.gap("positive_rate")
    pfr_mean = 0.5 * (pfr.gap("fpr") + pfr.gap("fnr"))
    hardt = results["hardt+"].rates
    hardt_mean = 0.5 * (hardt.gap("fpr") + hardt.gap("fnr"))
    assert pfr_mean <= hardt_mean + 0.05
