"""Staged-fit-pipeline benchmark: γ-sweeps via ``fit_path`` vs naive refits.

The paper's headline experiments sweep γ (Figures 4, 7, 10). A naive sweep
refits PFR from scratch at every point — rebuilding the k-NN heat-kernel
graph, both Laplacians, the projected objective matrices and (kernel case)
re-eigendecomposing the kernel matrix, even though only the scalar mix
weight changes. :func:`repro.core.fit_path` stages that precomputation once
(:class:`repro.core.SpectralFitPlan`) and pays only a mix + small
eigensolve per γ.

This benchmark times a 10-point γ-sweep both ways for the linear PFR and
the KernelPFR, asserts the staged path is **≥ 3×** faster on both, and
asserts every swept estimator is numerically equal (≤ 1e-8) to an
independent ``fit()`` at the same operating point — the speedup must not
change the science.

Writes machine-readable results to ``benchmarks/output/BENCH_fit_path.json``
(override with ``REPRO_BENCH_FIT_PATH_JSON``). Problem sizes scale with
``REPRO_BENCH_SCALE`` so the CI smoke run stays cheap.

Run directly (``python benchmarks/bench_fit_path.py``) or via pytest
(``pytest benchmarks/bench_fit_path.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core import PFR, KernelPFR, fit_path
from repro.graphs import between_group_quantile_graph

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_FIT_PATH_JSON",
        Path(__file__).parent / "output" / "BENCH_fit_path.json",
    )
)

_SCALE = max(0.05, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

# Linear PFR: graph construction + projections dominate a naive refit.
N_LINEAR = max(120, int(1600 * _SCALE))
# Kernel PFR: the O(n³) kernel eigendecomposition dominates; keep n modest
# so the naive loop finishes quickly even at full scale.
N_KERNEL = max(80, int(500 * _SCALE))
N_FEATURES = 16
N_COMPONENTS = 4
GAMMAS = [round(g, 4) for g in np.linspace(0.0, 1.0, 10)]

# The PR's acceptance floor at full scale. CI smoke runs override it via
# REPRO_BENCH_SPEEDUP_FLOOR: with millisecond-scale timed windows on noisy
# shared runners, a scheduler stall could otherwise flake an unrelated PR.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "3.0"))
EQUALITY_TOL = 1e-8
N_REPEATS = 2


def _workload(n: int, seed: int = 0):
    """Synthetic workload: features, groups, and a quantile fairness graph."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, N_FEATURES))
    s = rng.integers(0, 2, n)
    scores = X[:, 0] + rng.normal(scale=0.5, size=n)
    w_fair = between_group_quantile_graph(scores, s, n_quantiles=8)
    return X, w_fair


def _max_abs_diff(model_a, model_b) -> float:
    """Largest elementwise gap between two fitted PFR-family estimators."""
    basis_a = getattr(model_a, "components_", None)
    if basis_a is None:
        basis_a = model_a.alphas_
        basis_b = model_b.alphas_
    else:
        basis_b = model_b.components_
    return max(
        float(np.abs(basis_a - basis_b).max()),
        float(np.abs(model_a.eigenvalues_ - model_b.eigenvalues_).max()),
    )


def _timed(fn) -> tuple[float, object]:
    """Best-of-N wall time (transient stalls only ever slow a pass down)."""
    best, result = float("inf"), None
    for _ in range(N_REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench_sweep(template, X, w_fair) -> dict:
    """Time naive per-γ refits vs one staged fit_path on the same workload."""
    cls = type(template)
    params = template.get_params()

    def naive_sweep():
        return [
            cls(**{**params, "gamma": gamma}).fit(X, w_fair) for gamma in GAMMAS
        ]

    naive_seconds, naive = _timed(naive_sweep)
    path_seconds, staged = _timed(
        lambda: fit_path(X, w_fair, gammas=GAMMAS, estimator=template)
    )

    max_diff = max(
        _max_abs_diff(a, b) for a, b in zip(staged, naive)
    )
    return {
        "n_samples": X.shape[0],
        "n_gammas": len(GAMMAS),
        "naive_seconds": naive_seconds,
        "path_seconds": path_seconds,
        "speedup": naive_seconds / path_seconds if path_seconds > 0 else float("inf"),
        "max_abs_diff": max_diff,
    }


def run_benchmark() -> dict:
    """10-point γ-sweep, naive vs staged, for linear and kernel PFR."""
    results = {}

    X, w_fair = _workload(N_LINEAR, seed=0)
    results["pfr"] = _bench_sweep(
        PFR(n_components=N_COMPONENTS), X, w_fair
    )

    X, w_fair = _workload(N_KERNEL, seed=1)
    results["kernel_pfr"] = _bench_sweep(
        KernelPFR(n_components=N_COMPONENTS, kernel="rbf"), X, w_fair
    )

    return {
        "benchmark": "fit_path",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "n_linear": N_LINEAR,
            "n_kernel": N_KERNEL,
            "n_features": N_FEATURES,
            "n_components": N_COMPONENTS,
            "gammas": GAMMAS,
            "scale": _SCALE,
            "speedup_floor": SPEEDUP_FLOOR,
            "equality_tol": EQUALITY_TOL,
        },
        "results": results,
    }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """The PR's acceptance floors; returns a list of failure strings."""
    failures = []
    for name, result in payload["results"].items():
        if result["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: speedup {result['speedup']:.2f}x < {SPEEDUP_FLOOR}x"
            )
        if result["max_abs_diff"] > EQUALITY_TOL:
            failures.append(
                f"{name}: max_abs_diff {result['max_abs_diff']:.2e} > {EQUALITY_TOL}"
            )
    return failures


def test_fit_path_sweep_speedup():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    failures = _check(payload)
    for name, result in payload["results"].items():
        print(
            f"{name:12s} naive {result['naive_seconds']:7.3f}s  "
            f"path {result['path_seconds']:7.3f}s  "
            f"speedup {result['speedup']:7.1f}x  "
            f"max_abs_diff {result['max_abs_diff']:.2e}",
            file=sys.stderr,
        )
    print("PASS" if not failures else "FAIL: " + "; ".join(failures), file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
