"""Load benchmark for the HTTP serving tier (repro.serving.http).

Drives a real :class:`~repro.serving.ServingServer` over loopback TCP with
keep-alive ``http.client`` connections — one persistent connection per
client thread, the pattern a production sidecar or gateway would use —
and measures per-request latency (p50/p99) and aggregate rows/sec at
concurrency **1, 32 and 256**. Every request is a single-row
``POST /transform`` against a pinned spec, so requests/sec == rows/sec
and the numbers capture the full network path: parse, dispatch, worker
hop, transform, JSON response.

Writes machine-readable results to ``benchmarks/output/BENCH_http.json``
(override with ``REPRO_BENCH_HTTP_JSON``) and asserts the PR's acceptance
floors: error rate at or below ``REPRO_BENCH_HTTP_MAX_ERROR_RATE``
(default 0 — the server is provisioned with ``max_queue=512`` so c=256
must not shed load) and p99 latency at or below
``REPRO_BENCH_HTTP_P99_MAX`` seconds (default 2.0 — a wide margin so the
floor only trips on real regressions, not CI noise).

``REPRO_BENCH_SCALE`` (float, default 1.0) scales the request counts for
smoke runs: CI uses ``REPRO_BENCH_SCALE=0.1``.

Run directly (``python benchmarks/bench_http.py``) or via pytest
(``pytest benchmarks/bench_http.py``).
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import PFR, __version__
from repro.graphs import between_group_quantile_graph
from repro.serving import ModelRegistry, ServingServer, TransformService

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_HTTP_JSON",
        Path(__file__).parent / "output" / "BENCH_http.json",
    )
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
P99_MAX_SECONDS = float(os.environ.get("REPRO_BENCH_HTTP_P99_MAX", "2.0"))
MAX_ERROR_RATE = float(os.environ.get("REPRO_BENCH_HTTP_MAX_ERROR_RATE", "0.0"))

N_TRAIN = 2000
N_FEATURES = 12
N_COMPONENTS = 4
CONCURRENCY_LEVELS = (1, 32, 256)
#: Requests per client thread at each level, before SCALE. Low-concurrency
#: levels send more per thread so every level has a statistically useful
#: request count without the c=256 level taking minutes.
REQUESTS_PER_CLIENT = {1: 400, 32: 60, 256: 20}
#: Distinct query rows the clients cycle through (shared pool, so after
#: the first lap the LRU serves hits — the heavy-tailed online shape).
N_DISTINCT_ROWS = 512

SERVER_WORKERS = 8
SERVER_MAX_QUEUE = 512


def _fitted_model(seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_TRAIN, N_FEATURES))
    s = rng.integers(0, 2, N_TRAIN)
    scores = X[:, 0] + rng.normal(scale=0.5, size=N_TRAIN)
    w_fair = between_group_quantile_graph(scores, s, n_quantiles=10)
    model = PFR(n_components=N_COMPONENTS, gamma=0.7).fit(X, w_fair)
    return model, rng


def _client_worker(host, port, spec, bodies, n_requests, start_barrier,
                   latencies, errors, index):
    """One keep-alive connection issuing ``n_requests`` single-row posts."""
    times = []
    n_errors = 0
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        start_barrier.wait()
        for i in range(n_requests):
            body = bodies[(index + i) % len(bodies)]
            begin = time.perf_counter()
            try:
                connection.request("POST", "/transform", body=body)
                response = connection.getresponse()
                response.read()
                status = response.status
            except OSError:
                # Connection-level failure: count it and reconnect.
                status = -1
                connection.close()
                connection = http.client.HTTPConnection(host, port, timeout=30)
            times.append(time.perf_counter() - begin)
            if status != 200:
                n_errors += 1
    finally:
        connection.close()
    latencies[index] = times
    errors[index] = n_errors


def _bench_level(server, spec, bodies, concurrency) -> dict:
    """Latency/throughput for ``concurrency`` persistent client threads."""
    per_client = max(1, int(round(REQUESTS_PER_CLIENT[concurrency] * SCALE)))
    latencies = [None] * concurrency
    errors = [0] * concurrency
    # +1 slot: the coordinator releases the clients and starts the clock
    # at the same instant, so connection setup is outside the measurement.
    start_barrier = threading.Barrier(concurrency + 1)
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(server.host, server.port, spec, bodies, per_client,
                  start_barrier, latencies, errors, index),
        )
        for index in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    all_times = np.array([t for times in latencies for t in times])
    n_requests = int(all_times.size)
    n_errors = int(sum(errors))
    return {
        "concurrency": concurrency,
        "requests": n_requests,
        "errors": n_errors,
        "error_rate": n_errors / n_requests if n_requests else 0.0,
        "wall_seconds": wall,
        "rows_per_sec": n_requests / wall if wall > 0 else float("inf"),
        "latency_p50_ms": float(np.percentile(all_times, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(all_times, 99)) * 1e3,
        "latency_mean_ms": float(all_times.mean()) * 1e3,
    }


def run_benchmark(registry_root) -> dict:
    model, rng = _fitted_model()
    registry = ModelRegistry(registry_root)
    record = registry.register("pfr-http-bench", model)
    spec = record.spec  # pinned name@version — production pattern

    rows = rng.normal(size=(N_DISTINCT_ROWS, N_FEATURES))
    bodies = [
        json.dumps({"model": spec, "row": row.tolist()}).encode("utf-8")
        for row in rows
    ]

    service = TransformService(registry)
    results = {}
    with ServingServer(
        service,
        n_workers=SERVER_WORKERS,
        max_queue=SERVER_MAX_QUEUE,
    ) as server:
        # Warm up: load the model, JIT the code paths, fill the row cache.
        _bench_level(server, spec, bodies, 1)
        for concurrency in CONCURRENCY_LEVELS:
            results[f"c{concurrency}"] = _bench_level(
                server, spec, bodies, concurrency
            )

    return {
        "benchmark": "http_serving",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "n_train": N_TRAIN,
            "n_features": N_FEATURES,
            "n_components": N_COMPONENTS,
            "n_distinct_rows": N_DISTINCT_ROWS,
            "scale": SCALE,
            "server_workers": SERVER_WORKERS,
            "server_max_queue": SERVER_MAX_QUEUE,
            "concurrency_levels": list(CONCURRENCY_LEVELS),
            "requests_per_client": dict(REQUESTS_PER_CLIENT),
        },
        "floors": {
            "p99_max_seconds": P99_MAX_SECONDS,
            "max_error_rate": MAX_ERROR_RATE,
        },
        "results": results,
    }


def check_floors(payload: dict) -> list[str]:
    """Floor violations (empty list == pass)."""
    failures = []
    for key, entry in payload["results"].items():
        if entry["error_rate"] > MAX_ERROR_RATE:
            failures.append(
                f"{key}: error rate {entry['error_rate']:.4f} exceeds "
                f"{MAX_ERROR_RATE}"
            )
        if entry["latency_p99_ms"] > P99_MAX_SECONDS * 1e3:
            failures.append(
                f"{key}: p99 {entry['latency_p99_ms']:.1f} ms exceeds "
                f"{P99_MAX_SECONDS * 1e3:.0f} ms"
            )
    return failures


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def test_http_serving_floors(tmp_path):
    payload = run_benchmark(tmp_path / "registry")
    path = write_results(payload)
    assert path.is_file()
    assert not check_floors(payload)
    # All three levels actually ran and did real work.
    assert set(payload["results"]) == {"c1", "c32", "c256"}
    for entry in payload["results"].values():
        assert entry["requests"] >= entry["concurrency"]
        assert entry["rows_per_sec"] > 0


def main() -> int:
    with tempfile.TemporaryDirectory() as root:
        payload = run_benchmark(Path(root) / "registry")
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    for key, entry in payload["results"].items():
        print(
            f"{key:>5}: {entry['rows_per_sec']:10.0f} rows/s   "
            f"p50 {entry['latency_p50_ms']:7.2f} ms   "
            f"p99 {entry['latency_p99_ms']:7.2f} ms   "
            f"errors {entry['errors']}/{entry['requests']}",
            file=sys.stderr,
        )
    failures = check_floors(payload)
    for failure in failures:
        print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
    print("PASS" if not failures else "FAIL", file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
