"""Landmark-Nyström benchmark: fit PFR on 50k+ rows, serve unseen users.

The exact PFR eigenproblem is transductive: the kernel variant costs
O(n³) time and O(n²) memory, which stops being runnable long before the
ROADMAP's "millions of users" scale (a 50k-row kernel matrix alone is
20 GB). ``extension="nystrom"`` (:mod:`repro.core.approx`) solves on
m ≪ n landmarks instead. This benchmark quantifies the trade:

1. **Fidelity @ n = 2k** — exact and landmark fits on the same seeded
   blob workload; embedding fidelity is the aligned cosine similarity on
   held-out rows. Floors: ≥ 0.95 at the configured sub-n budget, and
   exact parity (≤ 1e-8) at m = n.
2. **Scaling curve to n ≥ 50k** — landmark fit times measured at every n;
   exact kernel fit times measured where affordable and extrapolated with
   a fitted power law beyond that. Floor: the landmark fit at the largest
   n must beat the exact extrapolation by ≥ 5×.
3. **Transform throughput** — rows/second pushing *unseen* users through
   the fitted landmark model, the serving-path number.

Writes ``benchmarks/output/BENCH_landmark.json`` (override with
``REPRO_BENCH_LANDMARK_JSON``). Problem sizes scale with
``REPRO_BENCH_SCALE`` so the CI smoke run stays cheap.

Run directly (``python benchmarks/bench_landmark.py``) or via pytest
(``pytest benchmarks/bench_landmark.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core import KernelPFR, PFR, embedding_fidelity
from repro.datasets import simulate_blobs
from repro.graphs import knn_graph

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_LANDMARK_JSON",
        Path(__file__).parent / "output" / "BENCH_landmark.json",
    )
)

_SCALE = max(0.02, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

N_FEATURES = 12
N_COMPONENTS = 4
GAMMA = 0.5

# Fidelity study: exact fits are still cheap at this size.
N_FIDELITY = max(300, int(2000 * _SCALE))
FIDELITY_BUDGET_FRACTIONS = (0.05, 0.15, 0.4)

# Scaling study: the landmark path runs at every n; the exact kernel path
# runs only up to N_EXACT_CAP and is extrapolated beyond.
N_SCALING = sorted({max(500, int(n * _SCALE)) for n in (2_000, 8_000, 20_000, 50_000)})
N_EXACT_CAP = max(400, int(1600 * _SCALE))
N_LANDMARKS = max(64, int(2000 * _SCALE))
N_UNSEEN = max(1000, int(10_000 * _SCALE))

SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_LANDMARK_SPEEDUP_FLOOR", "5.0"))
FIDELITY_FLOOR = float(os.environ.get("REPRO_BENCH_LANDMARK_FIDELITY_FLOOR", "0.95"))
PARITY_TOL = 1e-8


def _workload(n: int, seed: int = 0, n_eval: int = 0):
    """Blob dataset + a *sparse* fairness graph that stays O(n) in memory.

    Clique-style quantile graphs are fine at paper scale but quadratic in
    the worst case; at 50k+ rows the benchmark links each individual to
    its nearest peers in merit-score space instead — the same "similar
    merit ⇒ similar treatment" judgment, sparsified.

    With ``n_eval > 0``, that many extra rows are drawn from the *same*
    population and held out: they never enter the fairness graph or the
    fit, which makes them genuine unseen users for fidelity / throughput.
    """
    data = simulate_blobs(n + n_eval, n_features=N_FEATURES, seed=seed)
    X_train = data.X[:n]
    merit_train = data.side_information[:n]
    w_fair = knn_graph(merit_train[:, None], n_neighbors=8, bandwidth=1.0)
    if n_eval:
        return X_train, w_fair, data.X[n:]
    return X_train, w_fair


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _landmark_estimator(cls, m: int, **extra):
    return cls(
        n_components=N_COMPONENTS,
        gamma=GAMMA,
        extension="nystrom",
        landmarks=m,
        landmark_strategy="kmeans++",
        landmark_seed=0,
        **extra,
    )


def bench_fidelity() -> dict:
    """Exact vs landmark embeddings on held-out rows at fidelity scale."""
    X, w_fair, X_eval = _workload(
        N_FIDELITY, seed=5, n_eval=max(200, N_FIDELITY // 4)
    )

    results = {}
    for name, cls in (("pfr", PFR), ("kernel_pfr", KernelPFR)):
        exact_seconds, exact = _timed(
            lambda cls=cls: cls(n_components=N_COMPONENTS, gamma=GAMMA).fit(X, w_fair)
        )
        Z_ref = exact.transform(X_eval)
        curve = []
        for fraction in FIDELITY_BUDGET_FRACTIONS:
            m = max(N_COMPONENTS + 2, int(N_FIDELITY * fraction))
            seconds, model = _timed(
                lambda cls=cls, m=m: _landmark_estimator(cls, m).fit(X, w_fair)
            )
            curve.append(
                {
                    "landmarks": m,
                    "fit_seconds": seconds,
                    "fidelity": embedding_fidelity(Z_ref, model.transform(X_eval)),
                }
            )
        # m = n: the landmark fit must reproduce the exact solve.
        parity_model = _landmark_estimator(cls, N_FIDELITY).fit(X, w_fair)
        basis = "components_" if name == "pfr" else "alphas_"
        parity = float(
            np.abs(getattr(parity_model, basis) - getattr(exact, basis)).max()
        )
        results[name] = {
            "n": N_FIDELITY,
            "exact_fit_seconds": exact_seconds,
            "curve": curve,
            "best_fidelity": max(point["fidelity"] for point in curve),
            "parity_max_abs_diff_at_m_equals_n": parity,
        }
    return results


def _fit_power_law(ns, seconds) -> tuple[float, float]:
    """Least-squares fit of ``t = a·n^b`` in log-log space."""
    log_n = np.log(np.asarray(ns, dtype=np.float64))
    log_t = np.log(np.maximum(np.asarray(seconds, dtype=np.float64), 1e-9))
    b, log_a = np.polyfit(log_n, log_t, 1)
    return float(np.exp(log_a)), float(b)


def bench_scaling() -> dict:
    """Landmark fit + transform throughput across n; exact extrapolation."""
    # Exact kernel fits where affordable — the extrapolation anchors.
    exact_ns = sorted({max(200, N_EXACT_CAP // 4), N_EXACT_CAP // 2, N_EXACT_CAP})
    exact_seconds = []
    for n in exact_ns:
        X, w_fair = _workload(n, seed=1)
        seconds, _ = _timed(
            lambda: KernelPFR(n_components=N_COMPONENTS, gamma=GAMMA).fit(X, w_fair)
        )
        exact_seconds.append(seconds)
    coefficient, exponent = _fit_power_law(exact_ns, exact_seconds)

    curve = []
    for n in N_SCALING:
        m = min(N_LANDMARKS, n)
        X, w_fair, X_unseen = _workload(n, seed=1, n_eval=N_UNSEEN)
        fit_seconds, model = _timed(
            lambda m=m: _landmark_estimator(KernelPFR, m).fit(X, w_fair)
        )
        transform_seconds, Z = _timed(lambda: model.transform(X_unseen))
        exact_extrapolated = coefficient * n**exponent
        curve.append(
            {
                "n": n,
                "landmarks": m,
                "fit_seconds": fit_seconds,
                "exact_seconds_extrapolated": exact_extrapolated,
                "fit_speedup_vs_exact_extrapolation": exact_extrapolated / fit_seconds,
                "transform_rows_per_second": (
                    N_UNSEEN / transform_seconds if transform_seconds > 0 else 0.0
                ),
                "embedding_width": int(Z.shape[1]),
            }
        )
    return {
        "exact_anchor_ns": exact_ns,
        "exact_anchor_seconds": exact_seconds,
        "exact_power_law": {"coefficient": coefficient, "exponent": exponent},
        "curve": curve,
    }


def run_benchmark() -> dict:
    return {
        "benchmark": "landmark",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "scale": _SCALE,
            "n_features": N_FEATURES,
            "n_components": N_COMPONENTS,
            "gamma": GAMMA,
            "n_fidelity": N_FIDELITY,
            "fidelity_budget_fractions": list(FIDELITY_BUDGET_FRACTIONS),
            "n_scaling": list(N_SCALING),
            "n_exact_cap": N_EXACT_CAP,
            "n_landmarks": N_LANDMARKS,
            "n_unseen": N_UNSEEN,
            "speedup_floor": SPEEDUP_FLOOR,
            "fidelity_floor": FIDELITY_FLOOR,
            "parity_tol": PARITY_TOL,
        },
        "fidelity": bench_fidelity(),
        "scaling": bench_scaling(),
    }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """The PR's acceptance floors; returns a list of failure strings."""
    failures = []
    for name, result in payload["fidelity"].items():
        if result["best_fidelity"] < FIDELITY_FLOOR:
            failures.append(
                f"{name}: best fidelity {result['best_fidelity']:.4f} < "
                f"{FIDELITY_FLOOR}"
            )
        parity = result["parity_max_abs_diff_at_m_equals_n"]
        if parity > PARITY_TOL:
            failures.append(f"{name}: m=n parity {parity:.2e} > {PARITY_TOL}")
    largest = payload["scaling"]["curve"][-1]
    if largest["fit_speedup_vs_exact_extrapolation"] < SPEEDUP_FLOOR:
        failures.append(
            f"n={largest['n']}: landmark speedup "
            f"{largest['fit_speedup_vs_exact_extrapolation']:.1f}x < "
            f"{SPEEDUP_FLOOR}x vs exact extrapolation"
        )
    return failures


def test_landmark_scaling():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    for name, result in payload["fidelity"].items():
        best = result["best_fidelity"]
        parity = result["parity_max_abs_diff_at_m_equals_n"]
        print(
            f"{name:12s} n={result['n']:6d}  best fidelity {best:.4f}  "
            f"m=n parity {parity:.2e}",
            file=sys.stderr,
        )
    for point in payload["scaling"]["curve"]:
        print(
            f"n={point['n']:6d} m={point['landmarks']:5d}  "
            f"fit {point['fit_seconds']:8.2f}s  "
            f"exact~{point['exact_seconds_extrapolated']:10.1f}s  "
            f"speedup {point['fit_speedup_vs_exact_extrapolation']:10.1f}x  "
            f"transform {point['transform_rows_per_second']:9.0f} rows/s",
            file=sys.stderr,
        )
    failures = _check(payload)
    print("PASS" if not failures else "FAIL: " + "; ".join(failures), file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
