"""Observability overhead benchmark: instrumented vs uninstrumented runs.

PR 6 threads :mod:`repro.obs` spans and counters through the fit plan,
the run ledger and the serving layer with a "zero cost when off"
contract: with no sink attached, every hook is one global load, a truth
test and a constant return. This benchmark quantifies both sides:

1. **Fit throughput** — a landmark (Nyström) PFR fit at n = 5k rows,
   timed with tracing off and with a JSONL trace attached. Floor: the
   traced fit stays within ``REPRO_BENCH_OBS_OVERHEAD_MAX`` (default
   2×) of the untraced one.
2. **Transform throughput** — rows/second through a
   :class:`~repro.serving.TransformService`, tracing off vs on, same
   floor. The untraced number is the serving-path baseline.
3. **Per-stage breakdown** — the traced n = 5k fit's wall time split by
   span name (``plan.landmarks`` / ``plan.graph`` / ``plan.laplacian`` /
   ``plan.projection`` / ``plan.solve``), i.e. what ``repro obs
   summary`` prints, as machine-readable JSON.
4. **Off-mode hook cost** — nanoseconds per disabled ``span()`` call,
   the number behind the "zero cost when off" claim.

Writes ``benchmarks/output/BENCH_obs.json`` (override with
``REPRO_BENCH_OBS_JSON``). Problem sizes scale with ``REPRO_BENCH_SCALE``
so the CI smoke run stays cheap.

Run directly (``python benchmarks/bench_obs.py``) or via pytest
(``pytest benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import PFR, __version__
from repro.graphs import between_group_quantile_graph
from repro.obs import (
    RingBufferSink,
    add_sink,
    remove_sink,
    span,
    summarize_trace,
    tracing,
)
from repro.serving import ModelRegistry, TransformService

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_OBS_JSON",
        Path(__file__).parent / "output" / "BENCH_obs.json",
    )
)

_SCALE = max(0.05, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

# The headline configuration: a 5k-row landmark fit (the ROADMAP's
# scaling path), scaled down for CI smoke runs.
N_FIT = max(300, int(5000 * _SCALE))
N_LANDMARKS = max(60, int(N_FIT * 0.05))
N_FEATURES = 12
N_COMPONENTS = 4
N_TRANSFORM_ROWS = max(500, int(20000 * _SCALE))
TRANSFORM_BATCH = 256
N_REPEATS = 2
N_OFF_SPAN_CALLS = 200_000

# Acceptance ceiling on traced/untraced wall-time ratios. Tracing writes
# one JSONL line per span — real work, and for sub-millisecond transform
# requests that write is a visible fraction of the request — so this is a
# sanity bound ("tracing does not multiply run time"), not a micro-target;
# CI smoke runs on shared runners can loosen it via env.
OVERHEAD_MAX = float(os.environ.get("REPRO_BENCH_OBS_OVERHEAD_MAX", "2.0"))


def _workload(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, N_FEATURES))
    s = rng.integers(0, 2, n)
    scores = X[:, 0] + rng.normal(scale=0.5, size=n)
    w_fair = between_group_quantile_graph(scores, s, n_quantiles=8)
    return X, w_fair


def _estimator() -> PFR:
    return PFR(
        n_components=N_COMPONENTS,
        gamma=0.5,
        extension="nystrom",
        landmarks=N_LANDMARKS,
        landmark_seed=0,
    )


def _timed(fn) -> float:
    """Best-of-N wall time (transient stalls only ever slow a pass down)."""
    best = float("inf")
    for _ in range(N_REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_fit(X, w_fair, trace_dir: Path) -> dict:
    untraced = _timed(lambda: _estimator().fit(X, w_fair))
    trace_path = trace_dir / "fit.jsonl"

    def traced_fit():
        with tracing(trace_path, metrics=False):
            _estimator().fit(X, w_fair)

    traced = _timed(traced_fit)
    return {
        "n_samples": int(X.shape[0]),
        "n_landmarks": N_LANDMARKS,
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "overhead_ratio": traced / untraced if untraced > 0 else float("inf"),
    }


def _bench_transform(X, w_fair, workdir: Path) -> dict:
    model = _estimator().fit(X, w_fair)
    registry = ModelRegistry(workdir / "registry")
    registry.register("bench", model)
    rng = np.random.default_rng(7)
    rows = rng.normal(size=(N_TRANSFORM_ROWS, N_FEATURES))
    batches = [
        rows[i:i + TRANSFORM_BATCH]
        for i in range(0, N_TRANSFORM_ROWS, TRANSFORM_BATCH)
    ]

    def push_all():
        service = TransformService(registry, cache_size=0)
        for batch in batches:
            service.transform("bench", batch)

    untraced = _timed(push_all)

    def push_all_traced():
        with tracing(workdir / "transform.jsonl", metrics=False):
            push_all()

    traced = _timed(push_all_traced)
    return {
        "n_rows": N_TRANSFORM_ROWS,
        "batch_size": TRANSFORM_BATCH,
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "untraced_rows_per_sec": N_TRANSFORM_ROWS / untraced,
        "traced_rows_per_sec": N_TRANSFORM_ROWS / traced,
        "overhead_ratio": traced / untraced if untraced > 0 else float("inf"),
    }


def _stage_breakdown(X, w_fair) -> dict:
    """One traced n=5k landmark fit, split by span name."""
    sink = RingBufferSink(capacity=65536)
    add_sink(sink)
    try:
        start = time.perf_counter()
        _estimator().fit(X, w_fair)
        wall = time.perf_counter() - start
    finally:
        remove_sink(sink)
    summary = summarize_trace(sink.records())
    stages = {
        name: {
            "calls": stage["count"],
            "total_s": stage["total_s"],
            "share_of_wall": stage["total_s"] / wall if wall > 0 else 0.0,
        }
        for name, stage in summary["stages"].items()
    }
    return {"wall_seconds": wall, "stages": stages}


def _bench_off_span() -> dict:
    start = time.perf_counter()
    for _ in range(N_OFF_SPAN_CALLS):
        with span("bench.noop", gamma=0.5):
            pass
    elapsed = time.perf_counter() - start
    return {
        "calls": N_OFF_SPAN_CALLS,
        "total_seconds": elapsed,
        "ns_per_call": elapsed / N_OFF_SPAN_CALLS * 1e9,
    }


def run_benchmark() -> dict:
    X, w_fair = _workload(N_FIT, seed=0)
    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmp:
        workdir = Path(tmp)
        results = {
            "fit": _bench_fit(X, w_fair, workdir),
            "transform": _bench_transform(X, w_fair, workdir),
            "stage_breakdown": _stage_breakdown(X, w_fair),
            "off_span": _bench_off_span(),
        }
    return {
        "benchmark": "obs",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "n_fit": N_FIT,
            "n_landmarks": N_LANDMARKS,
            "n_features": N_FEATURES,
            "n_components": N_COMPONENTS,
            "n_transform_rows": N_TRANSFORM_ROWS,
            "scale": _SCALE,
            "overhead_max": OVERHEAD_MAX,
        },
        "results": results,
    }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """Acceptance floors; returns a list of failure strings."""
    failures = []
    results = payload["results"]
    for name in ("fit", "transform"):
        ratio = results[name]["overhead_ratio"]
        if ratio > OVERHEAD_MAX:
            failures.append(
                f"{name}: traced/untraced ratio {ratio:.2f} > {OVERHEAD_MAX}"
            )
    stages = results["stage_breakdown"]["stages"]
    for required in ("plan.landmarks", "plan.solve"):
        if required not in stages:
            failures.append(f"stage breakdown missing {required!r}")
    return failures


def test_obs_overhead():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    results = payload["results"]
    print(
        f"fit       untraced {results['fit']['untraced_seconds']:7.3f}s  "
        f"traced {results['fit']['traced_seconds']:7.3f}s  "
        f"ratio {results['fit']['overhead_ratio']:5.2f}",
        file=sys.stderr,
    )
    print(
        f"transform untraced {results['transform']['untraced_rows_per_sec']:10.0f} rows/s  "
        f"traced {results['transform']['traced_rows_per_sec']:10.0f} rows/s  "
        f"ratio {results['transform']['overhead_ratio']:5.2f}",
        file=sys.stderr,
    )
    print(
        f"off-span  {results['off_span']['ns_per_call']:7.0f} ns/call",
        file=sys.stderr,
    )
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
