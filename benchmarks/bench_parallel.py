"""Parallel-executor benchmark: serial vs process fan-out on a real sweep.

The workload is the repository's heaviest honest experiment shape: a
cross-seed repeated γ-sweep (``repeat_gamma_sweep``) on the COMPAS-scale
simulation — every seed draws its own dataset, splits, builds both graphs,
stages a :class:`~repro.core.SpectralFitPlan`, and sweeps γ. Seeds are
independent, so the :class:`~repro.experiments.parallel.Executor` fans
them out across worker processes.

Two things are asserted:

* **Parity** — the parallel aggregates are *bitwise identical* to the
  serial ones (exact float equality on every mean/std). Parallelism may
  change wall-clock only, never numbers.
* **Speedup** — at 4 workers the sweep must beat serial by the floor
  (default ≥ 2×). The floor is scaled down to ``0.8 × cpus`` when fewer
  than 4 CPUs are available — no machine can honestly exceed its core
  count — and both the requested and effective floors are recorded in the
  output so a smoke run on a small box can't masquerade as the full
  measurement.

Writes machine-readable results to ``benchmarks/output/BENCH_parallel.json``
(override with ``REPRO_BENCH_PARALLEL_JSON``). Problem sizes scale with
``REPRO_BENCH_SCALE``; the speedup floor with
``REPRO_BENCH_PARALLEL_SPEEDUP_FLOOR``.

Run directly (``python benchmarks/bench_parallel.py``) or via pytest
(``pytest benchmarks/bench_parallel.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro import __version__
from repro.experiments import (
    Executor,
    WorkloadFactory,
    available_workers,
    repeat_gamma_sweep,
    spawn_seeds,
)

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_PARALLEL_JSON",
        Path(__file__).parent / "output" / "BENCH_parallel.json",
    )
)

_SCALE = max(0.02, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

# COMPAS at half size by default (matching the figure benchmarks' default
# regime) — heavy enough that per-seed work dwarfs pool startup. 8 seeds
# divide evenly into both worker counts, so neither fan-out ends on a
# half-idle wave.
DATASET_SCALE = 0.5 * _SCALE
N_SEEDS = 8
GAMMAS = (0.0, 0.5, 1.0)
WORKER_COUNTS = (2, 4)

# The PR's acceptance floor at 4 workers on ≥4-core hardware. A machine
# cannot honestly beat its core count, so the effective floor is capped at
# 0.8 × available CPUs (the 0.8 budgets fork + result-pickling overhead).
# On a single-CPU box a speedup measurement is meaningless — the check is
# *skipped*, recorded as such in the JSON, and only the parity assertion
# remains; it is not fudged into a trivially-passable number.
SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_BENCH_PARALLEL_SPEEDUP_FLOOR", "2.0")
)


def _effective_floor(cpus: int) -> float | None:
    if cpus < 2:
        return None
    return min(SPEEDUP_FLOOR, 0.8 * min(cpus, max(WORKER_COUNTS)))


def _run_sweep(workers):
    factory = WorkloadFactory("compas", scale=DATASET_SCALE)
    return repeat_gamma_sweep(
        factory,
        GAMMAS,
        method="pfr",
        seeds=spawn_seeds(0, N_SEEDS),
        harness_kwargs={"n_components": 3},
        workers=workers,
    )


def run_benchmark() -> dict:
    """Time the repeated sweep serially and at each worker count."""
    cpus = available_workers()

    start = time.perf_counter()
    serial = _run_sweep(None)
    serial_seconds = time.perf_counter() - start

    runs = {}
    for count in WORKER_COUNTS:
        executor = Executor(backend="process", workers=count)
        start = time.perf_counter()
        fanned = _run_sweep(executor)
        seconds = time.perf_counter() - start
        runs[str(count)] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else float("inf"),
            # AggregateResult is a frozen dataclass: == is exact float
            # equality on every mean/std of every γ point.
            "bitwise_identical": fanned == serial,
        }

    return {
        "benchmark": "parallel",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "dataset": "compas",
            "dataset_scale": DATASET_SCALE,
            "n_seeds": N_SEEDS,
            "gammas": list(GAMMAS),
            "scale": _SCALE,
            "available_cpus": cpus,
            "speedup_floor": SPEEDUP_FLOOR,
            "effective_speedup_floor": _effective_floor(cpus),
        },
        "results": {
            "serial_seconds": serial_seconds,
            "workers": runs,
        },
    }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """The PR's acceptance floors; returns a list of failure strings."""
    failures = []
    runs = payload["results"]["workers"]
    for count, run in runs.items():
        if not run["bitwise_identical"]:
            failures.append(
                f"{count} workers: results differ from serial — parallelism "
                "must never change numbers"
            )
    floor = payload["config"]["effective_speedup_floor"]
    top = str(max(WORKER_COUNTS))
    if floor is not None and runs[top]["speedup"] < floor:
        failures.append(
            f"{top} workers: speedup {runs[top]['speedup']:.2f}x < "
            f"{floor:.2f}x (requested {payload['config']['speedup_floor']}x "
            f"on {payload['config']['available_cpus']} CPUs)"
        )
    return failures


def test_parallel_sweep_speedup_and_parity():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    results = payload["results"]
    print(
        f"serial       {results['serial_seconds']:7.2f}s", file=sys.stderr
    )
    for count, run in results["workers"].items():
        print(
            f"{count} workers    {run['seconds']:7.2f}s  "
            f"speedup {run['speedup']:5.2f}x  "
            f"bitwise_identical={run['bitwise_identical']}",
            file=sys.stderr,
        )
    if payload["config"]["effective_speedup_floor"] is None:
        print(
            "speedup check skipped: single CPU available (parity still "
            "enforced)",
            file=sys.stderr,
        )
    failures = _check(payload)
    print("PASS" if not failures else "FAIL: " + "; ".join(failures),
          file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
