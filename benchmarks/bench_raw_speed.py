"""Raw-speed benchmark: k-NN backends, iterative eigensolvers, float32.

The raw-speed pass makes the numeric core's three hot paths pluggable;
this benchmark measures what each option actually buys and gates every
approximation behind an ``embedding_fidelity`` floor:

1. **Graph construction** — exact (cKDTree), blocked (BLAS) and lsh
   (seeded hashing) builds of the same k-NN graph at n ≥ 100k, d = 24.
   Fidelity is measured end to end: each backend's graph drives a full
   PFR fit and the resulting embeddings are compared on the training
   rows. Floors: an approximate backend ≥ 5× faster than exact at
   fidelity ≥ 0.95; blocked must agree with exact to fidelity ~1.
2. **Eigensolve** — dense LAPACK vs lobpcg vs randomized on a
   kernel-PFR-shaped operator (``K L K`` from a blob workload).
   Floor: both iterative solvers reach fidelity ≥ 0.99 vs dense.
3. **float32 pipeline** — the same fit in float64 and opt-in float32;
   reports speedup, peak-array memory ratio and fidelity (floor 0.99).
4. **Fit frontier** — the full raw-speed stack (lsh + float32 +
   iterative solve) fitting n ≥ 200k rows end to end, the scale the
   exact float64 path cannot touch interactively.

Writes ``benchmarks/output/BENCH_raw_speed.json`` (override with
``REPRO_BENCH_RAW_SPEED_JSON``). Problem sizes scale with
``REPRO_BENCH_SCALE`` so the CI smoke run stays cheap.

Run directly (``python benchmarks/bench_raw_speed.py``) or via pytest
(``pytest benchmarks/bench_raw_speed.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core import PFR, embedding_fidelity
from repro.core.trace_optimization import smallest_eigenvectors
from repro.datasets import simulate_blobs
from repro.graphs import knn_graph

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_RAW_SPEED_JSON",
        Path(__file__).parent / "output" / "BENCH_raw_speed.json",
    )
)

_SCALE = max(0.01, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

N_FEATURES = 24
N_COMPONENTS = 4
GAMMA = 0.5
K_NEIGHBORS = 10

N_GRAPH = max(1_000, int(100_000 * _SCALE))
N_SOLVE = max(300, int(2_500 * _SCALE))
N_FLOAT32 = max(1_000, int(30_000 * _SCALE))
N_FRONTIER = max(2_000, int(200_000 * _SCALE))

SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_RAW_SPEED_SPEEDUP_FLOOR", "5.0"))
FIDELITY_FLOOR = float(os.environ.get("REPRO_BENCH_RAW_SPEED_FIDELITY_FLOOR", "0.95"))
F32_FIDELITY_FLOOR = float(
    os.environ.get("REPRO_BENCH_RAW_SPEED_F32_FIDELITY_FLOOR", "0.99")
)
SOLVER_FIDELITY_FLOOR = float(
    os.environ.get("REPRO_BENCH_RAW_SPEED_SOLVER_FIDELITY_FLOOR", "0.99")
)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _workload(n: int, seed: int = 0):
    """Blob data + a sparse merit-score fairness graph (stays O(n))."""
    data = simulate_blobs(n, n_features=N_FEATURES, seed=seed)
    merit = data.side_information
    w_fair = knn_graph(merit[:, None], n_neighbors=8, bandwidth=1.0)
    return data.X, w_fair


def bench_graph() -> dict:
    """Backend-by-backend graph construction time + end-to-end fidelity."""
    X, w_fair = _workload(N_GRAPH, seed=2)
    backends = {
        "exact": {},
        "blocked": {},
        "lsh": {"seed": 0},
    }
    results = {}
    reference_Z = None
    for backend, options in backends.items():
        seconds, W = _timed(
            lambda backend=backend, options=options: knn_graph(
                X,
                n_neighbors=K_NEIGHBORS,
                backend=backend,
                backend_options=options or None,
            )
        )
        # Fidelity end to end: the timed graph drives a full PFR fit.
        # Everything past the graph is O(n·d²) for linear PFR, so this is
        # affordable even at the exact backend's n.
        model = PFR(n_components=N_COMPONENTS, gamma=GAMMA).fit(X, w_fair, w_x=W)
        Z = model.transform(X)
        if backend == "exact":
            reference_Z = Z
            fidelity = 1.0
        else:
            fidelity = embedding_fidelity(reference_Z, Z)
        results[backend] = {
            "build_seconds": seconds,
            "edges": int(W.nnz // 2),
            "fidelity_vs_exact": float(fidelity),
        }
    exact_seconds = results["exact"]["build_seconds"]
    for backend in ("blocked", "lsh"):
        results[backend]["speedup_vs_exact"] = (
            exact_seconds / results[backend]["build_seconds"]
        )
    return {"n": N_GRAPH, "d": N_FEATURES, "k": K_NEIGHBORS, "backends": results}


def bench_solve() -> dict:
    """Iterative eigensolvers vs dense LAPACK on a spectral-embedding solve.

    The operator is the γ-mixed *normalized* Laplacian of the data and
    fairness graphs — sparse, eigenvalues in [0, 2], with real structure
    in the bottom subspace. This is the solve shape the iterative
    solvers are built for; dense kernel operators (``K L K``) have
    quasi-degenerate bottom spectra where subspace identity vs LAPACK is
    not a meaningful target for *any* iterative method.
    """
    import scipy.sparse as sp

    from repro.graphs import (
        between_group_quantile_graph,
        combine_laplacians,
        laplacian,
    )

    data = simulate_blobs(N_SOLVE, n_features=N_FEATURES, seed=3)
    merit = data.side_information
    groups = (merit > np.median(merit)).astype(np.int64)
    scores = merit + np.random.default_rng(0).normal(scale=0.1, size=N_SOLVE)
    w_fair = between_group_quantile_graph(scores, groups, n_quantiles=8)
    w_x = knn_graph(data.X, n_neighbors=K_NEIGHBORS, backend="blocked")
    L = combine_laplacians(
        laplacian(w_x, normalized=True),
        laplacian(sp.csr_matrix(w_fair), normalized=True),
        GAMMA,
    )
    L_dense = L.toarray()

    results = {}
    reference = None
    for solver in ("dense", "sparse", "lobpcg", "randomized"):
        M = L_dense if solver == "dense" else L
        seconds, (values, vectors) = _timed(
            lambda M=M, solver=solver: smallest_eigenvectors(
                M, N_COMPONENTS, solver=solver
            )
        )
        if solver == "dense":
            reference = vectors
            fidelity = 1.0
        else:
            fidelity = embedding_fidelity(reference, vectors)
        results[solver] = {
            "seconds": seconds,
            "fidelity_vs_dense": float(fidelity),
            "eigenvalues": [float(v) for v in values],
        }
    dense_seconds = results["dense"]["seconds"]
    for solver in ("sparse", "lobpcg", "randomized"):
        results[solver]["speedup_vs_dense"] = dense_seconds / results[solver]["seconds"]
    return {"n": N_SOLVE, "d": N_COMPONENTS, "nnz": int(L.nnz), "solvers": results}


def bench_float32() -> dict:
    """The same blocked-backend fit in float64 and opt-in float32."""
    X, w_fair = _workload(N_FLOAT32, seed=4)

    def fit(dtype):
        return PFR(
            n_components=N_COMPONENTS,
            gamma=GAMMA,
            n_neighbors=K_NEIGHBORS,
            knn_backend="blocked",
            dtype=dtype,
        ).fit(X, w_fair)

    seconds64, model64 = _timed(lambda: fit("float64"))
    seconds32, model32 = _timed(lambda: fit("float32"))
    Z64 = model64.transform(X)
    Z32 = model32.transform(X.astype(np.float32))
    # The dominant fit-time arrays: the data matrix and the dense distance
    # blocks scale with the dtype's itemsize; report the realized ratio on
    # the model-side arrays we can observe directly.
    bytes64 = Z64.nbytes + model64.components_.nbytes
    bytes32 = Z32.nbytes + model32.components_.nbytes
    return {
        "n": N_FLOAT32,
        "d": N_FEATURES,
        "fit_seconds_float64": seconds64,
        "fit_seconds_float32": seconds32,
        "fit_speedup": seconds64 / seconds32,
        "embedding_bytes_float64": int(bytes64),
        "embedding_bytes_float32": int(bytes32),
        "memory_ratio": bytes32 / bytes64,
        "fidelity": float(embedding_fidelity(Z64, Z32)),
        "output_dtype": str(Z32.dtype),
    }


def bench_frontier() -> dict:
    """The full raw-speed stack at a scale the exact path cannot touch."""
    X, w_fair = _workload(N_FRONTIER, seed=5)
    seconds, model = _timed(
        lambda: PFR(
            n_components=N_COMPONENTS,
            gamma=GAMMA,
            n_neighbors=K_NEIGHBORS,
            knn_backend="lsh",
            knn_seed=0,
            dtype="float32",
        ).fit(X, w_fair)
    )
    transform_seconds, Z = _timed(lambda: model.transform(X.astype(np.float32)))
    return {
        "n": N_FRONTIER,
        "d": N_FEATURES,
        "stack": {"knn_backend": "lsh", "dtype": "float32"},
        "fit_seconds": seconds,
        "transform_rows_per_second": (
            N_FRONTIER / transform_seconds if transform_seconds > 0 else 0.0
        ),
        "embedding_dtype": str(Z.dtype),
    }


def run_benchmark() -> dict:
    return {
        "benchmark": "raw_speed",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "scale": _SCALE,
            "n_features": N_FEATURES,
            "n_components": N_COMPONENTS,
            "gamma": GAMMA,
            "k_neighbors": K_NEIGHBORS,
            "n_graph": N_GRAPH,
            "n_solve": N_SOLVE,
            "n_float32": N_FLOAT32,
            "n_frontier": N_FRONTIER,
            "speedup_floor": SPEEDUP_FLOOR,
            "fidelity_floor": FIDELITY_FLOOR,
            "f32_fidelity_floor": F32_FIDELITY_FLOOR,
            "solver_fidelity_floor": SOLVER_FIDELITY_FLOOR,
        },
        "graph": bench_graph(),
        "solve": bench_solve(),
        "float32": bench_float32(),
        "frontier": bench_frontier(),
    }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """The PR's acceptance floors; returns a list of failure strings."""
    failures = []
    graph = payload["graph"]["backends"]
    if graph["blocked"]["fidelity_vs_exact"] < 0.999:
        failures.append(
            f"blocked fidelity {graph['blocked']['fidelity_vs_exact']:.6f} < 0.999 "
            "(blocked must agree with exact)"
        )
    approx_ok = any(
        graph[b]["speedup_vs_exact"] >= SPEEDUP_FLOOR
        and graph[b]["fidelity_vs_exact"] >= FIDELITY_FLOOR
        for b in ("blocked", "lsh")
    )
    if not approx_ok:
        failures.append(
            f"no backend reached {SPEEDUP_FLOOR}x speedup at fidelity >= "
            f"{FIDELITY_FLOOR} (lsh: "
            f"{graph['lsh']['speedup_vs_exact']:.1f}x @ "
            f"{graph['lsh']['fidelity_vs_exact']:.4f})"
        )
    for solver in ("lobpcg", "randomized"):
        fidelity = payload["solve"]["solvers"][solver]["fidelity_vs_dense"]
        if fidelity < SOLVER_FIDELITY_FLOOR:
            failures.append(
                f"{solver} fidelity {fidelity:.4f} < {SOLVER_FIDELITY_FLOOR}"
            )
    if payload["float32"]["fidelity"] < F32_FIDELITY_FLOOR:
        failures.append(
            f"float32 fidelity {payload['float32']['fidelity']:.4f} < "
            f"{F32_FIDELITY_FLOOR}"
        )
    if payload["frontier"]["embedding_dtype"] != "float32":
        failures.append("frontier fit did not stay in float32")
    return failures


def test_raw_speed():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    graph = payload["graph"]
    for backend, result in graph["backends"].items():
        speedup = result.get("speedup_vs_exact")
        print(
            f"graph {backend:8s} n={graph['n']:7d}  "
            f"build {result['build_seconds']:8.2f}s  "
            f"fidelity {result['fidelity_vs_exact']:.4f}"
            + (f"  speedup {speedup:6.1f}x" if speedup else ""),
            file=sys.stderr,
        )
    for solver, result in payload["solve"]["solvers"].items():
        print(
            f"solve {solver:11s} n={payload['solve']['n']:6d}  "
            f"{result['seconds']:8.2f}s  fidelity {result['fidelity_vs_dense']:.4f}",
            file=sys.stderr,
        )
    f32 = payload["float32"]
    print(
        f"float32 n={f32['n']:7d}  {f32['fit_speedup']:.2f}x faster  "
        f"memory x{f32['memory_ratio']:.2f}  fidelity {f32['fidelity']:.4f}",
        file=sys.stderr,
    )
    frontier = payload["frontier"]
    print(
        f"frontier n={frontier['n']:7d}  fit {frontier['fit_seconds']:.1f}s  "
        f"transform {frontier['transform_rows_per_second']:.0f} rows/s",
        file=sys.stderr,
    )
    failures = _check(payload)
    print("PASS" if not failures else "FAIL: " + "; ".join(failures), file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
