"""Throughput benchmark for the serving subsystem (repro.serving).

Measures rows/sec through a :class:`~repro.serving.TransformService` on
three paths, for both the linear PFR and the KernelPFR:

* **cold**  — one-row-at-a-time loop, every row a cache miss (the naive
  online pattern the micro-batcher and cache exist to beat);
* **batched** — one vectorized bulk call over the same rows;
* **warm**  — the same one-row loop again, every row now a cache hit.

Writes machine-readable results to ``benchmarks/output/BENCH_serving.json``
(override with ``REPRO_BENCH_SERVING_JSON``) so later PRs have a perf
trajectory to beat, and asserts the PR's acceptance floors: batched ≥ 5×
the one-row loop (linear PFR), and cache-warm ≥ 10× cold on repeated
inputs (KernelPFR, whose per-row transform re-kernelizes against the
training set — the workload where caching genuinely pays).

Run directly (``python benchmarks/bench_serving_throughput.py``) or via
pytest (``pytest benchmarks/bench_serving_throughput.py``).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import PFR, __version__
from repro.core import KernelPFR
from repro.graphs import between_group_quantile_graph
from repro.serving import ModelRegistry, TransformService

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_SERVING_JSON",
        Path(__file__).parent / "output" / "BENCH_serving.json",
    )
)

N_TRAIN = 2500
N_QUERY = 300
N_FEATURES = 12
N_COMPONENTS = 4


N_REPEATS = 5


def _fitted_models(seed: int = 0):
    """Fit a linear PFR and a KernelPFR on the same synthetic workload."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_TRAIN, N_FEATURES))
    s = rng.integers(0, 2, N_TRAIN)
    scores = X[:, 0] + rng.normal(scale=0.5, size=N_TRAIN)
    w_fair = between_group_quantile_graph(scores, s, n_quantiles=10)
    pfr = PFR(n_components=N_COMPONENTS, gamma=0.7).fit(X, w_fair)
    kpfr = KernelPFR(n_components=N_COMPONENTS, kernel="rbf").fit(X, w_fair)
    return {"pfr": pfr, "kernel_pfr": kpfr}, rng


def _throughput(fn, n_rows: int) -> float:
    """rows/sec of one call to ``fn`` (which processes ``n_rows`` rows)."""
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return n_rows / elapsed if elapsed > 0 else float("inf")


def _best(values) -> float:
    """Best-of-N throughput — the timeit-style statistic: contention and
    GC only ever slow a pass down, so the max is the least-noisy estimate
    of the path's capability."""
    return max(values)


def _bench_model(service: TransformService, spec: str, rng) -> dict:
    """Cold-loop, batched and warm-loop rows/sec for one registered model.

    The model stays warm in memory throughout (deserialization is not what
    is being measured); cold measurements instead use freshly generated,
    never-before-seen rows so every one is a true cache miss. Each path is
    measured ``N_REPEATS`` times and the best pass reported.
    """
    def fresh_rows():
        return rng.normal(size=(N_QUERY, N_FEATURES))

    def one_row_loop(X):
        for row in X:
            service.transform_one(spec, row)

    # Warm the model + code paths outside any measurement.
    service.transform(spec, fresh_rows())

    cold = _best(
        _throughput(lambda X=fresh_rows(): one_row_loop(X), N_QUERY)
        for _ in range(N_REPEATS)
    )
    batched = _best(
        _throughput(lambda X=fresh_rows(): service.transform(spec, X), N_QUERY)
        for _ in range(N_REPEATS)
    )
    # Warm: rows already cached by a prior pass; repeat the per-row loop.
    warm_rows = fresh_rows()
    one_row_loop(warm_rows)
    warm = _best(
        _throughput(lambda: one_row_loop(warm_rows), N_QUERY)
        for _ in range(N_REPEATS)
    )

    cache_info = service.stats()["models"][spec]["cache"]
    return {
        "rows": N_QUERY,
        "cold_rows_per_sec": cold,
        "batched_rows_per_sec": batched,
        "warm_rows_per_sec": warm,
        "speedup_batched_vs_cold": batched / cold,
        "speedup_warm_vs_cold": warm / cold,
        "cache_hit_rate": cache_info["hit_rate"],
    }


def run_benchmark(registry_root) -> dict:
    """Register both models and measure all three serving paths."""
    models, rng = _fitted_models()
    registry = ModelRegistry(registry_root)
    specs = {}
    for name, model in models.items():
        record = registry.register(name, model)
        specs[name] = record.spec  # pinned name@version — production pattern

    service = TransformService(registry, cache_size=100_000)
    results = {
        name: _bench_model(service, spec, rng)
        for name, spec in specs.items()
    }
    return {
        "benchmark": "serving_throughput",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "n_train": N_TRAIN,
            "n_query": N_QUERY,
            "n_features": N_FEATURES,
            "n_components": N_COMPONENTS,
        },
        "results": results,
    }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def test_serving_throughput(tmp_path):
    payload = run_benchmark(tmp_path / "registry")
    path = write_results(payload)
    assert path.is_file()

    pfr = payload["results"]["pfr"]
    kpfr = payload["results"]["kernel_pfr"]
    # Acceptance floors (real ratios are far higher; wide margins keep the
    # assertion robust on noisy CI machines).
    assert pfr["speedup_batched_vs_cold"] >= 5.0
    assert kpfr["speedup_warm_vs_cold"] >= 10.0
    # Sanity: the warm loops were actually served from cache. Only the N
    # warm passes hit; cold single-row misses are counted twice (fast-path
    # get, then the bulk path's get_many), so the expected rate is
    # 1500 hits / 6900 lookups ≈ 0.22.
    assert kpfr["cache_hit_rate"] > 0.15
    assert pfr["cache_hit_rate"] > 0.15


def main() -> int:
    with tempfile.TemporaryDirectory() as root:
        payload = run_benchmark(Path(root) / "registry")
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    pfr = payload["results"]["pfr"]
    kpfr = payload["results"]["kernel_pfr"]
    ok = (
        pfr["speedup_batched_vs_cold"] >= 5.0
        and kpfr["speedup_warm_vs_cold"] >= 10.0
    )
    print(
        f"batched vs cold (PFR):   {pfr['speedup_batched_vs_cold']:8.1f}x\n"
        f"warm vs cold (KernelPFR):{kpfr['speedup_warm_vs_cold']:8.1f}x\n"
        f"{'PASS' if ok else 'FAIL'}",
        file=sys.stderr,
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
