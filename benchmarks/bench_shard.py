"""Sharded-execution benchmark: scale-out overhead of shard + merge.

The workload is a COMPAS-scale **seed-wide** matrix (many seeds, one γ)
executed three ways:

* **unsharded** — one cold :func:`~repro.experiments.run_spec` into one
  store (the baseline every distributed run is measured against);
* **sharded** — the same spec as ``--shard 0/2`` and ``--shard 1/2``
  into two fresh stores (run back-to-back on this one box — on real
  deployments the two run on different machines, so the *sum* of the
  shard times is the pessimistic single-box view and the *max* is the
  multi-box wall-clock);
* **merged** — ``repro store merge`` unions the two shard stores, and a
  final un-sharded ``run_spec`` over the merged store rebuilds the
  report without computing anything.

Asserted:

* the shards partition the matrix exactly (disjoint cover, no cell
  computed twice — the dedupe rate of the merge is 0 because no two
  shards share a cell);
* the merged-store report is **bitwise identical** to the unsharded run
  (exact float equality on every aggregate mean/std) and every one of
  its cells is a ledger hit;
* ``verify`` is clean on the merged store;
* single-box efficiency ``t_unsharded / (t_shard0 + t_shard1 + t_merge +
  t_report)`` meets the floor (default ≥ 0.9×): sharding must cost
  almost nothing beyond the compute it partitions, or the scale-out
  story is fiction.

Why a seed-wide grid: within one process the harness amortizes graph
construction (the dominant cost per cell) across every γ of the same
dataset × seed slice, so a γ-deep grid computed in one process enjoys a
caching advantage no partition can reproduce — shards that split a seed
group each rebuild its graphs. A seed-wide matrix has no shared state
between cells, which is exactly the regime sharding targets; the README
documents the granularity trade-off.

Writes ``benchmarks/output/BENCH_shard.json`` (override with
``REPRO_BENCH_SHARD_JSON``). Problem sizes scale with
``REPRO_BENCH_SCALE``; the efficiency floor with
``REPRO_BENCH_SHARD_EFFICIENCY_FLOOR``.

Run directly (``python benchmarks/bench_shard.py``) or via pytest.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.experiments import RunSpec, run_spec
from repro.store import RunLedger, merge_stores

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_SHARD_JSON",
        Path(__file__).parent / "output" / "BENCH_shard.json",
    )
)

_SCALE = max(0.02, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

# COMPAS at half size, seed-wide: 12 independent cells, one γ. Cells of
# one dataset×seed slice share cached graphs inside a process, so the
# grid is wide in seeds (no sharing to lose) rather than deep in γ.
DATASET_SCALE = 0.5 * _SCALE
N_SEEDS = 12
GAMMAS = (0.5,)
N_SHARDS = 2

# Single-box efficiency floor: the sharded total (both shards + merge +
# warm report) may cost at most ~1/floor of the unsharded run. The
# compute dominates at full scale, so 0.9 leaves ~11% for partitioning,
# copying and re-reporting; smoke scales relax it via the env knob
# because there the fixed costs (dataset simulation + hashing, paid once
# per store) are a visible fraction of every window.
EFFICIENCY_FLOOR = float(
    os.environ.get("REPRO_BENCH_SHARD_EFFICIENCY_FLOOR", "0.9")
)


def _spec() -> RunSpec:
    return RunSpec.from_dict(
        {
            "name": "bench-shard",
            "datasets": [{"name": "compas", "scale": DATASET_SCALE}],
            "methods": ["pfr"],
            "gammas": list(GAMMAS),
            "seeds": N_SEEDS,
            "harness": {"n_components": 3},
        }
    )


def _aggregates_identical(a, b) -> bool:
    """Exact float equality on every mean/std of every grid point."""
    if set(a.aggregates) != set(b.aggregates):
        return False
    return all(
        a.aggregates[key].mean == b.aggregates[key].mean
        and a.aggregates[key].std == b.aggregates[key].std
        for key in a.aggregates
    )


def run_benchmark() -> dict:
    root = Path(tempfile.mkdtemp(prefix="repro-bench-shard-"))
    try:
        spec = _spec()

        start = time.perf_counter()
        unsharded = run_spec(spec, store=root / "full")
        unsharded_seconds = time.perf_counter() - start

        shard_seconds = []
        shard_cells = []
        for index in range(N_SHARDS):
            start = time.perf_counter()
            report = run_spec(
                spec, store=root / f"shard{index}",
                shard=(index, N_SHARDS),
            )
            shard_seconds.append(time.perf_counter() - start)
            shard_cells.append(report.n_total)

        start = time.perf_counter()
        merge_report = merge_stores(
            root / "merged",
            *(root / f"shard{index}" for index in range(N_SHARDS)),
        )
        merge_seconds = time.perf_counter() - start

        start = time.perf_counter()
        merged = run_spec(spec, store=root / "merged")
        report_seconds = time.perf_counter() - start

        verify = RunLedger(root / "merged").verify()
        merged_counts = RunLedger(root / "merged").counts()

        sharded_total = sum(shard_seconds) + merge_seconds + report_seconds
        return {
            "benchmark": "shard",
            "library_version": __version__,
            "timestamp": time.time(),
            "config": {
                "dataset": "compas",
                "dataset_scale": DATASET_SCALE,
                "n_seeds": N_SEEDS,
                "gammas": list(GAMMAS),
                "n_shards": N_SHARDS,
                "scale": _SCALE,
                "efficiency_floor": EFFICIENCY_FLOOR,
            },
            "results": {
                "unsharded": {
                    "seconds": unsharded_seconds,
                    "cells_total": unsharded.n_total,
                },
                "shards": {
                    "seconds": shard_seconds,
                    "cells": shard_cells,
                    "max_seconds": max(shard_seconds),
                    "sum_seconds": sum(shard_seconds),
                    "cover_exact": sum(shard_cells) == unsharded.n_total,
                },
                "merge": {
                    "seconds": merge_seconds,
                    "copied": merge_report.n_copied,
                    "deduped": merge_report.n_deduped,
                    "conflicts": merge_report.n_conflicts,
                    "dedupe_rate": merge_report.dedupe_rate,
                    "merged_entries": merged_counts["entries"],
                    "merged_by_kind": merged_counts["by_kind"],
                },
                "merged_report": {
                    "seconds": report_seconds,
                    "cells_cached": merged.n_cached,
                    "cells_computed": merged.n_computed,
                    "bitwise_identical": _aggregates_identical(
                        merged, unsharded
                    ),
                    "verify_problems": len(verify["problems"]),
                },
                "efficiency": {
                    # One box runs shards serially: total sharded cost
                    # vs the unsharded baseline.
                    "single_box": (
                        unsharded_seconds / sharded_total
                        if sharded_total > 0 else float("inf")
                    ),
                    # K boxes run shards concurrently: the wall-clock is
                    # the slowest shard + merge + report.
                    "multi_box_projection": (
                        unsharded_seconds
                        / (max(shard_seconds) + merge_seconds + report_seconds)
                    ),
                    "shard_merge_overhead_seconds": (
                        sharded_total - unsharded_seconds
                    ),
                },
            },
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """The PR's acceptance floors; returns a list of failure strings."""
    failures = []
    results = payload["results"]
    shards, merge = results["shards"], results["merge"]
    merged_report = results["merged_report"]
    if not shards["cover_exact"]:
        failures.append(
            f"shards covered {sum(shards['cells'])} cells, expected "
            f"{results['unsharded']['cells_total']} — the partition must "
            "be a disjoint cover"
        )
    if merge["conflicts"]:
        failures.append(f"{merge['conflicts']} merge conflicts on a "
                        "deterministic workload")
    if merge["dedupe_rate"] != 0.0:
        failures.append(
            f"dedupe rate {merge['dedupe_rate']:.0%} ≠ 0 — shards computed "
            "overlapping cells"
        )
    if merged_report["cells_computed"] != 0:
        failures.append(
            f"merged-store report recomputed "
            f"{merged_report['cells_computed']} cells; every cell should "
            "be a ledger hit"
        )
    if not merged_report["bitwise_identical"]:
        failures.append(
            "merged-store aggregates differ from the unsharded run — "
            "sharding must never change numbers"
        )
    if merged_report["verify_problems"]:
        failures.append(
            f"store verify found {merged_report['verify_problems']} "
            "problems on the merged ledger"
        )
    floor = payload["config"]["efficiency_floor"]
    efficiency = results["efficiency"]["single_box"]
    if efficiency < floor:
        failures.append(
            f"single-box efficiency {efficiency:.2f}x < {floor:.2f}x floor "
            "— shard + merge overhead is too expensive"
        )
    return failures


def test_sharded_execution_matches_unsharded():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    results = payload["results"]
    print(
        f"unsharded {results['unsharded']['seconds']:7.2f}s  "
        f"({results['unsharded']['cells_total']} cells)",
        file=sys.stderr,
    )
    for index, seconds in enumerate(results["shards"]["seconds"]):
        print(
            f"shard {index}/{payload['config']['n_shards']} "
            f"{seconds:7.2f}s  ({results['shards']['cells'][index]} cells)",
            file=sys.stderr,
        )
    print(
        f"merge     {results['merge']['seconds']:7.2f}s  "
        f"({results['merge']['copied']} entries copied)",
        file=sys.stderr,
    )
    print(
        f"report    {results['merged_report']['seconds']:7.2f}s  "
        f"(all {results['merged_report']['cells_cached']} cells cached)",
        file=sys.stderr,
    )
    print(
        f"efficiency: single-box {results['efficiency']['single_box']:.2f}x, "
        f"multi-box projection "
        f"{results['efficiency']['multi_box_projection']:.2f}x",
        file=sys.stderr,
    )
    failures = _check(payload)
    print("PASS" if not failures else "FAIL: " + "; ".join(failures),
          file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
