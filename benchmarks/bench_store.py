"""Run-ledger benchmark: warm re-runs and incremental grid extension.

The workload is a COMPAS-scale multi-seed γ-sweep expressed as a
declarative :class:`~repro.experiments.RunSpec` and executed through a
content-addressed :class:`~repro.store.RunLedger`
(:func:`~repro.experiments.run_spec`). Three things are measured and
asserted:

* **Warm speedup** — re-running the identical spec over the populated
  ledger must beat the cold run by the floor (default ≥ 5×): every cell is
  a digest hit, so the warm run is spec compilation + dataset hashing +
  JSON decode, no fits.
* **Incremental extension** — widening the finished grid by one γ must
  compute *only* the new cells (`n_seeds` of them), every previous cell a
  cache hit; the extension time is recorded alongside the per-cell cold
  cost for context.
* **Parity** — warm and resumed aggregates are *bitwise identical* to the
  cold run's (exact float equality on every mean/std); the ledger may
  change wall-clock only, never numbers.

Writes machine-readable results to ``benchmarks/output/BENCH_store.json``
(override with ``REPRO_BENCH_STORE_JSON``). Problem sizes scale with
``REPRO_BENCH_SCALE``; the warm-speedup floor with
``REPRO_BENCH_STORE_SPEEDUP_FLOOR``.

Run directly (``python benchmarks/bench_store.py``) or via pytest
(``pytest benchmarks/bench_store.py``).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.experiments import RunSpec, run_spec

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_STORE_JSON",
        Path(__file__).parent / "output" / "BENCH_store.json",
    )
)

_SCALE = max(0.02, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

# COMPAS at half size by default, mirroring bench_parallel's regime; 4
# seeds × 5 γ values is a realistic figure-10-with-error-bars grid.
DATASET_SCALE = 0.5 * _SCALE
N_SEEDS = 4
GAMMAS = (0.0, 0.25, 0.5, 0.75, 1.0)
EXTENSION_GAMMA = 0.9

# Warm re-run must be at least this much faster than cold. The full-scale
# ratio is orders of magnitude (decode vs eigensolves); the floor is
# deliberately conservative because at smoke scales the fixed costs —
# dataset simulation and content hashing, paid by cold and warm alike —
# are a visible fraction of the warm window.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_STORE_SPEEDUP_FLOOR", "5.0"))


def _spec(gammas) -> RunSpec:
    return RunSpec.from_dict(
        {
            "name": "bench-store",
            "datasets": [{"name": "compas", "scale": DATASET_SCALE}],
            "methods": ["pfr"],
            "gammas": list(gammas),
            "seeds": N_SEEDS,
            "harness": {"n_components": 3},
        }
    )


def _aggregates_identical(a, b) -> bool:
    """Exact float equality on every mean/std of every shared grid point."""
    if set(a.aggregates) != set(b.aggregates):
        return False
    return all(
        a.aggregates[key].mean == b.aggregates[key].mean
        and a.aggregates[key].std == b.aggregates[key].std
        for key in a.aggregates
    )


def run_benchmark() -> dict:
    store = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        spec = _spec(GAMMAS)

        start = time.perf_counter()
        cold = run_spec(spec, store=store)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_spec(spec, store=store)
        warm_seconds = time.perf_counter() - start

        extended_spec = _spec(GAMMAS + (EXTENSION_GAMMA,))
        start = time.perf_counter()
        extended = run_spec(extended_spec, store=store)
        extension_seconds = time.perf_counter() - start

        return {
            "benchmark": "store",
            "library_version": __version__,
            "timestamp": time.time(),
            "config": {
                "dataset": "compas",
                "dataset_scale": DATASET_SCALE,
                "n_seeds": N_SEEDS,
                "gammas": list(GAMMAS),
                "extension_gamma": EXTENSION_GAMMA,
                "scale": _SCALE,
                "speedup_floor": SPEEDUP_FLOOR,
            },
            "results": {
                "cold": {
                    "seconds": cold_seconds,
                    "cells_total": cold.n_total,
                    "cells_computed": cold.n_computed,
                    "seconds_per_cell": cold_seconds / max(cold.n_computed, 1),
                },
                "warm": {
                    "seconds": warm_seconds,
                    "cells_total": warm.n_total,
                    "cells_cached": warm.n_cached,
                    "cells_computed": warm.n_computed,
                    "hit_rate": warm.hit_rate,
                    "speedup_vs_cold": (
                        cold_seconds / warm_seconds
                        if warm_seconds > 0 else float("inf")
                    ),
                    "bitwise_identical": _aggregates_identical(warm, cold),
                },
                "extension": {
                    "seconds": extension_seconds,
                    "cells_total": extended.n_total,
                    "cells_cached": extended.n_cached,
                    "cells_computed": extended.n_computed,
                    "expected_new_cells": N_SEEDS,
                    "bitwise_identical_on_shared_grid": _aggregates_identical(
                        cold, _shared_view(extended, cold)
                    ),
                },
            },
        }
    finally:
        shutil.rmtree(store, ignore_errors=True)


class _shared_view:
    """Restrict an extended report's aggregates to another report's keys."""

    def __init__(self, extended, reference):
        self.aggregates = {
            key: extended.aggregates[key] for key in reference.aggregates
        }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """The PR's acceptance floors; returns a list of failure strings."""
    failures = []
    results = payload["results"]
    warm, ext = results["warm"], results["extension"]
    if warm["cells_computed"] != 0:
        failures.append(
            f"warm run recomputed {warm['cells_computed']} cells; every cell "
            "should be a ledger hit"
        )
    if not warm["bitwise_identical"]:
        failures.append(
            "warm aggregates differ from cold — the ledger must never "
            "change numbers"
        )
    floor = payload["config"]["speedup_floor"]
    if warm["speedup_vs_cold"] < floor:
        failures.append(
            f"warm re-run speedup {warm['speedup_vs_cold']:.1f}x < "
            f"{floor:.1f}x floor"
        )
    if ext["cells_computed"] != ext["expected_new_cells"]:
        failures.append(
            f"grid extension computed {ext['cells_computed']} cells; only "
            f"the {ext['expected_new_cells']} new-gamma cells should run"
        )
    if not ext["bitwise_identical_on_shared_grid"]:
        failures.append("extension changed numbers on the shared grid")
    return failures


def test_store_warm_rerun_and_extension():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    results = payload["results"]
    print(
        f"cold   {results['cold']['seconds']:7.2f}s  "
        f"({results['cold']['cells_computed']} cells)",
        file=sys.stderr,
    )
    print(
        f"warm   {results['warm']['seconds']:7.2f}s  "
        f"speedup {results['warm']['speedup_vs_cold']:6.1f}x  "
        f"hit rate {results['warm']['hit_rate']:.0%}",
        file=sys.stderr,
    )
    print(
        f"extend {results['extension']['seconds']:7.2f}s  "
        f"({results['extension']['cells_computed']} new cells of "
        f"{results['extension']['cells_total']})",
        file=sys.stderr,
    )
    failures = _check(payload)
    print("PASS" if not failures else "FAIL: " + "; ".join(failures),
          file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
