"""Streaming refresh benchmark: incremental landmark refresh vs cold refit.

The production loop (:mod:`repro.lifecycle`) keeps a landmark PFR fresh
by warm-starting: when drift accumulates, ``LandmarkPlan.refresh()``
selects new landmarks from the *pending rows only* (O(q·m·f) instead of
O(n·m·f) over the grown corpus), reuses the old landmark k-NN graph as a
block, and carries every γ-independent precomputed stage over. This
benchmark quantifies that claim at ROADMAP scale:

1. **Refresh race @ n = 50k** — fit a landmark plan on n rows, stream in
   q drifted rows, then produce an up-to-date model both ways: the
   incremental ``extend → refresh → fit`` path, and a cold
   ``LandmarkPlan`` refit over all n+q rows. Floor: incremental must be
   ≥ 3× faster.
2. **Agreement** — the two models must describe the same representation:
   ``embedding_fidelity`` between their embeddings of a held-out sample
   of the grown population must be ≥ 0.95.
3. **Drift telemetry** — the per-row scores that drive the loop: drifted
   rows must score *below* the fit-time p05 baseline (the refresh
   trigger), in-distribution rows above it, and the refreshed plan must
   score the once-drifted region as in-distribution again.

Writes ``benchmarks/output/BENCH_streaming.json`` (override with
``REPRO_BENCH_STREAMING_JSON``). Problem sizes scale with
``REPRO_BENCH_SCALE``; floors relax via
``REPRO_BENCH_STREAMING_SPEEDUP_FLOOR`` /
``REPRO_BENCH_STREAMING_FIDELITY_FLOOR`` for the CI smoke run.

Run directly (``python benchmarks/bench_streaming.py``) or via pytest.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core import PFR, LandmarkPlan, embedding_fidelity
from repro.datasets import simulate_blobs
from repro.graphs import knn_graph
from repro.ml import clone

OUTPUT_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_STREAMING_JSON",
        Path(__file__).parent / "output" / "BENCH_streaming.json",
    )
)

_SCALE = max(0.02, min(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))

N_FEATURES = 12
# 8 components: the blobs workload has a near-degenerate eigenvalue pair
# around rank 4, where cold and incremental solves can legitimately pick
# different eigenvectors; at rank 8 both sides of the pair are included
# and the embeddings are comparable.
N_COMPONENTS = 8
GAMMA = 0.5

N_BASE = max(2_000, int(50_000 * _SCALE))
N_PENDING = max(200, N_BASE // 10)  # the drifted stream, 10% of the corpus
N_BATCHES = 4                       # fed as several extend() batches
N_LANDMARKS = max(64, int(2_000 * _SCALE))
N_HOLDOUT = max(200, int(2_000 * _SCALE))
DRIFT_SHIFT = 2.0

SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_BENCH_STREAMING_SPEEDUP_FLOOR", "3.0")
)
FIDELITY_FLOOR = float(
    os.environ.get("REPRO_BENCH_STREAMING_FIDELITY_FLOOR", "0.95")
)


def _estimator(m: int) -> PFR:
    return PFR(
        n_components=N_COMPONENTS,
        gamma=GAMMA,
        extension="nystrom",
        landmarks=m,
        landmark_strategy="kmeans++",
        landmark_seed=0,
    )


def _workload(seed: int = 0):
    """Base corpus, its sparse fairness graph, and a drifted stream.

    Like ``bench_landmark``, fairness links each individual to its
    nearest peers in merit-score space (sparse, O(n) memory). The
    pending stream is the same population mean-shifted by
    ``DRIFT_SHIFT`` — the drift the loop exists to catch.
    """
    data = simulate_blobs(N_BASE, n_features=N_FEATURES, seed=seed)
    X_base = data.X
    w_fair = knn_graph(data.side_information[:, None], n_neighbors=8, bandwidth=1.0)
    rng = np.random.default_rng(seed + 1)
    # data.X appends the protected column to the n_features raw features.
    X_pending = (
        data.X[rng.integers(0, N_BASE, size=N_PENDING)]
        + DRIFT_SHIFT
        + rng.normal(scale=0.25, size=(N_PENDING, data.X.shape[1]))
    )
    return X_base, w_fair, X_pending


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_benchmark() -> dict:
    X_base, w_fair, X_pending = _workload(seed=11)

    # --- the deployed model (outside both timed paths) -------------------
    estimator = _estimator(N_LANDMARKS)
    plan = LandmarkPlan.for_estimator(estimator, X_base, w_fair)
    base_fit_seconds, _ = _timed(lambda: plan.fit(estimator))
    baseline = plan.fidelity_baseline()

    # --- drift telemetry --------------------------------------------------
    rng = np.random.default_rng(99)
    in_dist = X_base[rng.integers(0, N_BASE, size=512)]
    score_in = float(np.mean(plan.score_rows(in_dist)))
    score_drift = float(np.mean(plan.score_rows(X_pending[:512])))
    frac_in = float(np.mean(plan.score_rows(in_dist) < baseline["p05"]))
    frac_drift = float(
        np.mean(plan.score_rows(X_pending[:512]) < baseline["p05"])
    )

    # --- incremental path: extend -> refresh -> fit ----------------------
    batches = np.array_split(X_pending, N_BATCHES)

    def _incremental():
        for batch in batches:
            plan.extend(batch, refresh="never")
        child = plan.refresh()
        refreshed = clone(estimator)
        refreshed.landmarks = child.n_landmarks
        child.fit(refreshed)
        return child, refreshed

    incremental_seconds, (child, refreshed_model) = _timed(_incremental)

    # --- cold path: full refit over the grown corpus ---------------------
    # Same landmark budget as the child ended up with, same w_fair rows
    # precomputed (graph construction for the base corpus is excluded
    # from BOTH timings; the cold path still pays full landmark selection
    # over n+q rows and a from-scratch landmark graph + solve).
    X_full = np.vstack([X_base, X_pending])
    import scipy.sparse as sp

    w_fair_full = sp.block_diag(
        [w_fair, sp.csr_matrix((N_PENDING, N_PENDING))], format="csr"
    )

    def _cold():
        cold_estimator = _estimator(child.n_landmarks)
        cold_plan = LandmarkPlan.for_estimator(
            cold_estimator, X_full, w_fair_full
        )
        cold_plan.fit(cold_estimator)
        return cold_plan, cold_estimator

    cold_seconds, (cold_plan, cold_model) = _timed(_cold)

    # --- agreement on a holdout of the grown population ------------------
    holdout_rng = np.random.default_rng(7)
    X_holdout = X_full[
        holdout_rng.integers(0, X_full.shape[0], size=N_HOLDOUT)
    ]
    fidelity = float(
        embedding_fidelity(
            cold_model.transform(X_holdout), refreshed_model.transform(X_holdout)
        )
    )

    # --- post-refresh telemetry: drifted region is in-distribution now ---
    child_baseline = child.fidelity_baseline()
    frac_drift_after = float(
        np.mean(child.score_rows(X_pending[:512]) < child_baseline["p05"])
    )

    return {
        "benchmark": "streaming",
        "library_version": __version__,
        "timestamp": time.time(),
        "config": {
            "scale": _SCALE,
            "n_base": N_BASE,
            "n_pending": N_PENDING,
            "n_batches": N_BATCHES,
            "n_landmarks": N_LANDMARKS,
            "n_holdout": N_HOLDOUT,
            "n_features": N_FEATURES,
            "n_components": N_COMPONENTS,
            "gamma": GAMMA,
            "drift_shift": DRIFT_SHIFT,
            "speedup_floor": SPEEDUP_FLOOR,
            "fidelity_floor": FIDELITY_FLOOR,
        },
        "base_fit_seconds": base_fit_seconds,
        "drift_detection": {
            "baseline_p05": baseline["p05"],
            "score_in_distribution": score_in,
            "score_drifted": score_drift,
            "stale_fraction_in_distribution": frac_in,
            "stale_fraction_drifted": frac_drift,
            "stale_fraction_drifted_after_refresh": frac_drift_after,
        },
        "refresh": {
            "incremental_seconds": incremental_seconds,
            "cold_refit_seconds": cold_seconds,
            "speedup": cold_seconds / incremental_seconds,
            "child_landmarks": child.n_landmarks,
            "child_has_extend_digest": "extend" in child.stage_digests(),
            "holdout_fidelity_vs_cold": fidelity,
        },
    }


def write_results(payload: dict) -> Path:
    OUTPUT_JSON.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return OUTPUT_JSON


def _check(payload: dict) -> list:
    """The PR's acceptance floors; returns a list of failure strings."""
    failures = []
    refresh = payload["refresh"]
    if refresh["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"incremental refresh speedup {refresh['speedup']:.1f}x < "
            f"{SPEEDUP_FLOOR}x vs cold refit"
        )
    if refresh["holdout_fidelity_vs_cold"] < FIDELITY_FLOOR:
        failures.append(
            f"holdout fidelity {refresh['holdout_fidelity_vs_cold']:.4f} < "
            f"{FIDELITY_FLOOR} vs cold refit"
        )
    if not refresh["child_has_extend_digest"]:
        failures.append("refreshed plan lost its 'extend' stage digest")
    drift = payload["drift_detection"]
    if drift["stale_fraction_drifted"] <= drift["stale_fraction_in_distribution"]:
        failures.append(
            "drift not detected: drifted stale fraction "
            f"{drift['stale_fraction_drifted']:.2f} <= in-distribution "
            f"{drift['stale_fraction_in_distribution']:.2f}"
        )
    if drift["stale_fraction_drifted_after_refresh"] >= 0.5:
        failures.append(
            "refresh did not absorb the drift: post-refresh stale fraction "
            f"{drift['stale_fraction_drifted_after_refresh']:.2f} >= 0.5"
        )
    return failures


def test_streaming_refresh():
    payload = run_benchmark()
    path = write_results(payload)
    assert path.is_file()
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    payload = run_benchmark()
    path = write_results(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    refresh = payload["refresh"]
    drift = payload["drift_detection"]
    print(
        f"n={payload['config']['n_base']} (+{payload['config']['n_pending']} "
        f"pending)  incremental {refresh['incremental_seconds']:.2f}s  "
        f"cold {refresh['cold_refit_seconds']:.2f}s  "
        f"speedup {refresh['speedup']:.1f}x  "
        f"fidelity {refresh['holdout_fidelity_vs_cold']:.4f}",
        file=sys.stderr,
    )
    print(
        f"drift: in-dist stale {drift['stale_fraction_in_distribution']:.2f}  "
        f"drifted {drift['stale_fraction_drifted']:.2f}  "
        f"after refresh {drift['stale_fraction_drifted_after_refresh']:.2f}",
        file=sys.stderr,
    )
    failures = _check(payload)
    print("PASS" if not failures else "FAIL: " + "; ".join(failures), file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
