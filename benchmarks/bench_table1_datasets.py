"""Table 1 — dataset statistics (sizes, group sizes, base rates)."""

import pytest

from repro.experiments import table1

from conftest import save_render


def test_bench_table1(once):
    result = once(table1, scale=1.0, seed=0)
    save_render(result)

    rows = {r[0]: r for r in result.data["rows"]}
    # Paper's Table 1, reproduced at full size.
    assert rows["synthetic"][1:4] == [600, 300, 300]
    assert rows["crime"][1:4] == [1993, 1423, 570]
    assert rows["compas"][1:4] == [8803, 4218, 4585]
    assert rows["synthetic"][4] == pytest.approx(0.51, abs=0.06)
    assert rows["synthetic"][5] == pytest.approx(0.48, abs=0.06)
    assert rows["crime"][4] == pytest.approx(0.35, abs=0.03)
    assert rows["crime"][5] == pytest.approx(0.86, abs=0.03)
    assert rows["compas"][4] == pytest.approx(0.41, abs=0.03)
    assert rows["compas"][5] == pytest.approx(0.55, abs=0.03)
