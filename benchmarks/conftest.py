"""Shared infrastructure for the reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper,
asserts its qualitative shape, and writes the rendered output to
``benchmarks/output/<experiment>.txt`` so the series the paper reports can
be inspected after a run.

Scales default to the paper's dataset sizes for synthetic and Crime and to
half size for COMPAS (the full 8,803-offender simulation works too — set
``REPRO_BENCH_SCALE=1.0``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

# Per-dataset default scales; multiplied by REPRO_BENCH_SCALE when set.
_BASE_SCALES = {"synthetic": 1.0, "crime": 1.0, "compas": 0.5}


def bench_scale(dataset: str) -> float:
    """Dataset-size scale used by the benchmarks for ``dataset``."""
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(0.01, min(1.0, _BASE_SCALES[dataset] * multiplier))


def save_render(result) -> Path:
    """Persist a FigureResult's rendering under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{result.figure_id}.txt"
    path.write_text(result.render() + "\n", encoding="utf-8")
    return path


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (figure regenerations are
    heavyweight; statistical repetition adds nothing)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
