"""COMPAS recidivism prediction with a decile-score fairness graph (§4.3).

Demonstrates the *incomparable groups* elicitation (§3.2.2): Northpointe's
decile scores are within-group rankings, so individuals of different races
in the same decile quantile are linked as "equally deserving". PFR learns a
representation in which these pairs are close — yielding near-equal
positive-prediction and error rates across groups without any explicit
group-fairness objective.

Uses the calibrated simulator by default; point ``--csv`` at ProPublica's
``compas-scores-two-years.csv`` to run on the real data instead.

Run:  python examples/compas_recidivism.py [--scale 0.3] [--csv path]
"""

import argparse

from repro import load_compas, simulate_compas
from repro.experiments import ExperimentHarness, render_table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3,
                        help="fraction of the paper's dataset size to simulate")
    parser.add_argument("--csv", default=None,
                        help="path to the real compas-scores-two-years.csv")
    args = parser.parse_args()

    if args.csv:
        data = load_compas(args.csv)
    else:
        data = simulate_compas(
            max(50, int(4218 * args.scale)),
            max(50, int(4585 * args.scale)),
            seed=0,
        )
    print("Dataset:", data.table1_row())

    harness = ExperimentHarness(data, seed=0, n_components=3)
    methods = ("original+", "ifair+", "lfr+", "pfr", "hardt+")
    results = harness.run_methods(methods, gamma=1.0)

    rows = []
    for method, result in results.items():
        summary = result.summary()
        rows.append(
            [
                method,
                summary["auc"],
                summary["consistency_wf"],
                summary["consistency_wx"],
                summary["parity_gap"],
                summary["fpr_gap"],
                summary["fnr_gap"],
            ]
        )
    print(
        render_table(
            ["method", "AUC", "Cons(WF)", "Cons(WX)", "parity", "FPR gap", "FNR gap"],
            rows,
        )
    )

    pfr = results["pfr"]
    print("\nPFR per-group rates:")
    print("  P(ŷ=1):", {k: round(v, 3) for k, v in pfr.rates.positive_rate.items()})
    print("  FPR   :", {k: round(v, 3) for k, v in pfr.rates.fpr.items()})
    print("  FNR   :", {k: round(v, 3) for k, v in pfr.rates.fnr.items()})


if __name__ == "__main__":
    main()
