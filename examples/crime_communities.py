"""Violent-neighborhood prediction with a star-rating fairness graph (§4.3).

Demonstrates the *comparable individuals* elicitation (§3.2.1): communities
with the same (rounded) mean resident safety rating form an equivalence
class and are linked as equally deserving. The example also shows the
sparsity of real side information — only ~75 % of communities have reviews,
and the fairness graph simply leaves the rest unconstrained.

Run:  python examples/crime_communities.py [--scale 0.35]
"""

import argparse

import numpy as np

from repro import simulate_crime
from repro.datasets import rating_equivalence_classes
from repro.experiments import ExperimentHarness, render_table
from repro.graphs import edge_count, graph_density


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.35)
    args = parser.parse_args()

    data = simulate_crime(
        max(50, int(1423 * args.scale)), max(50, int(570 * args.scale)), seed=0
    )
    print("Dataset:", data.table1_row())

    ratings = data.side_information
    observed = ~np.isnan(ratings)
    print(f"Communities with reviews: {observed.sum()} / {data.n_samples}")
    classes = rating_equivalence_classes(ratings)
    sizes = {int(c): int((classes == c).sum()) for c in np.unique(classes) if c >= 0}
    print("Equivalence classes (star -> count):", sizes)

    harness = ExperimentHarness(data, seed=0, n_components=2)
    harness.prepare()
    print(
        f"Fairness graph: {edge_count(harness.W_fair_full)} edges, "
        f"density {graph_density(harness.W_fair_full):.4f}"
    )

    methods = ("original+", "ifair+", "lfr+", "pfr", "hardt+")
    results = harness.run_methods(methods, gamma=1.0)
    rows = [
        [
            m,
            r.summary()["auc"],
            r.summary()["consistency_wf"],
            r.summary()["parity_gap"],
            r.summary()["fpr_gap"],
            r.summary()["fnr_gap"],
        ]
        for m, r in results.items()
    ]
    print(render_table(["method", "AUC", "Cons(WF)", "parity", "FPR gap", "FNR gap"], rows))


if __name__ == "__main__":
    main()
