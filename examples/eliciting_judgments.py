"""Eliciting fairness judgments from (imperfect) human judges (§3.2).

Walks the full elicitation pipeline the paper describes but cannot ship:

1. judges rate a sample of candidates on a 5-point Likert scale
   ("How suitable is A for graduate school?") — with configurable judge
   noise and partial coverage;
2. other judges answer sparse binary questions ("Is A similar to B?"),
   sometimes wrongly;
3. the binary verdicts are consolidated into equivalence classes by
   transitive closure (union-find);
4. each elicitation becomes a fairness graph, and PFR is trained on both
   so their downstream effects can be compared.

Run:  python examples/eliciting_judgments.py
"""

import numpy as np

from repro import simulate_admissions
from repro.experiments import ExperimentHarness, render_table
from repro.graphs import (
    equivalence_class_graph,
    equivalence_classes_from_pairs,
    likert_judgments,
    noisy_pairwise_judgments,
    pairwise_judgment_graph,
    edge_count,
)
from repro.metrics import restrict_graph


def main():
    data = simulate_admissions(300, seed=7)
    # Ground-truth deservingness: margin over the group's own threshold.
    total = data.X[:, 0] + data.X[:, 1]
    suitability = total - np.where(data.s == 0, 210.0, 200.0)

    # --- elicitation A: Likert ratings -> equivalence classes ------------
    levels = likert_judgments(
        suitability, n_levels=5, judge_noise=0.05, coverage=0.8, seed=0
    )
    w_likert = equivalence_class_graph(levels, mask=levels != -1)
    print(f"Likert elicitation: {np.sum(levels != -1)} rated candidates, "
          f"{edge_count(w_likert)} graph edges")

    # --- elicitation B: noisy binary pairwise verdicts --------------------
    truth_classes = likert_judgments(suitability, n_levels=5, seed=1)
    positives, asked = noisy_pairwise_judgments(
        truth_classes,
        n_pairs=3000,
        false_positive_rate=0.02,
        false_negative_rate=0.1,
        seed=0,
    )
    recovered = equivalence_classes_from_pairs(positives, n=data.n_samples)
    w_pairs = pairwise_judgment_graph(positives, n=data.n_samples)
    print(f"Pairwise elicitation: {len(asked)} questions, "
          f"{len(positives)} 'similar' verdicts, "
          f"{len(np.unique(recovered[recovered != -1]))} recovered classes")

    # --- train PFR on each graph ------------------------------------------
    rows = []
    for name, w_fair in (("likert", w_likert), ("pairwise", w_pairs)):
        harness = ExperimentHarness(data, seed=0, n_components=2)
        harness.prepare()
        harness.W_fair_full = w_fair
        harness.W_fair_train = restrict_graph(w_fair, harness.train_idx)
        harness.W_fair_test = restrict_graph(w_fair, harness.test_idx)
        result = harness.run_method("pfr", gamma=0.9)
        summary = result.summary()
        rows.append(
            [name, summary["auc"], summary["consistency_wf"],
             summary["parity_gap"]]
        )
    print()
    print(render_table(["elicitation", "AUC", "Cons(WF)", "parity gap"], rows))


if __name__ == "__main__":
    main()
