"""Cross-seed error bars for the method comparison (reviewer mode).

Single-seed results can mislead; this example re-runs the synthetic
comparison across several seeds — a fresh data draw and split each time —
and reports each metric as mean ± std, plus PFR's Pareto frontier over γ.

Seeds are independent, so they fan out across worker processes with
``--workers`` — the aggregates are bitwise identical to a serial run.

Run:  python examples/error_bars.py [--seeds 5] [--n 150] [--workers auto]
"""

import argparse

from repro.datasets import simulate_admissions
from repro.experiments import (
    ExperimentHarness,
    render_table,
    repeat_methods,
    tradeoff_frontier,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--n", type=int, default=150,
                        help="candidates per group")
    parser.add_argument("--workers", default=None,
                        help="process fan-out: a count or 'auto' "
                             "(default: serial)")
    args = parser.parse_args()

    workers = args.workers
    if workers is not None and workers != "auto":
        workers = int(workers)

    aggregated = repeat_methods(
        lambda seed: simulate_admissions(args.n, seed=seed),
        ("original", "lfr", "pfr"),
        seeds=tuple(range(args.seeds)),
        gamma=0.9,
        harness_kwargs={"n_components": 2},
        workers=workers,
    )

    rows = [
        [
            method,
            a.format("auc"),
            a.format("consistency_wf"),
            a.format("parity_gap"),
        ]
        for method, a in aggregated.items()
    ]
    print(f"Synthetic admissions, {args.seeds} seeds, n={2 * args.n}:")
    print(render_table(["method", "AUC", "Cons(WF)", "parity gap"], rows))

    harness = ExperimentHarness(
        simulate_admissions(args.n, seed=0), seed=0, n_components=2
    )
    frontier = tradeoff_frontier(
        harness, "pfr", grid={"gamma": [0.0, 0.25, 0.5, 0.75, 1.0]}
    )["frontier"]
    print("\nPFR Pareto frontier over gamma (seed 0):")
    print(
        render_table(
            ["gamma", "AUC", "Consistency(WF)"],
            [[p["gamma"], r.auc, r.consistency_wf] for p, r in frontier],
        )
    )


if __name__ == "__main__":
    main()
