"""Explore PFR's γ trade-off on any of the three workloads (Figures 4/7/10).

γ = 0 reduces PFR to a locality-preserving projection of the data graph
``WX``; γ = 1 embeds the fairness graph ``WF`` alone. The sweep shows how
consistency with the human judgments, consistency with the data
neighborhoods, utility, and the per-group AUC gap move as the fairness
graph takes over.

Run:  python examples/gamma_tradeoff.py [--dataset crime] [--scale 0.35]
"""

import argparse

from repro.experiments import figure4, figure7, figure10

DRIVERS = {"synthetic": figure4, "crime": figure7, "compas": figure10}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=sorted(DRIVERS), default="crime")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument(
        "--gammas",
        type=float,
        nargs="+",
        default=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    )
    args = parser.parse_args()

    driver = DRIVERS[args.dataset]
    result = driver(scale=args.scale, seed=0, gammas=tuple(args.gammas))
    print(result.render())

    series = result.data["series"]
    start, end = 0, -1
    print("\nWhat moved from γ=%.1f to γ=%.1f:" % (args.gammas[0], args.gammas[-1]))
    for name, values in series.items():
        print(f"  {name:16s} {values[start]:.3f} -> {values[end]:.3f}")


if __name__ == "__main__":
    main()
