"""Exercise a running ``python -m repro serve`` instance — stdlib only.

Start a server against a registry with at least one fitted transformer::

    python -m repro serve --registry models/ --port 8321

then point this client at it::

    python examples/http_client.py --url http://127.0.0.1:8321

The client walks the whole HTTP surface: health check, model listing,
single-row and batch transforms, a promote round-trip (only when the
model has at least two versions — it restores the original ``latest``
before exiting), and a Prometheus metrics scrape. It exits non-zero on
the first inconsistent response, so CI can use it as a smoke test.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from urllib.parse import urlparse


class Client:
    """A thin keep-alive JSON client for the repro serving API."""

    def __init__(self, url: str):
        parsed = urlparse(url)
        self.conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port or 80, timeout=30
        )

    def request(self, method: str, path: str, payload=None, expect=200):
        body = None if payload is None else json.dumps(payload)
        self.conn.request(method, path, body=body)
        response = self.conn.getresponse()
        raw = response.read()
        if response.headers.get("Content-Type", "").startswith("application/json"):
            data = json.loads(raw)
        else:
            data = raw.decode("utf-8")
        if response.status != expect:
            raise SystemExit(
                f"{method} {path}: expected {expect}, got "
                f"{response.status}: {data}"
            )
        return data

    def close(self):
        self.conn.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8321")
    parser.add_argument(
        "--model", default=None,
        help="model name to exercise (default: first registered model)",
    )
    args = parser.parse_args()
    client = Client(args.url)

    health = client.request("GET", "/healthz")
    print(f"healthz: {health['status']} "
          f"({health['workers']} workers, max_queue={health['max_queue']})")

    models = client.request("GET", "/models")["models"]
    if not models:
        raise SystemExit("registry is empty — register a model first")
    if args.model is not None:
        matches = [m for m in models if m["name"] == args.model]
        if not matches:
            raise SystemExit(f"model {args.model!r} is not registered")
        record = matches[0]
    else:
        record = models[0]
    name = record["name"]
    n_features = record["n_features_in"]
    print(f"model: {record['spec']} ({record['model_type']}, "
          f"{n_features} features)")

    # Deterministic query rows: enough to prove shapes round-trip.
    row = [float(i % 7 - 3) / 3.0 for i in range(n_features)]
    single = client.request(
        "POST", "/transform", {"model": name, "row": row}
    )
    print(f"transform row   -> {single['model']}: "
          f"{len(single['row'])} components")

    rows = [[v * scale for v in row] for scale in (0.5, 1.0, 2.0)]
    batch = client.request(
        "POST", "/transform", {"model": f"{name}@latest", "rows": rows}
    )
    if len(batch["rows"]) != len(rows):
        raise SystemExit(
            f"batch transform returned {len(batch['rows'])} rows for "
            f"{len(rows)} inputs"
        )
    print(f"transform batch -> {batch['model']}: {len(batch['rows'])} rows")

    detail = client.request("GET", f"/models/{name}")
    versions = detail["all_versions"]
    if len(versions) >= 2:
        original = detail["version"]
        other = next(v for v in versions if v != original)
        promoted = client.request(
            "POST", f"/models/{name}/promote", {"version": other}
        )
        if not promoted["is_latest"] or promoted["version"] != other:
            raise SystemExit(f"promote did not take: {promoted}")
        flipped = client.request(
            "POST", "/transform", {"model": f"{name}@latest", "row": row}
        )
        if flipped["model"] != f"{name}@{other}":
            raise SystemExit(
                f"@latest still serves {flipped['model']} after promoting "
                f"version {other}"
            )
        client.request(
            "POST", f"/models/{name}/promote", {"version": original}
        )
        print(f"promote: v{original} -> v{other} -> v{original} "
              "(latest follows, then restored)")
    else:
        print("promote: skipped (single version registered)")

    metrics = client.request("GET", "/metrics")
    wanted = ("repro_http_requests_total", "repro_serving_rows_total")
    for metric in wanted:
        if metric not in metrics:
            raise SystemExit(f"metrics scrape is missing {metric}")
    n_lines = len([l for l in metrics.splitlines() if not l.startswith("#")])
    print(f"metrics: {n_lines} samples scraped "
          f"({', '.join(wanted)} present)")

    client.close()
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
