"""Kernel PFR (§3.3.4) on non-linearly structured data.

The paper leaves the kernelized variant as future work; this example shows
what it buys. Individuals live on two concentric rings (not linearly
separable); the fairness graph links equally-deserving individuals across
the two groups. Linear PFR cannot simultaneously preserve the rings and
honor the graph, while RBF-kernel PFR can.

Run:  python examples/kernel_pfr_nonlinear.py
"""

import numpy as np

from repro.core import PFR, KernelPFR
from repro.graphs import pairwise_judgment_graph
from repro.ml import LogisticRegression, roc_auc_score, train_test_split


def make_rings(n_per_ring: int = 120, seed: int = 0):
    """Two concentric rings; the outer ring is the positive class."""
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0, 2 * np.pi, size=2 * n_per_ring)
    radii = np.concatenate(
        [
            rng.normal(1.0, 0.08, size=n_per_ring),
            rng.normal(3.0, 0.08, size=n_per_ring),
        ]
    )
    X = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    y = (radii > 2.0).astype(np.int64)
    # Two groups interleaved along the rings; fairness judgments link
    # same-angle individuals across groups.
    s = (np.arange(2 * n_per_ring) % 2).astype(np.int64)
    order = np.argsort(angles)
    pairs = [(order[i], order[i + 1]) for i in range(0, len(order) - 1, 2)]
    return X, y, s, pairs


def evaluate(name, model, X, y, w_fair, train, test):
    Z_train = model.fit(X[train], w_fair).transform(X[train])
    Z_test = model.transform(X[test])
    clf = LogisticRegression().fit(Z_train, y[train])
    auc = roc_auc_score(y[test], clf.predict_proba(Z_test)[:, 1])
    print(f"  {name:12s} AUC = {auc:.3f}")
    return auc


def main():
    X, y, s, pairs = make_rings()
    indices = np.arange(len(y))
    train, test = train_test_split(indices, test_size=0.3, stratify=y, seed=0)
    pair_set = [(i, j) for i, j in pairs if i in set(train) and j in set(train)]
    # re-index pairs into the training submatrix
    position = {int(idx): pos for pos, idx in enumerate(train)}
    local_pairs = [(position[int(i)], position[int(j)]) for i, j in pair_set]
    w_fair = pairwise_judgment_graph(local_pairs, n=len(train))

    print("Concentric-rings workload (outer ring = positive class)")
    raw_clf = LogisticRegression().fit(X[train], y[train])
    print(f"  {'raw LR':12s} AUC = "
          f"{roc_auc_score(y[test], raw_clf.predict_proba(X[test])[:, 1]):.3f}")

    evaluate("linear PFR", PFR(n_components=2, gamma=0.3, n_neighbors=8),
             X, y, w_fair, train, test)
    evaluate(
        "kernel PFR",
        KernelPFR(n_components=8, gamma=0.3, n_neighbors=8, kernel="rbf"),
        X, y, w_fair, train, test,
    )


if __name__ == "__main__":
    main()
