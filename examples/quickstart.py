"""Quickstart: learn a Pairwise Fair Representation in ~30 lines.

The workflow has three steps:

1. get data and *pairwise fairness judgments* (here: the paper's synthetic
   US-admissions scenario, with judgments simulated by within-group
   rankings pooled into quantiles);
2. fit PFR on the training split — it needs the feature matrix and the
   fairness-graph adjacency, nothing else;
3. train any off-the-shelf classifier on the learned representation and
   evaluate utility, individual fairness, and group fairness.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PFR, simulate_admissions
from repro.graphs import between_group_quantile_graph
from repro.metrics import consistency, group_rates, restrict_graph
from repro.ml import LogisticRegression, StandardScaler, roc_auc_score, train_test_split
from repro.experiments import within_group_ranking_scores


def main():
    # --- 1. data + fairness graph ---------------------------------------
    data = simulate_admissions(300, seed=7)
    X = StandardScaler().fit_transform(data.X)

    # Simulated human judgments (§4.2.1): rank candidates within their own
    # group, then link equally-ranked candidates across groups.
    scores = within_group_ranking_scores(data.nonprotected_view(), data.y, data.s)
    w_fair = between_group_quantile_graph(scores, data.s, n_quantiles=10)

    indices = np.arange(data.n_samples)
    train, test = train_test_split(indices, test_size=0.3, stratify=data.y, seed=0)

    # --- 2. learn the representation -------------------------------------
    pfr = PFR(n_components=2, gamma=0.9, exclude_columns=data.protected_columns)
    pfr.fit(X[train], restrict_graph(w_fair, train))
    # PFR's embedding columns are unit-norm; rescale so the classifier's
    # regularization and 0.5 threshold behave normally.
    z_scaler = StandardScaler().fit(pfr.transform(X[train]))
    Z_train = z_scaler.transform(pfr.transform(X[train]))
    Z_test = z_scaler.transform(pfr.transform(X[test]))

    # --- 3. downstream classification + evaluation -----------------------
    clf = LogisticRegression().fit(Z_train, data.y[train])
    y_score = clf.predict_proba(Z_test)[:, 1]
    y_pred = clf.predict(Z_test)

    print("AUC              :", round(roc_auc_score(data.y[test], y_score), 3))
    print("Consistency (WF) :", round(consistency(y_pred, restrict_graph(w_fair, test)), 3))
    rates = group_rates(data.y[test], y_pred, data.s[test])
    print("P(ŷ=1) per group :", {k: round(v, 3) for k, v in rates.positive_rate.items()})
    print("FPR per group    :", {k: round(v, 3) for k, v in rates.fpr.items()})
    print("FNR per group    :", {k: round(v, 3) for k, v in rates.fnr.items()})


if __name__ == "__main__":
    main()
