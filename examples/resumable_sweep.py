"""Resumable experiments with the content-addressed run ledger.

Walks the full ledger workflow on a scaled-down COMPAS γ-sweep:

1. run a declarative :class:`~repro.experiments.RunSpec` through a
   ledger (``--store``), cold;
2. re-run it — every cell is a digest hit, the run is pure decode;
3. *widen* the γ grid and re-run — only the new cells are computed;
4. simulate a crash mid-run and show the resume recomputing exactly the
   missing cells with bitwise-identical aggregates;
5. export a fitted PFR into the ledger and promote it into the serving
   :class:`~repro.serving.ModelRegistry` with one call.

Run:  python examples/resumable_sweep.py [--store DIR] [--scale 0.25]
      [--workers auto]

The store directory persists between invocations — run the script twice
and step 1 is already warm.
"""

import argparse
import tempfile

from repro.experiments import ExperimentHarness, RunSpec, run_spec
from repro.experiments.harness import ExperimentHarness as _Harness
from repro.store import RunLedger


def spec_dict(scale: float, gammas) -> dict:
    return {
        "name": "compas-gamma-sweep",
        "datasets": [{"name": "compas", "scale": scale}],
        "methods": ["pfr"],
        "gammas": list(gammas),
        "seeds": [0, 1],
        "harness": {"n_components": 3},
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None,
                        help="ledger directory (default: a temp dir)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="COMPAS size fraction (default 0.25)")
    parser.add_argument("--workers", default=None,
                        help="process fan-out: a count or 'auto'")
    args = parser.parse_args()
    workers = (
        None if args.workers is None
        else args.workers if args.workers == "auto" else int(args.workers)
    )
    store = args.store or tempfile.mkdtemp(prefix="repro-ledger-")

    spec = RunSpec.from_dict(spec_dict(args.scale, [0.0, 0.5, 1.0]))

    print(f"== 1. cold run into {store} ==")
    cold = run_spec(spec, store=store, workers=workers)
    print(f"{cold.n_total} cells: {cold.n_computed} computed, "
          f"{cold.n_cached} cached")

    print("\n== 2. warm re-run (pure decode) ==")
    warm = run_spec(spec, store=store, workers=workers)
    print(f"{warm.n_total} cells: {warm.n_computed} computed, "
          f"{warm.n_cached} cached (hit rate {warm.hit_rate:.0%})")

    print("\n== 3. widen the grid by one gamma ==")
    widened = RunSpec.from_dict(spec_dict(args.scale, [0.0, 0.25, 0.5, 1.0]))
    extended = run_spec(widened, store=store, workers=workers)
    print(f"{extended.n_total} cells: {extended.n_computed} computed "
          f"(only the new gamma), {extended.n_cached} cached")

    print("\n== 4. kill mid-run, then resume ==")
    crash_store = tempfile.mkdtemp(prefix="repro-crash-")
    original = _Harness.run_method
    completed = {"n": 0}

    def dying(self, *a, **k):
        if completed["n"] >= 3:
            raise KeyboardInterrupt("simulated ctrl-C")
        completed["n"] += 1
        return original(self, *a, **k)

    _Harness.run_method = dying
    try:
        run_spec(spec, store=crash_store)
    except KeyboardInterrupt:
        print(f"interrupted after {completed['n']} cells")
    finally:
        _Harness.run_method = original

    resumed = run_spec(spec, store=crash_store, workers=workers)
    print(f"resume: {resumed.n_cached} cells survived the crash, "
          f"{resumed.n_computed} recomputed")
    for key in cold.aggregates:
        assert resumed.aggregates[key].mean == cold.aggregates[key].mean
        assert resumed.aggregates[key].std == cold.aggregates[key].std
    print("resumed aggregates are bitwise identical to the cold run")

    print("\n== 5. experiment -> serving promotion ==")
    from repro.serving import ModelRegistry

    harness = ExperimentHarness(
        spec_to_dataset(spec), seed=0, n_components=3, store=store
    )
    entry = harness.export_model("pfr", gamma=0.5)
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
    record = registry.register_from_ledger(store, entry.digest, "compas-pfr")
    print(f"registered {record.spec} ({record.model_type}) from ledger "
          f"entry {entry.digest[:12]}…")
    print(f"\nledger now holds {len(RunLedger(store).ls())} entries "
          f"(`python -m repro store ls --store {store}`)")


def spec_to_dataset(spec: RunSpec):
    from repro.experiments import make_workload

    name, scale = spec.datasets[0]
    return make_workload(name, seed=spec.seeds[0], scale=scale)


if __name__ == "__main__":
    main()
