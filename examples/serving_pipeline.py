"""Serving: from a fitted PFR to a versioned, cached transform service.

The paper's deployability claim (§3.3) is that once PFR is fitted, unseen
individuals are mapped into the fair representation with no pairwise
judgments at test time. This example walks the full production path that
claim enables:

1. fit PFR on a training split (as in ``quickstart.py``);
2. register it in a versioned on-disk model registry;
3. stand up a ``TransformService`` and serve a held-out batch through the
   chunked, cached bulk path;
4. serve concurrent single-row requests through the micro-batcher;
5. inspect the service counters and registry manifest.

Run:  python examples/serving_pipeline.py
"""

import tempfile
import threading

import numpy as np

from repro import PFR, simulate_admissions
from repro.experiments import within_group_ranking_scores
from repro.graphs import between_group_quantile_graph
from repro.metrics import restrict_graph
from repro.ml import StandardScaler, train_test_split
from repro.serving import ModelRegistry, TransformService


def main():
    # --- 1. fit (identical to the quickstart) ----------------------------
    data = simulate_admissions(300, seed=7)
    X = StandardScaler().fit_transform(data.X)
    scores = within_group_ranking_scores(data.nonprotected_view(), data.y, data.s)
    w_fair = between_group_quantile_graph(scores, data.s, n_quantiles=10)
    train, test = train_test_split(
        np.arange(data.n_samples), test_size=0.3, stratify=data.y, seed=0
    )
    pfr = PFR(n_components=2, gamma=0.9, exclude_columns=data.protected_columns)
    pfr.fit(X[train], restrict_graph(w_fair, train))

    with tempfile.TemporaryDirectory() as root:
        # --- 2. register as a versioned artifact -------------------------
        registry = ModelRegistry(root)
        record = registry.register("pfr-admissions", pfr)
        print(f"registered {record.spec}: {record.model_type}, "
              f"{record.n_features_in} features, "
              f"repro {record.library_version}")

        # --- 3. bulk path: transform the held-out split ------------------
        service = TransformService(registry)
        Z_test = service.transform("pfr-admissions@latest", X[test])
        print(f"bulk transform    : {Z_test.shape[0]} rows -> "
              f"{Z_test.shape[1]}-d fair representation")

        # Repeated traffic is served from the LRU cache (no matmul):
        service.transform("pfr-admissions@latest", X[test])

        # --- 4. online path: concurrent single-row clients ---------------
        with service.microbatcher("pfr-admissions", max_wait=0.005) as batcher:
            rows = X[test][:16]
            results = [None] * len(rows)

            def client(i):
                results[i] = batcher.submit(rows[i])

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(rows))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats
            print(f"micro-batching    : {stats['n_rows']} requests served in "
                  f"{stats['n_batches']} vectorized calls "
                  f"(mean batch {stats['mean_batch_size']:.1f})")
        np.testing.assert_allclose(np.stack(results), Z_test[:16], atol=1e-9)

        # --- 5. observability --------------------------------------------
        totals = service.stats()["totals"]
        print(f"service counters  : {totals['rows']} rows, "
              f"{totals['cache_hits']} cache hits, "
              f"{totals['cache_misses']} misses")
        print(f"registry versions : "
              f"{[r.spec for r in registry.versions('pfr-admissions')]}")


if __name__ == "__main__":
    main()
