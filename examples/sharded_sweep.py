"""Distributed sweeps: shard a RunSpec across processes, merge, report.

The scale-out workflow on one box, using real subprocesses so each shard
is exactly what a separate machine would run:

1. write a small COMPAS γ-sweep spec to a JSON file;
2. launch ``python -m repro experiments run SPEC --store SHARD_i --shard
   i/2`` for both shards **concurrently** — each computes only the cells
   whose task digest hashes to its index, into its own store;
3. ``python -m repro store merge MERGED SHARD_0 SHARD_1`` — the digest-
   keyed union (idempotent: re-running the merge dedupes 100%);
4. a final un-sharded ``run_spec`` over the merged store: every cell is
   a ledger hit, and the aggregates are bitwise identical to what a
   serial single-store run would have produced.

Run:  python examples/sharded_sweep.py [--store-root DIR] [--scale 0.2]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import RunSpec, compile_cells, run_spec, shard_of
from repro.store import RunLedger, merge_stores

N_SHARDS = 2


def spec_dict(scale: float) -> dict:
    return {
        "name": "sharded-compas-sweep",
        "datasets": [{"name": "compas", "scale": scale}],
        "methods": ["pfr"],
        "gammas": [0.0, 0.5, 1.0],
        "seeds": [0, 1],
        "harness": {"n_components": 3},
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store-root", default=None,
                        help="directory for the shard + merged stores "
                             "(default: a temp dir)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="COMPAS size fraction (default 0.2)")
    args = parser.parse_args()
    root = Path(args.store_root or tempfile.mkdtemp(prefix="repro-sharded-"))
    root.mkdir(parents=True, exist_ok=True)

    spec = RunSpec.from_dict(spec_dict(args.scale))
    spec_path = root / "spec.json"
    spec_path.write_text(json.dumps(spec_dict(args.scale), indent=2))

    print("== 1. how the matrix shards ==")
    cells = compile_cells(spec)
    for i in range(N_SHARDS):
        mine = [c for c in cells if shard_of(c["digest"], N_SHARDS) == i]
        print(f"shard {i}/{N_SHARDS}: {len(mine)} of {len(cells)} cells")

    print("\n== 2. run both shards as concurrent subprocesses ==")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(Path(__file__).resolve().parents[1] / "src"),
                    env.get("PYTHONPATH")] if p
    )
    start = time.perf_counter()
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "experiments", "run",
             str(spec_path), "--store", str(root / f"shard{i}"),
             "--shard", f"{i}/{N_SHARDS}"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        for i in range(N_SHARDS)
    ]
    for i, proc in enumerate(procs):
        out, _ = proc.communicate()
        if proc.returncode != 0:
            print(out)
            raise SystemExit(f"shard {i} failed ({proc.returncode})")
        print(f"--- shard {i} ---")
        print(out.strip().splitlines()[-1])
    print(f"both shards done in {time.perf_counter() - start:.1f}s "
          "(wall-clock of the slower one — they ran concurrently)")

    print("\n== 3. merge the shard stores ==")
    report = merge_stores(
        root / "merged", *(root / f"shard{i}" for i in range(N_SHARDS))
    )
    print(f"copied {report.n_copied} entries, deduped {report.n_deduped}, "
          f"conflicts {report.n_conflicts}")
    again = merge_stores(
        root / "merged", *(root / f"shard{i}" for i in range(N_SHARDS))
    )
    print(f"re-merge is idempotent: copied {again.n_copied}, "
          f"dedupe rate {again.dedupe_rate:.0%}")
    problems = RunLedger(root / "merged").verify()["problems"]
    print(f"store verify on the merged ledger: {len(problems)} problems")

    print("\n== 4. report over the merged store ==")
    merged = run_spec(spec, store=root / "merged")
    print(f"{merged.n_total} cells: {merged.n_cached} cached, "
          f"{merged.n_computed} computed (nothing left to do)")
    serial = run_spec(spec, store=root / "serial")  # ground truth
    for key in serial.aggregates:
        assert merged.aggregates[key].mean == serial.aggregates[key].mean
        assert merged.aggregates[key].std == serial.aggregates[key].std
    print("merged aggregates are bitwise identical to a serial "
          "single-store run")
    print(f"\nstores live under {root} "
          f"(`python -m repro store stats --store {root / 'merged'}`)")


if __name__ == "__main__":
    main()
