"""Online refresh: drift detection and auto re-promotion on a live stream.

A landmark PFR is fitted once, registered, and served. Then the serving
distribution shifts. This example walks the closed production loop
(`repro.lifecycle`):

1. fit a landmark plan and register the model (ledger + registry);
2. stream in-distribution batches — scores stay above the fit-time
   baseline, nothing happens;
3. stream drifted batches — the per-row fidelity collapses, the
   ``RefreshPolicy`` fires, and the plan warm-start refits: new
   landmarks come from the pending rows only, the old landmark graph is
   reused as a block, and the child's stage digests chain off the
   parent's;
4. the refreshed model is written to the run ledger with a ``parent``
   link, registered, and promoted — a concurrently running
   ``TransformService`` hot-swaps to it on the next ``@latest`` request;
5. a holdout guard: had the refreshed model scored the in-distribution
   holdout worse, the previous version would have been re-promoted.

Run:  python examples/streaming_refresh.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import PFR
from repro.core import LandmarkPlan
from repro.graphs import knn_graph
from repro.lifecycle import LifecycleController, RefreshPolicy
from repro.serving import ModelRegistry, TransformService
from repro.store import RunLedger


def make_batch(rng, n, n_features, *, shift=0.0):
    return rng.normal(loc=shift, size=(n, n_features))


def main():
    rng = np.random.default_rng(7)
    n, n_features = 2_000, 8

    # --- 1. fit + register ------------------------------------------------
    X = make_batch(rng, n, n_features)
    # Stand-in fairness graph: nearest-neighbour similarity (a real
    # workload would use judgment/quantile graphs, see quickstart.py).
    w_fair = knn_graph(X, n_neighbors=10)
    estimator = PFR(
        n_components=4, gamma=0.5, extension="nystrom", landmarks=200
    )
    plan = LandmarkPlan.for_estimator(estimator, X, w_fair)
    plan.fit(estimator)
    print(f"fitted: {n} rows on {plan.n_landmarks} landmarks")

    with tempfile.TemporaryDirectory() as root:
        root = Path(root)
        ledger = RunLedger(root / "ledger")
        registry = ModelRegistry(root / "registry")
        controller = LifecycleController(
            plan,
            estimator,
            registry=registry,
            name="pfr-online",
            ledger=ledger,
            policy=RefreshPolicy(stale_fraction=0.5, min_rows=64),
            holdout=make_batch(rng, 200, n_features),
        )
        controller.ensure_registered()

        # A service any client could be hitting while we stream:
        service = TransformService(registry, drift=True, drift_floor=0.3)
        spec, _ = service.transform_versioned(
            "pfr-online@latest", make_batch(rng, 16, n_features)
        )
        print(f"serving {spec}")

        # --- 2. in-distribution traffic: nothing to do --------------------
        for _ in range(2):
            event = controller.ingest(make_batch(rng, 100, n_features))
            print(
                f"in-dist batch : fidelity {event['batch_mean']:.3f}, "
                f"window drift {event['drift_fraction']:.1%}, "
                f"refresh: {event['refresh'] is not None}"
            )

        # --- 3. the distribution shifts ------------------------------------
        refresh = None
        while refresh is None:
            event = controller.ingest(
                make_batch(rng, 100, n_features, shift=3.0)
            )
            print(
                f"drifted batch : fidelity {event['batch_mean']:.3f}, "
                f"window drift {event['drift_fraction']:.1%}, "
                f"refresh: {event['refresh'] is not None}"
            )
            refresh = event["refresh"]

        # --- 4. refreshed, promoted, hot-swapped ---------------------------
        print(
            f"refreshed in {refresh['seconds']:.2f}s -> version "
            f"{refresh['version']} ({refresh['n_landmarks']} landmarks), "
            f"holdout {refresh['holdout_parent']:.3f} -> "
            f"{refresh['holdout_child']:.3f}, "
            f"rolled_back={refresh['rolled_back']}"
        )
        spec, _ = service.transform_versioned(
            "pfr-online@latest", make_batch(rng, 16, n_features, shift=3.0)
        )
        print(f"service now resolves @latest -> {spec} (no restart)")

        # Provenance: the child's ledger entry links to its parent.
        child = [e for e in ledger.ls(kind="lifecycle_model") if e.parent][0]
        chain = ledger.lineage(child.digest)
        print(
            "ledger lineage: "
            + " -> ".join(entry.digest[:10] for entry in chain)
        )
        digests = registry.record("pfr-online").stage_digests
        print(f"refreshed stage digests include 'extend': "
              f"{'extend' in digests}")

        # --- 5. the service's own drift window -----------------------------
        status = service.drift_status()
        for model_spec, snap in sorted(status["models"].items()):
            if snap is not None:
                print(
                    f"served drift  : {model_spec} scored {snap['count']} "
                    f"rows, mean {snap['mean']:.3f}"
                )


if __name__ == "__main__":
    main()
