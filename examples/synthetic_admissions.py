"""The paper's synthetic US-admissions study (§4.2), end to end.

Reproduces the Figure 1 representation comparison and the Figure 2 utility
vs. individual-fairness bars with ASCII rendering — the scenario from the
paper's introduction where one group's SAT scores are inflated by retakes
and a fair selection must treat equally-ranked candidates of both groups
alike.

Run:  python examples/synthetic_admissions.py
"""

from repro.experiments import figure1, figure2, figure3


def main():
    print(figure1(scale=1.0, seed=0).render())
    print()
    print(figure2(scale=1.0, seed=0).render())
    print()
    fig3 = figure3(scale=1.0, seed=0)
    print(fig3.render())

    print("\nSummary (synthetic admissions):")
    for method, result in fig3.data["results"].items():
        summary = result.summary()
        print(
            f"  {method:10s} AUC={summary['auc']:.3f} "
            f"Consistency(WF)={summary['consistency_wf']:.3f} "
            f"parity gap={summary['parity_gap']:.3f}"
        )


if __name__ == "__main__":
    main()
