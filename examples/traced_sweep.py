"""Observability walkthrough: trace a γ-sweep and read the trace back.

Shows the :mod:`repro.obs` layer end to end on a scaled-down synthetic
sweep:

1. run a declarative :class:`~repro.experiments.RunSpec` inside a
   :func:`repro.obs.tracing` block — every fit-plan stage, every spec
   cell and the executor's worker tasks emit spans into one JSONL file,
   and the ledger's hit/miss counters ride along in a final ``metrics``
   record;
2. re-run it warm, appending to the same trace — the second run is pure
   ledger decode, which the trace shows as zero ``spec.cell`` spans and
   a 100 % hit-rate delta;
3. summarize the trace in-process (exactly what ``python -m repro obs
   summary`` prints): per-stage wall time, cached/computed cell counts
   that match the :class:`~repro.experiments.RunReport`, ledger and
   solve-cache hit rates;
4. read the same numbers from the report's ``telemetry`` sidecar —
   no trace file needed when you only want the totals.

Run:  python examples/traced_sweep.py [--trace PATH] [--workers auto]

Tracing is strictly observational: run the sweep with and without
``--trace`` and the results (and their content digests) are identical.
"""

import argparse
import tempfile
from pathlib import Path

from repro.experiments import RunSpec, run_spec
from repro.obs import format_trace_summary, read_trace, summarize_trace, tracing

SPEC = {
    "name": "traced-synthetic-sweep",
    "datasets": [{"name": "synthetic", "scale": 0.4}],
    "methods": ["original", "pfr"],
    "gammas": [0.0, 0.5, 1.0],
    "seeds": [0, 1],
    "harness": {"n_components": 2},
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None,
                        help="trace file (default: a temp file)")
    parser.add_argument("--workers", default=None,
                        help="process fan-out: a count or 'auto'")
    args = parser.parse_args()
    workers = (
        None if args.workers is None
        else args.workers if args.workers == "auto" else int(args.workers)
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-traced-"))
    trace = Path(args.trace) if args.trace else workdir / "sweep.jsonl"
    store = workdir / "ledger"
    spec = RunSpec.from_dict(SPEC)

    print(f"== 1. cold traced run -> {trace} ==")
    with tracing(trace):
        cold = run_spec(spec, store=store, workers=workers)
    print(f"{cold.n_total} cells: {cold.n_computed} computed, "
          f"{cold.n_cached} cached")

    print("\n== 2. warm re-run, appended to the same trace ==")
    with tracing(trace):
        warm = run_spec(spec, store=store, workers=workers)
    print(f"{warm.n_total} cells: {warm.n_computed} computed, "
          f"{warm.n_cached} cached "
          f"(hit rate {warm.telemetry['ledger']['hit_rate']:.0%})")

    print("\n== 3. summarize the trace (repro obs summary) ==")
    summary = summarize_trace(read_trace(trace))
    print(format_trace_summary(summary))
    assert summary["cells"]["total"] == warm.n_total
    assert summary["cells"]["cached"] == warm.n_cached

    print("\n== 4. the report's telemetry sidecar ==")
    for key, value in sorted(warm.telemetry.items()):
        print(f"  {key}: {value}")
    print(f"\ntrace kept at {trace}; inspect with:\n"
          f"  python -m repro obs summary {trace}\n"
          f"  python -m repro obs tail {trace} -n 10")


if __name__ == "__main__":
    main()
