"""repro — Pairwise Fair Representations (PFR).

A complete reproduction of *"Operationalizing Individual Fairness with
Pairwise Fair Representations"* (Lahoti, Gummadi & Weikum, VLDB 2019),
including the PFR model, every baseline the paper compares against, the
fairness-graph constructions, the evaluation measures, the datasets
(simulators calibrated to the paper's Table 1 plus loaders for the real
files), and the experiment harness that regenerates every table and figure.

Quickstart
----------
>>> from repro import PFR, simulate_admissions
>>> from repro.graphs import between_group_quantile_graph
>>> data = simulate_admissions(seed=7)
>>> # rank within groups by label-propensity, link equal quantiles:
>>> from repro.experiments import within_group_ranking_scores
>>> scores = within_group_ranking_scores(data.nonprotected_view(), data.y, data.s)
>>> WF = between_group_quantile_graph(scores, data.s, n_quantiles=10)
>>> Z = PFR(n_components=2, gamma=0.9).fit(data.X, WF).transform(data.X)

Fitted models deploy through :mod:`repro.serving`: a versioned model
registry plus a batched, cached :class:`~repro.serving.TransformService`
(see ``examples/serving_pipeline.py`` and the README).
"""

from .baselines import (
    EqualizedOddsPostProcessor,
    IFair,
    LFR,
    MaskedRepresentation,
    SideInformationAugmenter,
)
from .core import (
    PFR,
    KernelPFR,
    LandmarkPlan,
    SpectralFitPlan,
    fit_path,
    select_landmarks,
)
from .datasets import (
    Dataset,
    load_compas,
    load_crime,
    simulate_admissions,
    simulate_compas,
    simulate_crime,
)
from .exceptions import (
    ConvergenceError,
    DatasetError,
    GraphConstructionError,
    NotFittedError,
    ReproError,
    ValidationError,
)
from .graphs import (
    between_group_quantile_graph,
    equivalence_class_graph,
    knn_graph,
)
from .io import load_model, save_model
from .metrics import (
    consistency,
    demographic_parity_gap,
    equalized_odds_gap,
    group_auc,
    group_rates,
)

from ._version import __version__


def __getattr__(name):
    # Lazy subpackage: `repro.serving` (threads, registry machinery) loads
    # only when first touched, keeping `import repro` and the experiment
    # CLI paths free of the serving stack (PEP 562). Uses importlib
    # directly: a `from . import serving` here would re-enter __getattr__.
    if name in ("serving", "store", "obs", "lifecycle"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PFR",
    "KernelPFR",
    "LandmarkPlan",
    "SpectralFitPlan",
    "fit_path",
    "select_landmarks",
    "EqualizedOddsPostProcessor",
    "IFair",
    "LFR",
    "MaskedRepresentation",
    "SideInformationAugmenter",
    "Dataset",
    "load_compas",
    "load_crime",
    "simulate_admissions",
    "simulate_compas",
    "simulate_crime",
    "ReproError",
    "NotFittedError",
    "ValidationError",
    "ConvergenceError",
    "DatasetError",
    "GraphConstructionError",
    "between_group_quantile_graph",
    "equivalence_class_graph",
    "knn_graph",
    "consistency",
    "demographic_parity_gap",
    "equalized_odds_gap",
    "group_auc",
    "group_rates",
    "load_model",
    "save_model",
    "serving",
    "store",
    "obs",
    "lifecycle",
    "__version__",
]
