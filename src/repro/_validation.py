"""Shared input-validation helpers used across the library.

These helpers normalize user input into well-formed numpy arrays and raise
:class:`repro.exceptions.ValidationError` with actionable messages when the
input cannot be used. They are the single choke point for array hygiene so
that individual estimators stay focused on their algorithms.
"""

from __future__ import annotations

import numbers

import numpy as np
import scipy.sparse as sp

from .exceptions import NotFittedError, ValidationError

__all__ = [
    "check_array",
    "check_X_y",
    "check_consistent_length",
    "check_is_fitted",
    "check_random_state",
    "check_square",
    "check_symmetric",
    "column_or_1d",
    "check_binary_labels",
]


def check_array(
    array,
    *,
    name: str = "X",
    ensure_2d: bool = True,
    allow_sparse: bool = False,
    dtype=np.float64,
    min_samples: int = 1,
):
    """Validate an array-like and return it as a numpy array (or sparse matrix).

    Parameters
    ----------
    array:
        Array-like input to validate.
    name:
        Name used in error messages.
    ensure_2d:
        Require ``array.ndim == 2``. A 1-D input is rejected (not reshaped)
        to force callers to be explicit.
    allow_sparse:
        Accept scipy sparse matrices (returned as CSR).
    dtype:
        Target dtype; ``None`` keeps the input dtype.
    min_samples:
        Minimum number of rows required.
    """
    if sp.issparse(array):
        if not allow_sparse:
            raise ValidationError(f"{name} must be dense; got a sparse matrix")
        array = array.tocsr()
        if array.shape[0] < min_samples:
            raise ValidationError(
                f"{name} needs at least {min_samples} row(s); got {array.shape[0]}"
            )
        if not np.all(np.isfinite(array.data)):
            raise ValidationError(f"{name} contains NaN or infinity")
        return array.astype(dtype) if dtype is not None else array

    try:
        out = np.asarray(array, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} could not be converted to an array: {exc}") from exc

    if ensure_2d and out.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional; got ndim={out.ndim}")
    if out.ndim == 0:
        raise ValidationError(f"{name} must be an array, got a scalar")
    if out.shape[0] < min_samples:
        raise ValidationError(
            f"{name} needs at least {min_samples} row(s); got {out.shape[0]}"
        )
    if out.dtype.kind == "f" and not np.all(np.isfinite(out)):
        raise ValidationError(f"{name} contains NaN or infinity")
    return out


def column_or_1d(y, *, name: str = "y", dtype=None):
    """Validate that ``y`` is 1-D (or a single column) and return it flattened."""
    out = np.asarray(y) if dtype is None else np.asarray(y, dtype=dtype)
    if out.ndim == 2 and out.shape[1] == 1:
        out = out.ravel()
    if out.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional; got shape {out.shape}")
    return out


def check_consistent_length(*arrays) -> int:
    """Verify all arrays share the same first dimension; return that length."""
    lengths = [a.shape[0] if hasattr(a, "shape") else len(a) for a in arrays if a is not None]
    if not lengths:
        raise ValidationError("no arrays given to check_consistent_length")
    if len(set(lengths)) > 1:
        raise ValidationError(f"inconsistent sample counts: {lengths}")
    return lengths[0]


def check_X_y(X, y, *, allow_sparse: bool = False, min_samples: int = 1):
    """Validate a feature matrix and label vector jointly."""
    X = check_array(X, name="X", allow_sparse=allow_sparse, min_samples=min_samples)
    y = column_or_1d(y, name="y")
    check_consistent_length(X, y)
    return X, y


def check_binary_labels(y, *, name: str = "y") -> np.ndarray:
    """Validate that ``y`` holds exactly the labels {0, 1} (or a subset)."""
    y = column_or_1d(y, name=name)
    values = np.unique(y)
    if not np.isin(values, (0, 1)).all():
        raise ValidationError(
            f"{name} must be binary with labels in {{0, 1}}; got values {values}"
        )
    return y.astype(np.int64)


def check_is_fitted(estimator, attributes) -> None:
    """Raise :class:`NotFittedError` unless all ``attributes`` exist on the estimator."""
    if isinstance(attributes, str):
        attributes = (attributes,)
    missing = [a for a in attributes if getattr(estimator, a, None) is None]
    if missing:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() before using "
            f"this method (missing: {', '.join(missing)})"
        )


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    ``Generator`` (returned unchanged).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, numbers.Integral):
        return np.random.default_rng(int(seed))
    raise ValidationError(f"cannot use {seed!r} to seed a random Generator")


def check_square(W, *, name: str = "W", dtype=np.float64):
    """Validate that ``W`` is a square 2-D matrix (dense or sparse).

    ``dtype=None`` keeps the input dtype (the float32 pipeline relies on
    this); the default coerces dense input to float64 as before.
    """
    if sp.issparse(W):
        if W.shape[0] != W.shape[1]:
            raise ValidationError(f"{name} must be square; got shape {W.shape}")
        return W.tocsr()
    W = check_array(W, name=name, dtype=dtype)
    if W.shape[0] != W.shape[1]:
        raise ValidationError(f"{name} must be square; got shape {W.shape}")
    return W


def check_symmetric(W, *, name: str = "W", tol: float = 1e-10, dtype=np.float64):
    """Validate that ``W`` is square and symmetric within ``tol``."""
    W = check_square(W, name=name, dtype=dtype)
    if sp.issparse(W):
        diff = abs(W - W.T)
        if diff.nnz and diff.max() > tol:
            raise ValidationError(f"{name} must be symmetric (max asymmetry {diff.max():.3g})")
        return W
    asym = np.max(np.abs(W - W.T)) if W.size else 0.0
    if asym > tol:
        raise ValidationError(f"{name} must be symmetric (max asymmetry {asym:.3g})")
    return W
