"""Single source of truth for the library version.

Kept in a leaf module (rather than ``repro/__init__``) so that internal
modules — :mod:`repro.io` stamps artifacts with the version, the serving
registry verifies it — can import the version without triggering the
package's full import graph or a circular import.
"""

from __future__ import annotations

__all__ = ["__version__", "version_info"]

__version__ = "1.1.0"

#: ``(major, minor, patch)`` integer triple parsed from ``__version__``.
version_info = tuple(int(part) for part in __version__.split("."))
