"""Baseline methods the paper compares against (§4.1).

* :class:`MaskedRepresentation` — "Original": input with protected
  attributes masked.
* :class:`IFair` — iFair (Lahoti et al., ICDE 2019).
* :class:`LFR` — Learning Fair Representations (Zemel et al., ICML 2013).
* :class:`EqualizedOddsPostProcessor` — Hardt et al. (NIPS 2016).
* :class:`SideInformationAugmenter` — the "+" augmentation that gives every
  baseline train-time access to the fairness-graph side information.
"""

from .augment import SideInformationAugmenter
from .hardt import EqualizedOddsPostProcessor
from .ifair import IFair
from .lfr import LFR
from .original import MaskedRepresentation

__all__ = [
    "SideInformationAugmenter",
    "EqualizedOddsPostProcessor",
    "IFair",
    "LFR",
    "MaskedRepresentation",
]
