"""Shared prototype-softmax machinery for the LFR and iFair baselines.

Both baselines represent each individual as a soft assignment over ``K``
learned prototypes:

    d_nk = Σ_m α_m (x_nm - v_km)²          (α ≡ 1 for LFR)
    U_nk = exp(-d_nk) / Σ_j exp(-d_nj)

This module implements the forward pass and the exact backward pass
(gradients w.r.t. prototypes ``V`` and feature weights ``α``) so both
estimators can run L-BFGS with analytic gradients instead of the original
authors' numerical differentiation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["soft_assignments", "assignment_backprop"]


def soft_assignments(X: np.ndarray, V: np.ndarray, alpha: np.ndarray | None = None):
    """Softmax-over-distance assignments.

    Parameters
    ----------
    X:
        Data, shape ``(n, m)``.
    V:
        Prototypes, shape ``(K, m)``.
    alpha:
        Optional non-negative per-feature distance weights, shape ``(m,)``.

    Returns
    -------
    U : ndarray of shape (n, K)
        Row-stochastic soft assignments.
    D : ndarray of shape (n, K)
        The weighted squared distances used to compute ``U``.
    """
    diff = X[:, None, :] - V[None, :, :]  # (n, K, m)
    if alpha is None:
        D = np.sum(diff * diff, axis=2)
    else:
        D = np.sum(diff * diff * alpha[None, None, :], axis=2)
    # Stable softmax over -D.
    logits = -D
    logits = logits - logits.max(axis=1, keepdims=True)
    expd = np.exp(logits)
    U = expd / expd.sum(axis=1, keepdims=True)
    return U, D


def assignment_backprop(
    X: np.ndarray,
    V: np.ndarray,
    U: np.ndarray,
    G: np.ndarray,
    alpha: np.ndarray | None = None,
    *,
    want_alpha_grad: bool = False,
):
    """Backpropagate a loss gradient through the soft assignments.

    Given ``G = ∂L/∂U`` (same shape as ``U``), returns the gradients with
    respect to the prototypes (and optionally the feature weights) via the
    softmax Jacobian:

        ∂L/∂d_nj = -U_nj (G_nj - Σ_k G_nk U_nk)
        ∂d_nj/∂v_jm = -2 α_m (x_nm - v_jm)
        ∂d_nj/∂α_m  = (x_nm - v_jm)²

    Returns
    -------
    grad_V : ndarray of shape (K, m)
    grad_alpha : ndarray of shape (m,) or None
        Only when ``want_alpha_grad`` is set.
    """
    # P = ∂L/∂D, shape (n, K).
    inner = np.sum(G * U, axis=1, keepdims=True)
    P = -U * (G - inner)

    weights = np.ones(X.shape[1]) if alpha is None else alpha
    # ∂L/∂V through the distances: -2 α_m [ (Pᵀ X)_jm - (Σ_n P_nj) v_jm ]
    col_sums = P.sum(axis=0)  # s_j
    grad_V = -2.0 * weights[None, :] * (P.T @ X - col_sums[:, None] * V)

    if not want_alpha_grad:
        return grad_V, None

    row_sums = P.sum(axis=1)  # q_n
    X_sq = X * X
    V_sq = V * V
    term_x = row_sums @ X_sq  # Σ_nj P_nj x_nm²
    term_cross = np.sum((X.T @ P) * V.T, axis=1)  # Σ_nj P_nj x_nm v_jm
    term_v = col_sums @ V_sq  # Σ_nj P_nj v_jm²
    grad_alpha = term_x - 2.0 * term_cross + term_v
    return grad_V, grad_alpha
