"""Side-information augmentation — the paper's "+" baselines.

For fair comparison the paper augments every baseline with the information
used to construct the fairness graph, "as additional numerical features in
the respective training data. Note that this enhancement is only for
training, as this side-information is not available for the test data"
(§4.3.1).

:class:`SideInformationAugmenter` implements exactly that asymmetry: at
train time the elicited values (star ratings, decile scores, within-group
quantiles) are appended as extra columns; at transform time, when no values
are supplied, the columns are imputed with the training means so the test
features stay side-information-free.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_array, check_is_fitted
from ..exceptions import ValidationError
from ..ml.base import BaseEstimator, TransformerMixin

__all__ = ["SideInformationAugmenter"]


class SideInformationAugmenter(BaseEstimator, TransformerMixin):
    """Append fairness side-information columns, with mean imputation at test time.

    Parameters
    ----------
    side_information:
        Array of shape ``(n_train,)`` or ``(n_train, k)`` aligned with the
        *training* rows passed to ``fit``. Entries may contain NaN for
        individuals without elicited judgments; NaNs are imputed with the
        column mean of the observed entries.
    """

    def __init__(self, side_information=None):
        self.side_information = side_information

    def _as_matrix(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise ValidationError(
                f"side information must be 1-D or 2-D; got shape {values.shape}"
            )
        return values

    def fit(self, X, y=None):
        """Validate alignment and learn per-column imputation means."""
        X = check_array(X, name="X")
        if self.side_information is None:
            raise ValidationError("SideInformationAugmenter requires side_information")
        side = self._as_matrix(self.side_information)
        if side.shape[0] != X.shape[0]:
            raise ValidationError(
                f"side information has {side.shape[0]} rows; X has {X.shape[0]}"
            )
        observed = ~np.isnan(side)
        if not observed.any(axis=0).all():
            raise ValidationError("a side-information column has no observed values")
        means = np.array(
            [side[observed[:, j], j].mean() for j in range(side.shape[1])]
        )
        self.means_ = means
        self.n_features_in_ = X.shape[1]
        self.n_side_columns_ = side.shape[1]
        self._train_side = np.where(observed, side, means[None, :])
        self._train_rows = X.shape[0]
        return self

    def transform(self, X, side_information=None) -> np.ndarray:
        """Append the side columns.

        With explicit ``side_information`` (or when ``X`` is exactly the
        training matrix shape-wise and no values are given but training
        values are cached), the supplied/cached values are used; otherwise
        the training means are imputed — the test-time behaviour.
        """
        check_is_fitted(self, "means_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features; fitted with {self.n_features_in_}"
            )
        if side_information is not None:
            side = self._as_matrix(side_information)
            if side.shape != (X.shape[0], self.n_side_columns_):
                raise ValidationError(
                    f"side information must have shape ({X.shape[0]}, "
                    f"{self.n_side_columns_}); got {side.shape}"
                )
            observed = ~np.isnan(side)
            side = np.where(observed, side, self.means_[None, :])
        else:
            side = np.tile(self.means_, (X.shape[0], 1))
        return np.hstack([X, side])

    def fit_transform(self, X, y=None, **fit_params):
        """Fit, then transform the *training* rows with their true side values."""
        self.fit(X, y)
        return np.hstack([np.asarray(X, dtype=np.float64), self._train_side])
