"""Hardt, Price & Srebro (NIPS 2016) equalized-odds post-processing.

The paper's group-fairness reference point ("Hardt", §4.1): given any
trained binary predictor, derive group-conditional flip probabilities

    p_{s,ŷ} = P(ỹ = 1 | ŷ, s)

that minimize expected error subject to *equalized odds* — equal true- and
false-positive rates across all groups. With the base predictor fixed, both
the objective and the constraints are linear in the four (per group)
probabilities, so the derivation is an exact linear program solved here
with ``scipy.optimize.linprog``.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .._validation import (
    check_binary_labels,
    check_consistent_length,
    check_random_state,
    column_or_1d,
)
from ..exceptions import ConvergenceError, ValidationError
from ..ml.base import BaseEstimator

__all__ = ["EqualizedOddsPostProcessor"]


class EqualizedOddsPostProcessor(BaseEstimator):
    """Derive an equalized-odds predictor from a base predictor's outputs.

    Fit on *validation* outputs: base predictions ``y_pred``, ground truth
    ``y_true`` and group memberships ``s``. Afterwards
    :meth:`predict` maps new base predictions to randomized fair outputs.

    Parameters
    ----------
    seed:
        Seed for the randomized predictions (the derived predictor is
        inherently stochastic).

    Attributes
    ----------
    mix_probabilities_ : dict
        ``{group: (p_if_pred_0, p_if_pred_1)}`` — probability of emitting a
        positive given the base prediction.
    groups_ : ndarray
        Sorted group values seen during fit.
    expected_error_ : float
        The LP's optimal expected misclassification rate.
    """

    def __init__(self, seed=0):
        self.seed = seed

    @staticmethod
    def _conditional_rates(y_true, y_pred, members):
        """P(ŷ=1 | y=1, s), P(ŷ=1 | y=0, s) and class priors within a group."""
        y_t = y_true[members]
        y_p = y_pred[members]
        positives = y_t == 1
        negatives = ~positives
        if positives.sum() == 0 or negatives.sum() == 0:
            raise ValidationError(
                "every group needs both classes present to equalize odds"
            )
        tpr_base = float(np.mean(y_p[positives]))
        fpr_base = float(np.mean(y_p[negatives]))
        return tpr_base, fpr_base, float(np.mean(positives))

    def fit(self, y_true, y_pred, s):
        """Solve the equalized-odds LP from held-out base-predictor outputs."""
        y_true = check_binary_labels(y_true, name="y_true")
        y_pred = check_binary_labels(y_pred, name="y_pred")
        s = column_or_1d(s, name="s")
        check_consistent_length(y_true, y_pred, s)

        groups = np.unique(s)
        if len(groups) < 2:
            raise ValidationError("equalized odds requires at least two groups")

        # Per group g, decision variables (p_g0, p_g1) with
        #   TPR_g = p_g1 * P(ŷ=1|y=1,g) + p_g0 * P(ŷ=0|y=1,g)
        #   FPR_g = p_g1 * P(ŷ=1|y=0,g) + p_g0 * P(ŷ=0|y=0,g)
        # objective = Σ_g w_g [ π_g (1 - TPR_g) + (1-π_g) FPR_g ]
        # constraints: TPR_g = TPR_first, FPR_g = FPR_first for all g.
        n_groups = len(groups)
        n_vars = 2 * n_groups
        cost = np.zeros(n_vars)
        tpr_rows = np.zeros((n_groups, n_vars))
        fpr_rows = np.zeros((n_groups, n_vars))
        group_weights = np.array([np.mean(s == g) for g in groups])

        for idx, group in enumerate(groups):
            members = s == group
            tpr_base, fpr_base, prior = self._conditional_rates(y_true, y_pred, members)
            i0, i1 = 2 * idx, 2 * idx + 1
            tpr_rows[idx, i0] = 1.0 - tpr_base
            tpr_rows[idx, i1] = tpr_base
            fpr_rows[idx, i0] = 1.0 - fpr_base
            fpr_rows[idx, i1] = fpr_base
            weight = group_weights[idx]
            # error_g = π (1 - TPR) + (1-π) FPR  →  linear part: -π TPR + (1-π) FPR
            cost[i0] += weight * (-prior * tpr_rows[idx, i0] + (1 - prior) * fpr_rows[idx, i0])
            cost[i1] += weight * (-prior * tpr_rows[idx, i1] + (1 - prior) * fpr_rows[idx, i1])

        # Equality constraints against group 0.
        A_eq = []
        for idx in range(1, n_groups):
            A_eq.append(tpr_rows[idx] - tpr_rows[0])
            A_eq.append(fpr_rows[idx] - fpr_rows[0])
        A_eq = np.asarray(A_eq)
        b_eq = np.zeros(A_eq.shape[0])

        result = scipy.optimize.linprog(
            cost,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=[(0.0, 1.0)] * n_vars,
            method="highs",
        )
        if not result.success:
            raise ConvergenceError(f"equalized-odds LP failed: {result.message}")

        solution = result.x
        self.groups_ = groups
        self.mix_probabilities_ = {
            group: (float(solution[2 * idx]), float(solution[2 * idx + 1]))
            for idx, group in enumerate(groups)
        }
        constant = float(np.sum(group_weights * [
            self._conditional_rates(y_true, y_pred, s == g)[2] for g in groups
        ]))
        self.expected_error_ = float(result.fun + constant)
        return self

    def _mixing_for(self, s: np.ndarray) -> np.ndarray:
        table = np.zeros((len(s), 2))
        known = np.zeros(len(s), dtype=bool)
        for group, (p0, p1) in self.mix_probabilities_.items():
            members = s == group
            table[members, 0] = p0
            table[members, 1] = p1
            known |= members
        if not known.all():
            unseen = np.unique(np.asarray(s)[~known])
            raise ValidationError(f"unseen groups at predict time: {unseen.tolist()}")
        return table

    def predict_proba_positive(self, y_pred, s) -> np.ndarray:
        """Probability of emitting a positive for each individual (derandomized view)."""
        if getattr(self, "mix_probabilities_", None) is None:
            raise ValidationError("EqualizedOddsPostProcessor is not fitted yet")
        y_pred = check_binary_labels(y_pred, name="y_pred")
        s = column_or_1d(s, name="s")
        check_consistent_length(y_pred, s)
        table = self._mixing_for(s)
        return table[np.arange(len(s)), y_pred]

    def predict(self, y_pred, s, *, rng=None) -> np.ndarray:
        """Randomized equalized-odds predictions from base predictions ``y_pred``."""
        probabilities = self.predict_proba_positive(y_pred, s)
        rng = check_random_state(self.seed if rng is None else rng)
        return (rng.random(len(probabilities)) < probabilities).astype(np.int64)
