"""iFair — individually fair representations (Lahoti et al., ICDE 2019).

The paper's unsupervised representation-learning baseline (§4.1): like LFR
it maps individuals to convex combinations of ``K`` prototypes,
``x̃_n = Σ_k U_nk v_k``, but its two objectives are

* **utility** — reconstruction ``L_util = (1/n) Σ_n ||x̃_n - x_n||²``, and
* **individual fairness** — the transported pairwise distances should match
  the distances in the *non-protected* feature subspace:
  ``L_fair = (1/|P|) Σ_{(i,j)∈P} ( ||x̃_i - x̃_j|| - d*_ij )²``,

where ``d*`` is the euclidean distance computed without the protected
columns. Protected-attribute obfuscation emerges through learned
per-feature distance weights ``α ≥ 0``: the optimizer can shrink the
protected columns' influence on the prototype assignment.

minimize  λ·L_util + μ·L_fair   over  V (K×m), α (m ≥ 0).

The pair set ``P`` is all pairs for small n and a random subsample for
large n (the objective is a U-statistic, so subsampling is unbiased).
Gradients are exact (see :mod:`repro.baselines._prototypes`).
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .._validation import check_array, check_is_fitted, check_random_state
from ..exceptions import ValidationError
from ..ml.base import BaseEstimator, TransformerMixin
from ._prototypes import assignment_backprop, soft_assignments

__all__ = ["IFair"]

_DIST_EPS = 1e-9


class IFair(BaseEstimator, TransformerMixin):
    """iFair representation learner (Lahoti et al. 2019).

    Parameters
    ----------
    n_prototypes:
        Number of prototypes ``K``; the learned representation ``x̃`` keeps
        the input dimensionality ``m``.
    lambda_util:
        Weight λ of the reconstruction term.
    mu_fair:
        Weight μ of the pairwise individual-fairness term.
    protected_columns:
        Indices excluded from the target distance ``d*`` (the attributes to
        obfuscate).
    max_pairs:
        Upper bound on the number of pairs in ``P``; all pairs are used when
        ``n(n-1)/2 <= max_pairs``.
    max_iter, seed:
        Optimizer budget and initialization seed.

    Attributes
    ----------
    prototypes_ : ndarray of shape (K, m)
    feature_weights_ : ndarray of shape (m,)
        Learned non-negative distance weights α.
    loss_ : float
    """

    def __init__(
        self,
        n_prototypes: int = 10,
        lambda_util: float = 1.0,
        mu_fair: float = 1.0,
        protected_columns=None,
        max_pairs: int = 10000,
        max_iter: int = 150,
        seed=0,
    ):
        self.n_prototypes = n_prototypes
        self.lambda_util = lambda_util
        self.mu_fair = mu_fair
        self.protected_columns = protected_columns
        self.max_pairs = max_pairs
        self.max_iter = max_iter
        self.seed = seed

    def _unpack(self, theta, m):
        K = self.n_prototypes
        V = theta[: K * m].reshape(K, m)
        alpha = theta[K * m :]
        return V, alpha

    def _sample_pairs(self, n: int, rng) -> np.ndarray:
        total = n * (n - 1) // 2
        if total <= self.max_pairs:
            rows, cols = np.triu_indices(n, k=1)
            return np.column_stack([rows, cols])
        left = rng.integers(0, n, size=self.max_pairs)
        right = rng.integers(0, n, size=self.max_pairs)
        distinct = left != right
        return np.column_stack([left[distinct], right[distinct]])

    def _loss_grad(self, theta, X, pairs, target_distances):
        n, m = X.shape
        V, alpha = self._unpack(theta, m)
        U, _ = soft_assignments(X, V, alpha)
        X_tilde = U @ V

        # Utility: reconstruction.
        residual = X_tilde - X
        loss_util = float(np.sum(residual * residual)) / n

        # Fairness: match transported distances to d*.
        i_idx, j_idx = pairs[:, 0], pairs[:, 1]
        diff = X_tilde[i_idx] - X_tilde[j_idx]
        distances = np.sqrt(np.sum(diff * diff, axis=1) + _DIST_EPS)
        errors = distances - target_distances
        n_pairs = len(pairs)
        loss_fair = float(errors @ errors) / n_pairs

        loss = self.lambda_util * loss_util + self.mu_fair * loss_fair

        # Gradient w.r.t. X_tilde.
        R = self.lambda_util * (2.0 / n) * residual
        pair_coeff = self.mu_fair * (2.0 / n_pairs) * (errors / distances)
        pair_grad = pair_coeff[:, None] * diff
        np.add.at(R, i_idx, pair_grad)
        np.add.at(R, j_idx, -pair_grad)

        # Through U (softmax) and the direct U@V dependence.
        G = R @ V.T
        grad_V, grad_alpha = assignment_backprop(
            X, V, U, G, alpha, want_alpha_grad=True
        )
        grad_V += U.T @ R

        grad = np.concatenate([grad_V.ravel(), grad_alpha])
        return loss, grad

    def fit(self, X, y=None):
        """Learn prototypes and feature weights from unlabeled data."""
        X = check_array(X, name="X", min_samples=2)
        n, m = X.shape
        if self.n_prototypes < 1:
            raise ValidationError(f"n_prototypes must be >= 1; got {self.n_prototypes}")
        if self.lambda_util < 0 or self.mu_fair < 0:
            raise ValidationError("lambda_util and mu_fair must be non-negative")
        if self.max_pairs < 1:
            raise ValidationError(f"max_pairs must be >= 1; got {self.max_pairs}")

        if self.protected_columns is None:
            keep = np.arange(m)
        else:
            drop = np.unique(np.asarray(self.protected_columns, dtype=int))
            if drop.size and (drop.min() < 0 or drop.max() >= m):
                raise ValidationError(
                    f"protected_columns must be in [0, {m - 1}]; got {drop.tolist()}"
                )
            keep = np.setdiff1d(np.arange(m), drop)
            if keep.size == 0:
                raise ValidationError("protected_columns removes every feature")

        rng = check_random_state(self.seed)
        pairs = self._sample_pairs(n, rng)
        fair_view = X[:, keep]
        target = np.sqrt(
            np.sum((fair_view[pairs[:, 0]] - fair_view[pairs[:, 1]]) ** 2, axis=1)
        )

        K = self.n_prototypes
        anchors = rng.choice(n, size=K, replace=n < K)
        V0 = X[anchors] + 0.01 * rng.standard_normal((K, m))
        alpha0 = np.ones(m)
        if self.protected_columns is not None:
            # Bias the search away from protected columns from the start.
            alpha0[np.asarray(self.protected_columns, dtype=int)] = 0.1
        theta0 = np.concatenate([V0.ravel(), alpha0])

        bounds = [(None, None)] * (K * m) + [(0.0, None)] * m
        result = scipy.optimize.minimize(
            self._loss_grad,
            theta0,
            args=(X, pairs, target),
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.max_iter},
        )

        V, alpha = self._unpack(result.x, m)
        self.prototypes_ = V
        self.feature_weights_ = alpha
        self.loss_ = float(result.fun)
        self.n_iter_ = int(result.nit)
        self.n_features_in_ = m
        return self

    def transform(self, X) -> np.ndarray:
        """Map individuals to their fair reconstructions ``x̃``, shape (n, m)."""
        check_is_fitted(self, "prototypes_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features; fitted with {self.n_features_in_}"
            )
        U, _ = soft_assignments(X, self.prototypes_, self.feature_weights_)
        return U @ self.prototypes_
