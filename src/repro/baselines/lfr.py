"""LFR — Learning Fair Representations (Zemel et al., ICML 2013).

The paper's supervised representation-learning baseline (§4.1): map each
individual to soft assignments over ``K`` prototypes, trading off

* reconstruction  ``L_x = (1/n) Σ_n ||x̂_n - x_n||²``,
* prediction      ``L_y = (1/n) Σ_n BCE(y_n, ŷ_n)`` with
  ``ŷ_n = Σ_k U_nk w_k``,
* demographic parity on prototype occupancy
  ``L_z = Σ_k | mean_{s=0} U_nk - mean_{s=1} U_nk |``,

minimizing ``A_x L_x + A_y L_y + A_z L_z`` over prototypes ``V`` and
prototype label weights ``w ∈ [0,1]^K``. Unlike the reference code (which
used numerical differentiation), this implementation supplies exact
gradients to L-BFGS, making it fast enough to grid-search.

The learned representation used downstream is the assignment matrix ``U``
(``transform``), matching how the paper feeds LFR output to a logistic
regression.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .._validation import (
    check_binary_labels,
    check_consistent_length,
    check_is_fitted,
    check_random_state,
    check_X_y,
    column_or_1d,
)
from ..exceptions import ValidationError
from ..ml.base import BaseEstimator, TransformerMixin
from ._prototypes import assignment_backprop, soft_assignments

__all__ = ["LFR"]

_PROB_EPS = 1e-6


class LFR(BaseEstimator, TransformerMixin):
    """Learning Fair Representations (Zemel et al. 2013).

    Parameters
    ----------
    n_prototypes:
        Number of prototypes ``K`` (the latent dimensionality).
    a_x, a_y, a_z:
        Weights of the reconstruction, prediction, and parity terms.
    max_iter:
        L-BFGS iteration budget.
    seed:
        Seed for prototype initialization (random data points + noise).

    Attributes
    ----------
    prototypes_ : ndarray of shape (K, m)
        Learned prototype locations ``V``.
    label_weights_ : ndarray of shape (K,)
        Learned per-prototype positive-class weights ``w``.
    loss_ : float
        Final training objective value.
    """

    def __init__(
        self,
        n_prototypes: int = 10,
        a_x: float = 0.01,
        a_y: float = 1.0,
        a_z: float = 50.0,
        max_iter: int = 200,
        seed=0,
    ):
        self.n_prototypes = n_prototypes
        self.a_x = a_x
        self.a_y = a_y
        self.a_z = a_z
        self.max_iter = max_iter
        self.seed = seed

    def _unpack(self, theta: np.ndarray, m: int):
        K = self.n_prototypes
        V = theta[: K * m].reshape(K, m)
        w = theta[K * m :]
        return V, w

    def _loss_grad(self, theta, X, y, group_masks):
        n, m = X.shape
        K = self.n_prototypes
        V, w = self._unpack(theta, m)
        U, _ = soft_assignments(X, V)

        # --- forward ---------------------------------------------------
        X_hat = U @ V
        residual = X_hat - X
        loss_x = float(np.sum(residual * residual)) / n

        y_hat = np.clip(U @ w, _PROB_EPS, 1.0 - _PROB_EPS)
        loss_y = float(-np.mean(y * np.log(y_hat) + (1 - y) * np.log(1 - y_hat)))

        means = [U[mask].mean(axis=0) for mask in group_masks]
        gaps = means[0] - means[1]
        loss_z = float(np.sum(np.abs(gaps)))

        loss = self.a_x * loss_x + self.a_y * loss_y + self.a_z * loss_z

        # --- backward ---------------------------------------------------
        # ∂L/∂U has three contributions.
        G = np.zeros_like(U)
        # reconstruction: ∂L_x/∂U_nk = (2/n) residual_n · v_k
        G += self.a_x * (2.0 / n) * (residual @ V.T)
        # prediction: ∂L_y/∂ŷ_n = (ŷ-y)/(ŷ(1-ŷ)) / n ; ∂ŷ/∂U_nk = w_k
        bce_grad = (y_hat - y) / (y_hat * (1.0 - y_hat)) / n
        G += self.a_y * bce_grad[:, None] * w[None, :]
        # parity: ∂L_z/∂U_nk = sign(gap_k) * (±1/|group|)
        signs = np.sign(gaps)
        counts = [mask.sum() for mask in group_masks]
        G[group_masks[0]] += self.a_z * signs[None, :] / counts[0]
        G[group_masks[1]] -= self.a_z * signs[None, :] / counts[1]

        grad_V, _ = assignment_backprop(X, V, U, G, None)
        # Direct dependence of L_x on V (through X_hat = U V).
        grad_V += self.a_x * (2.0 / n) * (U.T @ residual)
        # ∂L_y/∂w_k = Σ_n bce_grad_n U_nk
        grad_w = self.a_y * (U.T @ bce_grad)

        grad = np.concatenate([grad_V.ravel(), grad_w])
        return loss, grad

    def fit(self, X, y, s=None):
        """Fit prototypes and label weights.

        Parameters
        ----------
        X:
            Feature matrix ``(n, m)``.
        y:
            Binary labels in {0, 1}.
        s:
            Binary protected-group membership; required (LFR's parity term
            is group-based).
        """
        X, y = check_X_y(X, y, min_samples=2)
        y = check_binary_labels(y)
        if s is None:
            raise ValidationError("LFR requires the protected attribute s")
        s = column_or_1d(s, name="s")
        check_consistent_length(X, s)
        group_values = np.unique(s)
        if len(group_values) != 2:
            raise ValidationError(
                f"LFR's parity term assumes two groups; got {len(group_values)}"
            )
        if self.n_prototypes < 1:
            raise ValidationError(f"n_prototypes must be >= 1; got {self.n_prototypes}")
        for name in ("a_x", "a_y", "a_z"):
            if getattr(self, name) < 0:
                raise ValidationError(f"{name} must be non-negative")

        n, m = X.shape
        K = self.n_prototypes
        rng = check_random_state(self.seed)
        # Initialize prototypes at jittered random data points.
        anchors = rng.choice(n, size=K, replace=n < K)
        V0 = X[anchors] + 0.01 * rng.standard_normal((K, m))
        w0 = rng.uniform(0.25, 0.75, size=K)
        theta0 = np.concatenate([V0.ravel(), w0])

        group_masks = (s == group_values[0], s == group_values[1])
        bounds = [(None, None)] * (K * m) + [(0.0, 1.0)] * K

        result = scipy.optimize.minimize(
            self._loss_grad,
            theta0,
            args=(X, y, group_masks),
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.max_iter},
        )

        V, w = self._unpack(result.x, m)
        self.prototypes_ = V
        self.label_weights_ = w
        self.loss_ = float(result.fun)
        self.n_iter_ = int(result.nit)
        self.n_features_in_ = m
        return self

    def transform(self, X) -> np.ndarray:
        """Soft prototype assignments ``U`` — the fair representation, shape (n, K)."""
        check_is_fitted(self, "prototypes_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X must have shape (n, {self.n_features_in_}); got {X.shape}"
            )
        U, _ = soft_assignments(X, self.prototypes_)
        return U

    def predict_proba_positive(self, X) -> np.ndarray:
        """LFR's own label predictor ``ŷ = U w`` (used by the original paper)."""
        U = self.transform(X)
        return np.clip(U @ self.label_weights_, 0.0, 1.0)

    def fit_transform(self, X, y=None, s=None):
        """Fit and return the training-set assignments."""
        return self.fit(X, y, s=s).transform(X)
