"""The "Original" baseline: input features with protected attributes masked.

The paper's weakest baseline (§4.1) is "a naive representation of the input
dataset wherein the protected attributes are masked". This transformer
drops the protected columns, and composes with
:class:`repro.baselines.augment.SideInformationAugmenter` to form the
augmented ``Original+`` variant used on the real datasets.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_array, check_is_fitted
from ..exceptions import ValidationError
from ..ml.base import BaseEstimator, TransformerMixin

__all__ = ["MaskedRepresentation"]


class MaskedRepresentation(BaseEstimator, TransformerMixin):
    """Identity representation with the protected columns removed.

    Parameters
    ----------
    protected_columns:
        Indices of the columns to mask. ``None`` or empty keeps all columns
        (a pure identity transform).
    """

    def __init__(self, protected_columns=None):
        self.protected_columns = protected_columns

    def fit(self, X, y=None):
        """Record the input width and resolve the columns to keep."""
        X = check_array(X, name="X")
        m = X.shape[1]
        if self.protected_columns is None:
            drop = np.empty(0, dtype=int)
        else:
            drop = np.unique(np.asarray(self.protected_columns, dtype=int))
            if drop.size and (drop.min() < 0 or drop.max() >= m):
                raise ValidationError(
                    f"protected_columns must be in [0, {m - 1}]; got {drop.tolist()}"
                )
        keep = np.setdiff1d(np.arange(m), drop)
        if keep.size == 0:
            raise ValidationError("masking removes every column")
        self.keep_columns_ = keep
        self.n_features_in_ = m
        return self

    def transform(self, X) -> np.ndarray:
        """Return ``X`` restricted to the non-protected columns."""
        check_is_fitted(self, "keep_columns_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features; fitted with {self.n_features_in_}"
            )
        return X[:, self.keep_columns_]
