"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run figure2 [--scale 0.5] [--seed 0] [--output out.txt]
    python -m repro run all --scale 0.25

``run`` executes the experiment's driver, prints the ASCII rendering, and
optionally writes it to a file. ``list`` shows every experiment with the
qualitative shapes the reproduction is expected to exhibit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .experiments import EXPERIMENTS, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Lahoti et al., VLDB 2019",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the reproducible experiments")

    run = subparsers.add_parser("run", help="regenerate one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment id (table1, figure1..figure10) or 'all'",
    )
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset-size fraction in (0, 1] (default 1.0)")
    run.add_argument("--seed", type=int, default=0, help="generator seed")
    run.add_argument("--output", default=None,
                     help="also write the rendering to this file")

    report = subparsers.add_parser(
        "report", help="full §4-style report for one workload"
    )
    report.add_argument("dataset", choices=["synthetic", "crime", "compas"])
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", default=None)
    return parser


def _run_one(experiment_id: str, *, scale: float, seed: int) -> str:
    spec = get_experiment(experiment_id)
    result = spec.driver(scale=scale, seed=seed)
    return result.render()


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.experiment_id:10s} [{spec.dataset:9s}] {spec.title}")
            for shape in spec.expected_shapes:
                print(f"             - {shape}")
        return 0

    if args.command == "report":
        from .experiments.summary import workload_report

        text = workload_report(args.dataset, scale=args.scale, seed=args.seed)
        print(text)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        return 0

    targets = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    try:
        renders = [
            _run_one(target, scale=args.scale, seed=args.seed)
            for target in targets
        ]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    text = "\n\n".join(renders)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    return 0
