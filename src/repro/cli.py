"""Command-line interface: reproduce experiments and serve fitted models.

Usage::

    python -m repro --version
    python -m repro list
    python -m repro run figure2 [--scale 0.5] [--seed 0] [--output out.txt]
    python -m repro run all --scale 0.25
    python -m repro report crime [--scale 0.5]

    python -m repro experiments list
    python -m repro experiments run spec.yaml [--store DIR] [--workers 4]
                                              [--shard I/K]
    python -m repro experiments sweep DATASET [--method pfr] [--workers 4] [--store DIR]
    python -m repro experiments tune DATASET [--methods original,pfr] [--store DIR]
    python -m repro experiments repeat DATASET [--seeds 0,1,2] [--store DIR]

    python -m repro store ls [--store DIR] [--kind method_result]
    python -m repro store gc [--store DIR] [--kind K] [--older-than-days D]
    python -m repro store verify [--store DIR]
    python -m repro store stats [--store DIR]
    python -m repro store merge DEST SRC [SRC...] [--dry-run]

    python -m repro models register NAME artifact.npz [--registry DIR]
    python -m repro models register NAME --from-ledger DIGEST [--store DIR]
    python -m repro models list [--registry DIR]
    python -m repro models show NAME[@VERSION] [--registry DIR]
    python -m repro models promote NAME VERSION [--registry DIR]
    python -m repro transform NAME[@VERSION] --input rows.csv [--output z.csv]
    python -m repro serve [--registry DIR] [--port 8321] [--workers 8]
                          [--drift] [--drift-floor F] [--drift-sample N]

    python -m repro lifecycle status NAME [--registry DIR] [--store DIR]
    python -m repro lifecycle status --url http://127.0.0.1:8321
    python -m repro lifecycle refresh --data bundle.npz --name NAME
                                      [--registry DIR] [--store DIR] [--force]
    python -m repro lifecycle watch --data bundle.npz --name NAME
                                    --incoming DIR [--interval S] [--max-batches N]

    python -m repro obs summary trace.jsonl [--json]
    python -m repro obs tail trace.jsonl [-n 20]

``run`` executes the experiment's driver, prints the ASCII rendering, and
optionally writes it to a file. ``list`` shows every experiment with the
qualitative shapes the reproduction is expected to exhibit. The
``experiments`` family runs γ-sweeps, the grid-search tuning protocol,
cross-seed repetition, and whole declarative scenario matrices
(``experiments run spec.yaml``), with ``--workers`` fanning the
independent fits out across processes (results are bitwise identical to
serial) and ``--store`` routing every cell through the content-addressed
run ledger (:mod:`repro.store`) — interrupted runs resume and extended
grids pay only their new cells. The ``store`` family inspects and
maintains that ledger. The ``models`` family manages the versioned model
registry (:mod:`repro.serving`) and ``transform`` pushes a CSV of feature
rows through a registered model.

The registry directory defaults to the ``REPRO_REGISTRY`` environment
variable (falling back to ``~/.repro/registry``); the ledger to
``REPRO_STORE`` (falling back to ``~/.repro/store``).

The ``lifecycle`` family closes the production loop
(:mod:`repro.lifecycle`): ``refresh`` scores a batch of newly arrived
rows against a fitted landmark model's fidelity baseline and — when the
drift policy fires (or ``--force``) — warm-start refits, records the
child in the run ledger with a ``parent`` link, registers it and
promotes it (with holdout rollback); ``watch`` does the same
continuously over ``.npy`` batch files dropped into a directory;
``status`` shows version lineage (offline) or a running server's
``/drift`` snapshots (``--url``). The ``--data`` bundle is an ``.npz``
with ``X`` (training rows), ``w_fair`` (dense fairness adjacency),
optional ``X_new`` (the arriving batch for ``refresh``) and optional
``X_holdout`` (rollback guard).

Every ``experiments`` subcommand and ``transform`` also accept
``--trace PATH`` (record a JSONL trace of the run via :mod:`repro.obs`,
readable with ``repro obs summary``) and ``--metrics`` (print the final
metrics-registry snapshot to stderr). Both are off by default and cost
nothing when off.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from ._version import __version__
from .exceptions import ReproError
from .experiments import EXPERIMENTS, get_experiment

__all__ = ["main", "build_parser", "default_registry_root", "default_store_root"]


def default_registry_root() -> Path:
    """Registry location: ``$REPRO_REGISTRY`` or ``~/.repro/registry``."""
    root = os.environ.get("REPRO_REGISTRY")
    if root:
        return Path(root)
    return Path.home() / ".repro" / "registry"


def default_store_root() -> Path:
    """Run-ledger location: ``$REPRO_STORE`` or ``~/.repro/store``."""
    from .store import default_store_root as _default

    return _default()


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Lahoti et al., VLDB 2019",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the reproducible experiments")

    run = subparsers.add_parser("run", help="regenerate one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment id (table1, figure1..figure10) or 'all'",
    )
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset-size fraction in (0, 1] (default 1.0)")
    run.add_argument("--seed", type=int, default=0, help="generator seed")
    run.add_argument("--output", default=None,
                     help="also write the rendering to this file")

    report = subparsers.add_parser(
        "report", help="full §4-style report for one workload"
    )
    report.add_argument("dataset", choices=["synthetic", "crime", "compas"])
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", default=None)

    models = subparsers.add_parser(
        "models", help="manage the versioned model registry"
    )
    models_sub = models.add_subparsers(dest="models_command", required=True)

    register = models_sub.add_parser(
        "register", help="register a saved model artifact as a new version"
    )
    register.add_argument("name", help="model name (letters, digits, . _ -)")
    register.add_argument(
        "artifact", nargs="?", default=None,
        help="path to a .npz written by save_model (omit with --from-ledger)",
    )
    register.add_argument("--registry", default=None, help="registry directory")
    register.add_argument(
        "--no-promote", action="store_true",
        help="register without moving the 'latest' pointer",
    )
    register.add_argument(
        "--from-ledger", default=None, metavar="DIGEST",
        help="register the model blob of a run-ledger entry (see "
             "ExperimentHarness.export_model) instead of an artifact file",
    )
    register.add_argument(
        "--store", default=None,
        help="run-ledger directory for --from-ledger "
             "(default: $REPRO_STORE or ~/.repro/store)",
    )

    list_models = models_sub.add_parser(
        "list", help="list registered models (latest version each)"
    )
    list_models.add_argument("--registry", default=None)

    show = models_sub.add_parser(
        "show", help="show the manifest of NAME or NAME@VERSION"
    )
    show.add_argument("spec", help="model name, optionally with @version")
    show.add_argument("--registry", default=None)

    promote = models_sub.add_parser(
        "promote", help="point NAME@latest at an existing version"
    )
    promote.add_argument("name")
    promote.add_argument("version", type=int)
    promote.add_argument("--registry", default=None)

    serve = subparsers.add_parser(
        "serve", help="serve registered models over HTTP (asyncio, stdlib)"
    )
    serve.add_argument("--registry", default=None, help="registry directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port (0 picks an ephemeral one; default 8321)")
    serve.add_argument("--workers", type=int, default=8,
                       help="request worker threads (default 8)")
    serve.add_argument("--cache-size", type=int, default=100_000,
                       help="per-model LRU result-cache rows (default 100000)")
    serve.add_argument("--max-queue", type=int, default=512,
                       help="admitted in-flight requests before 429 (default 512)")
    serve.add_argument("--max-body-mb", type=float, default=8.0,
                       help="request-body ceiling in MiB before 413 (default 8)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-request seconds before 503 (default 30)")
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append a JSONL trace of request spans to PATH",
    )
    serve.add_argument(
        "--drift", action="store_true",
        help="score a sample of every served batch against the model's "
             "landmark extension and expose windowed drift statistics at "
             "GET /drift (landmark models only; off by default)",
    )
    serve.add_argument(
        "--drift-floor", type=float, default=0.5,
        help="per-row fidelity below this counts as drifted (default 0.5)",
    )
    serve.add_argument(
        "--drift-sample", type=int, default=32,
        help="max rows scored per request (default 32)",
    )

    lifecycle = subparsers.add_parser(
        "lifecycle",
        help="drift detection and incremental landmark refresh "
             "(plan -> ledger -> registry -> serving)",
    )
    lifecycle_sub = lifecycle.add_subparsers(
        dest="lifecycle_command", required=True
    )

    def _lifecycle_model_flags(sub):
        sub.add_argument("--data", required=True, metavar="BUNDLE.npz",
                         help=".npz with X, w_fair [, X_new, X_holdout]")
        sub.add_argument("--name", required=True, help="registry model name")
        sub.add_argument("--registry", default=None, help="registry directory")
        sub.add_argument(
            "--store", default=None,
            help="run-ledger directory for refresh lineage "
                 "(default: $REPRO_STORE or ~/.repro/store)",
        )
        sub.add_argument("--landmarks", type=int, default=256,
                         help="landmark count m for the initial fit (default 256)")
        sub.add_argument("--gamma", type=float, default=0.5,
                         help="fairness weight γ (default 0.5)")
        sub.add_argument("--components", type=int, default=8,
                         help="embedding dimension d (default 8)")
        sub.add_argument("--stale-fraction", type=float, default=0.5,
                         help="drifted fraction of the window that triggers "
                              "a refresh (default 0.5)")
        sub.add_argument("--min-rows", type=int, default=32,
                         help="scores required before the policy may fire "
                              "(default 32)")
        sub.add_argument("--min-interval", type=float, default=0.0,
                         help="seconds between refreshes (default 0)")
        sub.add_argument("--holdout-tolerance", type=float, default=0.05,
                         help="allowed holdout-fidelity drop before a "
                              "refreshed version is rolled back; only "
                              "active when the bundle has X_holdout "
                              "(default 0.05)")
        sub.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON events")

    lc_status = lifecycle_sub.add_parser(
        "status", help="version lineage (offline) or live /drift (--url)"
    )
    lc_status.add_argument("name", nargs="?", default=None,
                           help="model name (offline mode)")
    lc_status.add_argument("--registry", default=None)
    lc_status.add_argument("--store", default=None,
                           help="also show run-ledger refresh lineage")
    lc_status.add_argument("--url", default=None,
                           help="query GET /drift of a running repro serve")
    lc_status.add_argument("--json", action="store_true")

    lc_refresh = lifecycle_sub.add_parser(
        "refresh",
        help="score X_new against the fitted baseline; refresh + promote "
             "when stale (or --force)",
    )
    _lifecycle_model_flags(lc_refresh)
    lc_refresh.add_argument("--force", action="store_true",
                            help="refresh even if the drift policy says fresh")

    lc_watch = lifecycle_sub.add_parser(
        "watch",
        help="ingest .npy batch files from a directory, refreshing "
             "whenever the policy fires",
    )
    _lifecycle_model_flags(lc_watch)
    lc_watch.add_argument("--incoming", required=True,
                          help="directory to poll for *.npy batch files "
                               "(consumed files are renamed to *.npy.done)")
    lc_watch.add_argument("--interval", type=float, default=1.0,
                          help="poll interval in seconds (default 1)")
    lc_watch.add_argument("--max-batches", type=int, default=None,
                          help="exit after ingesting this many batches "
                               "(default: run until Ctrl-C)")

    experiments = subparsers.add_parser(
        "experiments",
        help="sweeps, tuning and cross-seed repetition (parallelizable)",
    )
    exp_sub = experiments.add_subparsers(dest="experiments_command", required=True)

    def _obs_flags(sub):
        sub.add_argument(
            "--trace", default=None, metavar="PATH",
            help="append a JSONL trace of this run to PATH (inspect with "
                 "`repro obs summary PATH`); off by default and free when off",
        )
        sub.add_argument(
            "--metrics", action="store_true",
            help="print the final metrics snapshot to stderr",
        )

    def _exp_common(sub):
        sub.add_argument("dataset", choices=["synthetic", "crime", "compas"])
        sub.add_argument("--scale", type=float, default=1.0,
                         help="dataset-size fraction in (0, 1] (default 1.0)")
        sub.add_argument("--seed", type=int, default=0, help="generator seed")
        sub.add_argument(
            "--workers", default=None,
            help="process fan-out: a count or 'auto' (default: serial); "
                 "results are bitwise identical to a serial run",
        )
        sub.add_argument(
            "--store", default=None,
            help="run-ledger directory: completed cells are skipped and "
                 "new ones persisted, so interrupted runs resume "
                 "(default: no persistence)",
        )
        sub.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of a table")
        _obs_flags(sub)

    exp_sub.add_parser(
        "list", help="list the paper-experiment registry (tables/figures)"
    )

    run_spec_cmd = exp_sub.add_parser(
        "run", help="execute a declarative RunSpec (YAML/JSON scenario matrix)"
    )
    run_spec_cmd.add_argument("spec", help="path to a spec file (see examples/run_spec.yaml)")
    run_spec_cmd.add_argument(
        "--store", default=None,
        help="run-ledger directory (default: $REPRO_STORE or ~/.repro/store)",
    )
    run_spec_cmd.add_argument(
        "--workers", default=None,
        help="process fan-out for the missing cells (count or 'auto')",
    )
    run_spec_cmd.add_argument(
        "--shard", default=None, metavar="I/K",
        help="run only shard I of K (cells partitioned by a stable hash "
             "of each task digest, so K machines with separate stores "
             "cover the matrix exactly once; union the stores afterwards "
             "with `repro store merge`)",
    )
    run_spec_cmd.add_argument("--json", action="store_true",
                              help="emit the machine-readable run report")
    _obs_flags(run_spec_cmd)

    sweep = exp_sub.add_parser(
        "sweep", help="γ-sweep one method on a workload"
    )
    _exp_common(sweep)
    sweep.add_argument("--method", default="pfr",
                       help="harness method name (default pfr)")
    sweep.add_argument("--gammas", default="0.0,0.1,0.3,0.5,0.7,0.9,1.0",
                       help="comma-separated γ values")

    tune = exp_sub.add_parser(
        "tune", help="5-fold grid search (the paper's tuning protocol)"
    )
    _exp_common(tune)
    tune.add_argument("--methods", default="original,pfr",
                      help="comma-separated methods to tune")
    tune.add_argument("--splits", type=int, default=5,
                      help="cross-validation folds (default 5)")

    repeat = exp_sub.add_parser(
        "repeat", help="cross-seed repetition with mean ± std error bars"
    )
    _exp_common(repeat)
    repeat.add_argument("--methods", default="original,pfr",
                        help="comma-separated methods to aggregate")
    repeat.add_argument("--seeds", default="0,1,2",
                        help="comma-separated seeds, or a count to derive "
                             "that many via SeedSequence.spawn rooted at "
                             "--seed")
    repeat.add_argument("--gamma", type=float, default=0.5,
                        help="γ forwarded to every method (default 0.5)")

    store = subparsers.add_parser(
        "store", help="inspect and maintain the content-addressed run ledger"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_common(sub):
        sub.add_argument(
            "--store", default=None,
            help="ledger directory (default: $REPRO_STORE or ~/.repro/store)",
        )
        sub.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")

    store_ls = store_sub.add_parser("ls", help="list ledger entries")
    _store_common(store_ls)
    store_ls.add_argument("--kind", default=None,
                          help="filter by entry kind (method_result, "
                               "tuned_point, model)")

    store_gc = store_sub.add_parser(
        "gc", help="sweep stray temp files, orphaned blobs, filtered entries"
    )
    _store_common(store_gc)
    store_gc.add_argument("--kind", default=None,
                          help="also remove entries of this kind")
    store_gc.add_argument("--older-than-days", type=float, default=None,
                          help="also remove entries older than this many days")
    store_gc.add_argument("--dry-run", action="store_true",
                          help="report without deleting")

    store_verify = store_sub.add_parser(
        "verify", help="integrity-check every ledger entry"
    )
    _store_common(store_verify)

    store_stats = store_sub.add_parser(
        "stats",
        help="entry/model inventory per kind plus this process's "
             "hit/miss counters",
    )
    _store_common(store_stats)

    store_merge = store_sub.add_parser(
        "merge",
        help="union source ledgers into DEST (idempotent by digest; "
             "the scale-out counterpart of `experiments run --shard`)",
    )
    store_merge.add_argument("dest", help="destination ledger directory")
    store_merge.add_argument("sources", nargs="+", metavar="SRC",
                             help="source ledger directories to union in")
    store_merge.add_argument("--dry-run", action="store_true",
                             help="report without copying")
    store_merge.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON")

    transform = subparsers.add_parser(
        "transform", help="transform a CSV of feature rows through a model"
    )
    transform.add_argument("spec", help="model name, optionally with @version")
    transform.add_argument("--input", required=True,
                           help="CSV file of feature rows (no header)")
    transform.add_argument("--output", default=None,
                           help="write the representation CSV here "
                                "(default: stdout)")
    transform.add_argument("--registry", default=None)
    _obs_flags(transform)

    obs = subparsers.add_parser(
        "obs", help="inspect JSONL traces recorded with --trace"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_sub.add_parser(
        "summary",
        help="per-stage wall-time breakdown, cache hit rates and cell "
             "counts of one trace",
    )
    obs_summary.add_argument("trace", help="JSONL trace file")
    obs_summary.add_argument("--json", action="store_true",
                             help="emit the machine-readable summary")

    obs_tail = obs_sub.add_parser(
        "tail", help="print the last N records of a trace"
    )
    obs_tail.add_argument("trace", help="JSONL trace file")
    obs_tail.add_argument("-n", type=int, default=20,
                          help="number of records (default 20)")
    return parser


def _run_one(experiment_id: str, *, scale: float, seed: int) -> str:
    spec = get_experiment(experiment_id)
    result = spec.driver(scale=scale, seed=seed)
    return result.render()


def _registry(args):
    from .serving import ModelRegistry

    root = Path(args.registry) if args.registry else default_registry_root()
    return ModelRegistry(root)


def _ledger(args):
    from .store import RunLedger

    root = Path(args.store) if args.store else default_store_root()
    return RunLedger(root)


def _cmd_models(args) -> int:
    from .io import load_model

    registry = _registry(args)
    if args.models_command == "register":
        if (args.artifact is None) == (args.from_ledger is None):
            print(
                "error: register needs exactly one source — an artifact "
                "path or --from-ledger DIGEST",
                file=sys.stderr,
            )
            return 2
        if args.from_ledger is not None:
            record = registry.register_from_ledger(
                _ledger(args), args.from_ledger, args.name,
                promote=not args.no_promote,
            )
            print(
                f"registered {record.spec} ({record.model_type}, "
                f"{record.n_features_in} features) from ledger "
                f"{args.from_ledger[:12]}…"
                + ("" if record.is_latest else " [not promoted]")
            )
            return 0
        model = load_model(args.artifact)
        record = registry.register(
            args.name, model, promote=not args.no_promote
        )
        print(
            f"registered {record.spec} ({record.model_type}, "
            f"{record.n_features_in} features)"
            + ("" if record.is_latest else " [not promoted]")
        )
        return 0

    if args.models_command == "list":
        records = registry.list_models()
        if not records:
            print("no models registered")
            return 0
        print(f"{'NAME':24s} {'LATEST':>6s} {'TYPE':20s} {'FEATURES':>8s} {'LIB':8s}")
        for record in records:
            features = "-" if record.n_features_in is None else str(record.n_features_in)
            # An unpromoted-only name shows its highest version in parens.
            version = (
                str(record.version) if record.is_latest else f"({record.version})"
            )
            print(
                f"{record.name:24s} {version:>6s} "
                f"{record.model_type:20s} {features:>8s} "
                f"{record.library_version:8s}"
            )
        return 0

    if args.models_command == "show":
        name, _, selector = args.spec.partition("@")
        if selector:
            name, version = registry.resolve(args.spec)
        else:
            try:
                name, version = registry.resolve(name)
            except ReproError:
                # Canary registrations (--no-promote on a fresh name) have
                # no promoted version yet; show the highest one, exactly
                # like `models list` does. Unknown names re-raise below.
                version = registry.versions(name)[-1].version
        record = registry.record(name, version)
        versions = [r.version for r in registry.versions(name)]
        print(f"name:            {record.name}")
        print(f"version:         {record.version}"
              + (" (latest)" if record.is_latest else ""))
        print(f"model_type:      {record.model_type}")
        print(f"library_version: {record.library_version}")
        print(f"n_features_in:   {record.n_features_in}")
        print(f"excluded_cols:   {record.excluded_columns}")
        if record.landmarks is not None:
            # Nyström fits solve on m landmarks yet serve arbitrary rows;
            # surface that so operators know the model's fidelity regime.
            print(f"landmarks:       {record.landmarks} (nystrom extension)")
        params = record.params or {}
        numeric = [
            f"{key}={params[key]}"
            for key in ("dtype", "knn_backend", "knn_seed", "eig_solver")
            if key in params
        ]
        if numeric:
            # The raw-speed knobs: anything approximate or reduced-precision
            # about this model's numerics, at a glance.
            print(f"numerics:        {' '.join(numeric)}")
        print(f"artifact:        {record.path}")
        print(f"all_versions:    {versions}")
        print(f"params:          {json.dumps(record.params, sort_keys=True)}")
        if record.stage_digests:
            # Fit-plan provenance: which graphs/Laplacians/projections and
            # solver configuration produced this representation.
            print("stage_digests:")
            for stage, digest in sorted(record.stage_digests.items()):
                print(f"  {stage:12s} {digest}")
        return 0

    # promote
    record = registry.promote(args.name, args.version)
    print(f"promoted {record.spec} to latest")
    return 0


def _cmd_serve(args) -> int:
    from .serving import ServingServer, TransformService

    service = TransformService(
        _registry(args),
        cache_size=args.cache_size,
        drift=args.drift,
        drift_floor=args.drift_floor,
        drift_sample=args.drift_sample,
    )
    server = ServingServer(
        service,
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        max_queue=args.max_queue,
        max_body_bytes=int(args.max_body_mb * 1024 * 1024),
        request_timeout=args.timeout,
    )
    server.start()
    try:
        print(
            f"serving registry {service.registry.root} on {server.url} "
            f"({args.workers} workers, max_queue={args.max_queue}); "
            "Ctrl-C to stop",
            flush=True,
        )
        if args.trace:
            from .obs import tracing

            with tracing(args.trace, registry=service.metrics):
                threading_event_wait()
        else:
            threading_event_wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _load_lifecycle_bundle(path: Path) -> dict:
    """Validate and unpack the ``--data`` .npz bundle."""
    if not path.exists():
        raise ReproError(f"data bundle not found: {path}")
    with np.load(path) as bundle:
        if "X" not in bundle or "w_fair" not in bundle:
            raise ReproError(
                f"{path} must contain arrays 'X' and 'w_fair' "
                f"(found: {sorted(bundle.files)})"
            )
        return {key: bundle[key] for key in bundle.files}


def _lifecycle_controller(args):
    """Build a LifecycleController from the CLI flags + data bundle."""
    from .core import PFR, LandmarkPlan
    from .lifecycle import LifecycleController, RefreshPolicy

    data = _load_lifecycle_bundle(Path(args.data))
    estimator = PFR(
        n_components=args.components,
        gamma=args.gamma,
        extension="nystrom",
        landmarks=args.landmarks,
    )
    plan = LandmarkPlan.for_estimator(estimator, data["X"], data["w_fair"])
    plan.fit(estimator)
    controller = LifecycleController(
        plan,
        estimator,
        registry=_registry(args),
        name=args.name,
        ledger=_ledger(args),
        policy=RefreshPolicy(
            stale_fraction=args.stale_fraction,
            min_interval=args.min_interval,
            min_rows=args.min_rows,
        ),
        holdout=data.get("X_holdout"),
        holdout_tolerance=args.holdout_tolerance,
    )
    controller.ensure_registered()
    return controller, data


def _print_lifecycle_event(event: dict, *, as_json: bool) -> None:
    if as_json:
        print(json.dumps(event, sort_keys=True))
        return
    refresh = event.get("refresh")
    print(
        f"ingested {event['rows']} rows "
        f"(pending={event['pending']}, "
        f"batch fidelity={event['batch_mean']:.3f}, "
        f"window drift={event['drift_fraction']:.1%})"
    )
    if refresh is not None:
        verdict = (
            "ROLLED BACK (holdout regression)"
            if refresh["rolled_back"] else "promoted"
        )
        print(
            f"refreshed -> version {refresh['version']} "
            f"({refresh['n_landmarks']} landmarks, "
            f"{refresh['seconds']:.2f}s) {verdict}"
        )


def _cmd_lifecycle(args) -> int:
    if args.lifecycle_command == "status":
        if args.url is not None:
            import urllib.request

            with urllib.request.urlopen(
                args.url.rstrip("/") + "/drift", timeout=10
            ) as response:
                status = json.loads(response.read())
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
                return 0
            if not status["enabled"]:
                print("drift accounting is disabled on this server "
                      "(start it with --drift)")
                return 0
            for spec, snap in sorted(status["models"].items()):
                if snap is None:
                    print(f"{spec}: no landmark coordinates, not scored")
                    continue
                print(
                    f"{spec}: {snap['count']} scored rows in window, "
                    f"mean fidelity {snap['mean']:.3f}, "
                    f"drift {snap['drift_fraction']:.1%} "
                    f"(floor {snap['floor']:g})"
                )
            if not status["models"]:
                print("no models warm yet")
            return 0
        if args.name is None:
            print("error: lifecycle status needs a model NAME or --url",
                  file=sys.stderr)
            return 2
        registry = _registry(args)
        records = registry.versions(args.name)
        rows = []
        for record in records:
            digests = record.stage_digests or {}
            rows.append({
                "version": record.version,
                "latest": record.is_latest,
                "landmarks": record.landmarks,
                "refreshed": "extend" in digests,
                "created_at": record.created_at,
            })
        lineage = None
        if args.store is not None:
            ledger = _ledger(args)
            lineage = [
                {"digest": e.digest, "parent": e.parent}
                for e in ledger.ls(kind="lifecycle_model")
                if e.task.get("name") == args.name
            ]
        if args.json:
            print(json.dumps(
                {"name": args.name, "versions": rows, "lineage": lineage},
                indent=2, sort_keys=True,
            ))
            return 0
        for row in rows:
            marks = []
            if row["latest"]:
                marks.append("latest")
            if row["refreshed"]:
                marks.append("refreshed")
            suffix = f" [{', '.join(marks)}]" if marks else ""
            print(
                f"v{row['version']}: {row['landmarks']} landmarks{suffix}"
            )
        if lineage is not None:
            print(f"{len(lineage)} ledger entries for {args.name!r}:")
            for entry in lineage:
                parent = (
                    f" <- {entry['parent'][:12]}…" if entry["parent"] else ""
                )
                print(f"  {entry['digest'][:12]}…{parent}")
        return 0

    if args.lifecycle_command == "refresh":
        controller, data = _lifecycle_controller(args)
        if "X_new" not in data:
            print("error: refresh needs an 'X_new' array in the data bundle",
                  file=sys.stderr)
            return 2
        event = controller.ingest(data["X_new"])
        if event["refresh"] is None and args.force:
            event["refresh"] = controller.refresh()
        _print_lifecycle_event(event, as_json=args.json)
        return 0

    # watch
    import time as _time

    controller, _ = _lifecycle_controller(args)
    incoming = Path(args.incoming)
    if not incoming.is_dir():
        print(f"error: --incoming directory not found: {incoming}",
              file=sys.stderr)
        return 2
    if not args.json:
        print(f"watching {incoming} for *.npy batches "
              f"(model {args.name!r}); Ctrl-C to stop", flush=True)
    ingested = 0
    try:
        while args.max_batches is None or ingested < args.max_batches:
            batches = sorted(incoming.glob("*.npy"))
            if not batches:
                _time.sleep(args.interval)
                continue
            for batch_path in batches:
                X_batch = np.load(batch_path)
                event = controller.ingest(X_batch)
                event["batch_file"] = batch_path.name
                _print_lifecycle_event(event, as_json=args.json)
                # Consume: the producer sees .done and never re-submits.
                batch_path.rename(batch_path.with_suffix(".npy.done"))
                ingested += 1
                if args.max_batches is not None and ingested >= args.max_batches:
                    break
    except KeyboardInterrupt:
        pass
    if not args.json:
        status = controller.status()
        print(
            f"ingested {ingested} batches; "
            f"{status['refreshes']} refreshes, "
            f"{status['rollbacks']} rollbacks; "
            f"serving {args.name}@{status['serving']['version']}"
        )
    return 0


def threading_event_wait() -> None:
    """Block the main thread until KeyboardInterrupt (testable seam)."""
    import threading

    threading.Event().wait()


def _parse_workers(value):
    """CLI ``--workers``: None stays serial, 'auto' or a count fan out."""
    if value is None:
        return None
    if str(value).lower() == "auto":
        return "auto"
    return int(value)


def _csv(text: str) -> list[str]:
    return [part.strip() for part in str(text).split(",") if part.strip()]


def _cmd_experiments(args) -> int:
    from .experiments import repeat_methods, tune_methods, workload_harness
    from .experiments.builders import WorkloadFactory
    from .experiments.report import render_table

    if args.experiments_command == "list":
        # The paper-experiment registry (repro.experiments.PaperExperiment).
        print(render_table(
            ["id", "dataset", "title", "benchmark"],
            [[spec.experiment_id, spec.dataset, spec.title, spec.bench_module]
             for spec in EXPERIMENTS.values()],
        ))
        return 0

    workers = _parse_workers(args.workers)

    if args.experiments_command == "run":
        from .experiments import load_run_spec, run_spec

        spec = load_run_spec(args.spec)
        store = Path(args.store) if args.store else default_store_root()
        report = run_spec(
            spec, store=store, workers=workers, shard=args.shard
        )
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
            return 0
        shard_note = f" [shard {args.shard}]" if args.shard else ""
        print(
            f"spec {spec.name!r}{shard_note}: {report.n_total} cells — "
            f"{report.n_cached} cached, {report.n_computed} computed "
            f"(hit rate {report.hit_rate:.0%}) [store: {store}]"
        )
        if report.aggregates:
            print(render_table(
                ["dataset", "method", "gamma", "runs", "AUC", "Cons(WF)",
                 "Cons(WX)", "parity gap"],
                [[dataset, method, gamma, agg.n_runs, agg.format("auc"),
                  agg.format("consistency_wf"), agg.format("consistency_wx"),
                  agg.format("parity_gap")]
                 for (dataset, method, gamma), agg
                 in report.aggregates.items()],
            ))
        else:
            print(render_table(
                ["dataset", "method", "gamma", "seed", "AUC", "Cons(WF)",
                 "Cons(WX)", "parity gap"],
                [[dataset, method, gamma, seed, r.auc, r.consistency_wf,
                  r.consistency_wx, r.rates.gap("positive_rate")]
                 for (dataset, method, gamma, seed), r
                 in report.results.items()],
            ))
        return 0

    store = getattr(args, "store", None)

    if args.experiments_command == "sweep":
        harness = workload_harness(
            args.dataset, seed=args.seed, scale=args.scale, store=store
        )
        gammas = [float(g) for g in _csv(args.gammas)]
        results = harness.gamma_sweep(
            gammas, method=args.method, workers=workers
        )
        rows = [r.summary() for r in results]
        payload = [
            {"gamma": gamma, **row} for gamma, row in zip(gammas, rows)
        ]
        if args.json:
            print(json.dumps(payload, indent=2))
            return 0
        print(render_table(
            ["gamma", "AUC", "Cons(WF)", "Cons(WX)", "parity", "FPR gap",
             "FNR gap"],
            [[entry["gamma"], entry["auc"], entry["consistency_wf"],
              entry["consistency_wx"], entry["parity_gap"], entry["fpr_gap"],
              entry["fnr_gap"]] for entry in payload],
        ))
        return 0

    if args.experiments_command == "tune":
        harness = workload_harness(
            args.dataset, seed=args.seed, scale=args.scale, store=store
        )
        tuned = tune_methods(
            harness,
            methods=tuple(_csv(args.methods)),
            n_splits=args.splits,
            workers=workers,
        )
        if args.json:
            print(json.dumps(tuned, indent=2, sort_keys=True))
            return 0
        print(render_table(
            ["method", "best score", "best params"],
            [[method, out["best_score"],
              json.dumps(out["best_params"], sort_keys=True)]
             for method, out in tuned.items()],
        ))
        return 0

    # repeat
    from .experiments import spawn_seeds

    seed_parts = _csv(args.seeds)
    if len(seed_parts) == 1:
        # A lone count derives that many seeds, rooted at --seed so the
        # flag steers repeat exactly like it steers sweep and tune.
        count = int(seed_parts[0])
        seeds = spawn_seeds(args.seed, count) if count > 0 else ()
    else:
        # Includes the empty case: repetition's validation owns the error.
        seeds = tuple(int(part) for part in seed_parts)
    aggregates = repeat_methods(
        WorkloadFactory(args.dataset, scale=args.scale),
        tuple(_csv(args.methods)),
        seeds=seeds,
        gamma=args.gamma,
        workers=workers,
        store=store,
    )
    if args.json:
        print(json.dumps(
            {
                method: {
                    "n_runs": agg.n_runs,
                    "mean": agg.mean,
                    "std": agg.std,
                }
                for method, agg in aggregates.items()
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(render_table(
        ["method", "runs", "AUC", "Cons(WF)", "Cons(WX)", "parity gap"],
        [[method, agg.n_runs, agg.format("auc"), agg.format("consistency_wf"),
          agg.format("consistency_wx"), agg.format("parity_gap")]
         for method, agg in aggregates.items()],
    ))
    return 0


def _cmd_store(args) -> int:
    from .experiments.report import render_table

    if args.store_command == "merge":
        from .store import merge_stores

        report = merge_stores(
            args.dest, *args.sources, dry_run=args.dry_run
        )
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
            return 0 if not report.conflicts else 1
        verb = "would copy" if args.dry_run else "copied"
        print(
            f"{verb} {report.n_copied} entries "
            f"({len(report.models_copied)} with model blobs) into "
            f"{report.dest}; {report.n_deduped} already present "
            f"(dedupe rate {report.dedupe_rate:.0%})"
        )
        for note in report.self_merges:
            print(f"  skipped {note}: merging a store into itself is a no-op")
        for item in report.skipped:
            print(f"  SKIPPED {item['path']}: {item['reason']}")
        for digest in report.missing_models:
            print(f"  MISSING MODEL {digest[:16]}: entry claims a blob the "
                  "source does not have")
        for conflict in report.conflicts:
            print(f"  CONFLICT {conflict['digest'][:16]} "
                  f"(from {conflict['source']}): {conflict['error']}")
        if report.conflicts:
            print(f"{len(report.conflicts)} digest conflicts — the "
                  "destination's entries were kept; investigate the sources")
            return 1
        return 0

    ledger = _ledger(args)

    if args.store_command == "stats":
        counts = ledger.counts()
        stats = ledger.stats()
        if args.json:
            print(json.dumps(
                {"root": str(ledger.root), "counts": counts,
                 "session": stats},
                indent=2, sort_keys=True,
            ))
            return 0
        print(f"ledger {ledger.root}")
        print(f"entries:      {counts['entries']} "
              f"({counts['with_model']} with model blobs)")
        for kind, n in counts["by_kind"].items():
            print(f"  {kind or '(unknown)':16s} {n}")
        print(f"model blobs:  {counts['model_blobs']}")
        if counts["corrupt"]:
            print(f"corrupt:      {counts['corrupt']} "
                  "(repair: `repro store gc`)")
        print(f"this process: {stats['lookups']} lookups, "
              f"{stats['hits']} hits, {stats['puts']} puts")
        return 0

    if args.store_command == "ls":
        entries = ledger.ls(kind=args.kind)
        if args.json:
            print(json.dumps(
                [
                    {
                        "digest": e.digest,
                        "kind": e.kind,
                        "created_at": e.created_at,
                        "library_version": e.library_version,
                        "has_model": e.has_model,
                    }
                    for e in entries
                ],
                indent=2,
            ))
            return 0
        if not entries:
            print(f"ledger {ledger.root} is empty")
            return 0
        print(render_table(
            ["DIGEST", "KIND", "DATASET", "METHOD", "MODEL"],
            [[e.digest[:16], e.kind,
              str(e.task.get("harness", {}).get("dataset", {}).get("name",
                  e.task.get("dataset", "-"))),
              str(e.task.get("method", "-")),
              "yes" if e.has_model else "-"]
             for e in entries],
        ))
        print(f"{len(entries)} entries in {ledger.root}")
        return 0

    if args.store_command == "gc":
        report = ledger.gc(
            kind=args.kind,
            older_than=(
                args.older_than_days * 86400.0
                if args.older_than_days is not None else None
            ),
            dry_run=args.dry_run,
        )
        if args.json:
            print(json.dumps(report, indent=2))
            return 0
        verb = "would remove" if args.dry_run else "removed"
        print(
            f"{verb} {len(report['removed'])} entries, "
            f"{len(report['corrupt'])} corrupt entries, "
            f"{len(report['orphans'])} orphaned model blobs, "
            f"{len(report['tmp_files'])} stray temp files"
        )
        return 0

    # verify
    report = ledger.verify()
    if args.json:
        print(json.dumps(report, indent=2))
        return 0 if not report["problems"] else 1
    print(f"checked {report['checked']} entries in {ledger.root}")
    for problem in report["problems"]:
        print(f"  CORRUPT {problem['digest'][:16]}: {problem['error']}")
    if report["problems"]:
        print(f"{len(report['problems'])} problems found "
              "(repair: `repro store gc` after investigating)")
        return 1
    print("ledger OK")
    return 0


def _cmd_transform(args) -> int:
    from .serving import TransformService

    input_path = Path(args.input)
    if not input_path.exists():
        print(f"error: input file not found: {input_path}", file=sys.stderr)
        return 2
    X = np.loadtxt(input_path, delimiter=",", ndmin=2)
    if X.size == 0:
        print(f"error: {input_path} contains no data rows", file=sys.stderr)
        return 2

    # One-shot process: a result cache would only be thrown away at exit,
    # so skip the digest/copy bookkeeping entirely. Under --trace/--metrics
    # the service publishes into the global registry so its latency lands
    # in the trace's final metrics record and the stderr snapshot.
    metrics = None
    if getattr(args, "trace", None) or getattr(args, "metrics", False):
        from .obs import get_registry

        metrics = get_registry()
    service = TransformService(_registry(args), cache_size=0, metrics=metrics)
    Z = service.transform(args.spec, X)

    if args.output:
        np.savetxt(args.output, Z, delimiter=",", fmt="%.12g")
        print(f"wrote {Z.shape[0]} x {Z.shape[1]} representation to {args.output}")
    else:
        try:
            np.savetxt(sys.stdout, Z, delimiter=",", fmt="%.12g")
        except BrokenPipeError:
            # Downstream consumer (e.g. `| head`) closed the pipe; that is
            # its prerogative, not an error. Redirect stdout so the
            # interpreter's shutdown flush doesn't raise again.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_obs(args) -> int:
    from .obs import format_trace_summary, read_trace, summarize_trace

    records = read_trace(args.trace)
    if args.obs_command == "summary":
        summary = summarize_trace(records)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(format_trace_summary(summary))
        return 0

    # tail
    n = max(int(args.n), 0)
    for record in records[len(records) - n:] if n else []:
        print(json.dumps(record, sort_keys=True))
    return 0


def _with_obs(args, command):
    """Run ``command()`` under the --trace/--metrics flags, if given.

    With neither flag this adds nothing — :mod:`repro.obs` is not even
    imported, keeping the untraced CLI byte-for-byte on its old path.
    ``--trace PATH`` scopes a JSONL sink around the command (the exit-time
    metrics record makes the file self-contained); ``--metrics`` prints
    the global registry snapshot to stderr after the command so stdout
    stays pipeable.
    """
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if not trace_path and not want_metrics:
        return command()
    from .obs import format_metrics, get_registry, tracing

    if trace_path:
        with tracing(trace_path):
            code = command()
    else:
        code = command()
    if want_metrics:
        print(format_metrics(get_registry().snapshot()), file=sys.stderr)
    return code


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.experiment_id:10s} [{spec.dataset:9s}] {spec.title}")
            for shape in spec.expected_shapes:
                print(f"             - {shape}")
        return 0

    if args.command == "report":
        from .experiments.summary import workload_report

        text = workload_report(args.dataset, scale=args.scale, seed=args.seed)
        print(text)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        return 0

    if args.command == "models":
        try:
            return _cmd_models(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "serve":
        try:
            return _cmd_serve(args)
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "lifecycle":
        try:
            return _cmd_lifecycle(args)
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "experiments":
        try:
            return _with_obs(args, lambda: _cmd_experiments(args))
        except (ReproError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except BrokenPipeError:
            # Downstream consumer (e.g. `| head`) closed the pipe; redirect
            # stdout so the interpreter's shutdown flush doesn't raise too.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0

    if args.command == "store":
        try:
            return _cmd_store(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "transform":
        try:
            return _with_obs(args, lambda: _cmd_transform(args))
        except (ReproError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "obs":
        try:
            return _cmd_obs(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except BrokenPipeError:
            # Downstream consumer (e.g. `| head`) closed the pipe; redirect
            # stdout so the interpreter's shutdown flush doesn't raise too.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0

    targets = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    try:
        renders = [
            _run_one(target, scale=args.scale, seed=args.seed)
            for target in targets
        ]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    text = "\n\n".join(renders)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    return 0
