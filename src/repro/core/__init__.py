"""The paper's primary contribution: Pairwise Fair Representations.

* :class:`PFR` — linear PFR (Equations 5–7).
* :class:`KernelPFR` — kernelized extension (Equation 8, §3.3.4).
* :class:`SpectralFitPlan` / :func:`fit_path` — the staged fit pipeline
  that makes γ- and d-sweeps reuse all upstream precomputation.
* :mod:`repro.core.trace_optimization` — the shared eigensolver layer.
"""

from .kernel_pfr import KernelPFR, kernel_matrix
from .pfr import PFR
from .plan import Precomputed, SpectralFitPlan, fit_path
from .trace_optimization import (
    objective_matrix,
    pairwise_loss,
    sign_normalize,
    smallest_eigenvectors,
)

__all__ = [
    "PFR",
    "KernelPFR",
    "Precomputed",
    "SpectralFitPlan",
    "fit_path",
    "kernel_matrix",
    "objective_matrix",
    "pairwise_loss",
    "sign_normalize",
    "smallest_eigenvectors",
]
