"""The paper's primary contribution: Pairwise Fair Representations.

* :class:`PFR` — linear PFR (Equations 5–7).
* :class:`KernelPFR` — kernelized extension (Equation 8, §3.3.4).
* :class:`SpectralFitPlan` / :func:`fit_path` — the staged fit pipeline
  that makes γ- and d-sweeps reuse all upstream precomputation.
* :class:`LandmarkPlan` / :func:`select_landmarks` /
  :func:`nystrom_extend` — the landmark-Nyström scaling layer
  (``extension="nystrom"``) that fits on ``m ≪ n`` landmarks and
  transforms arbitrary unseen rows.
* :mod:`repro.core.trace_optimization` — the shared eigensolver layer.
"""

from .approx import (
    LANDMARK_STRATEGIES,
    LandmarkPlan,
    PlanExtension,
    embedding_fidelity,
    nystrom_extend,
    plan_for_estimator,
    row_agreement,
    select_landmarks,
)
from .kernel_pfr import KernelPFR, kernel_matrix
from .pfr import PFR
from .plan import Precomputed, SpectralFitPlan, fit_path
from .trace_optimization import (
    objective_matrix,
    pairwise_loss,
    sign_normalize,
    smallest_eigenvectors,
)

__all__ = [
    "LANDMARK_STRATEGIES",
    "LandmarkPlan",
    "PFR",
    "KernelPFR",
    "PlanExtension",
    "Precomputed",
    "SpectralFitPlan",
    "embedding_fidelity",
    "fit_path",
    "kernel_matrix",
    "nystrom_extend",
    "objective_matrix",
    "pairwise_loss",
    "plan_for_estimator",
    "row_agreement",
    "select_landmarks",
    "sign_normalize",
    "smallest_eigenvectors",
]
