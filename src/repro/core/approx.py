"""Landmark-Nyström scaling layer: fit PFR far beyond the paper's n.

The paper's PFR solves one trace-minimization eigenproblem over *all* n
training individuals (Equations 7–8). That is transductive and — in the
kernel case — O(n³) time / O(n²) memory, fine for COMPAS (n ≈ 9k) but a
dead end for population-scale deployments. This module implements the
standard escape hatch for Laplacian-eigenmap-style methods: solve the
eigenproblem on ``m ≪ n`` *landmarks* and extend the solution to everyone
else.

:class:`LandmarkPlan` runs three steps:

1. **Select** ``m`` landmarks from the n training rows
   (:func:`select_landmarks`): uniform sampling, k-means++ D²-sampling, or
   farthest-point traversal — all seeded, all computed on the
   non-protected columns like the paper's ``Np``.
2. **Solve** the fused k-NN + fairness eigenproblem *only on the
   landmarks* by instantiating the PR-2 :class:`~repro.core.SpectralFitPlan`
   over the landmark rows and the landmark-restricted fairness graph —
   every staged-fit feature (γ/d sweep caching, eigengap-guarded slicing,
   chained digests) carries over for free.
3. **Extend** out of sample. The landmark solve yields a *parametric*
   map — ``Z = X V`` for linear PFR, ``Z = K(X, X_landmarks) A`` for
   kernel PFR (the classic Nyström extension of the eigenvectors) — so
   ``transform(X_new)`` works for arbitrary unseen rows. For diagnostics
   and for models without a parametric form, :func:`nystrom_extend` offers
   the graph-smoothing alternative built on
   :func:`repro.graphs.knn_cross`.

Estimator entry point: ``PFR(extension="nystrom", landmarks=m)`` (same for
:class:`~repro.core.KernelPFR`). Fitted models record a ``landmarks``
stage digest in ``plan_digests_`` ahead of the usual graph → laplacian →
projection → solve chain, so serving manifests can audit *which* subsample
produced a representation. ``benchmarks/bench_landmark.py`` quantifies the
fidelity/speed trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from .._validation import check_array, check_random_state, check_symmetric
from ..exceptions import ValidationError
from ..graphs.knn import (
    KNN_BACKENDS,
    _distance_view,
    knn_cross,
    knn_graph,
    median_heuristic,
)
from ..obs.trace import span
from .plan import Precomputed, SpectralFitPlan, _stage_digest
from .trace_optimization import EIG_SOLVERS

__all__ = [
    "LANDMARK_STRATEGIES",
    "LandmarkPlan",
    "PlanExtension",
    "check_extension_params",
    "check_numeric_params",
    "embedding_fidelity",
    "nystrom_extend",
    "plan_for_estimator",
    "row_agreement",
    "select_landmarks",
]

LANDMARK_STRATEGIES = ("uniform", "kmeans++", "farthest")

_EXTENSIONS = ("exact", "nystrom")


def check_extension_params(estimator) -> None:
    """Validate an estimator's ``extension``/``landmark*`` hyper-parameters.

    Shared by ``PFR`` and ``KernelPFR``: ``extension`` must be ``"exact"``
    or ``"nystrom"``; the nystrom mode additionally needs an integer
    ``landmarks >= 2`` and a known ``landmark_strategy``.
    """
    if estimator.extension not in _EXTENSIONS:
        raise ValidationError(
            f"extension must be one of {_EXTENSIONS}; got {estimator.extension!r}"
        )
    if estimator.extension == "exact":
        return
    if estimator.landmarks is None:
        raise ValidationError("extension='nystrom' requires landmarks=<int>")
    if int(estimator.landmarks) < 2:
        raise ValidationError(
            f"landmarks must be >= 2; got {estimator.landmarks}"
        )
    if estimator.landmark_strategy not in LANDMARK_STRATEGIES:
        raise ValidationError(
            f"unknown landmark strategy {estimator.landmark_strategy!r}; "
            f"use one of {LANDMARK_STRATEGIES}"
        )


def check_numeric_params(estimator) -> None:
    """Validate the raw-speed hyper-parameters shared by PFR and KernelPFR.

    ``knn_backend`` must name a :data:`repro.graphs.knn.KNN_BACKENDS`
    implementation, ``eig_solver`` a
    :data:`repro.core.trace_optimization.EIG_SOLVERS` entry, and ``dtype``
    must resolve to float32 or float64.
    """
    if estimator.knn_backend not in KNN_BACKENDS:
        raise ValidationError(
            f"knn_backend must be one of {KNN_BACKENDS}; "
            f"got {estimator.knn_backend!r}"
        )
    if estimator.eig_solver not in EIG_SOLVERS:
        raise ValidationError(
            f"eig_solver must be one of {EIG_SOLVERS}; "
            f"got {estimator.eig_solver!r}"
        )
    try:
        dtype_name = np.dtype(estimator.dtype).name
    except TypeError as exc:
        raise ValidationError(f"unrecognized dtype {estimator.dtype!r}") from exc
    if dtype_name not in ("float64", "float32"):
        raise ValidationError(
            f"dtype must be 'float64' or 'float32'; got {estimator.dtype!r}"
        )


def _min_sq_distances(view: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Squared euclidean distance from every row of ``view`` to ``center``."""
    delta = view - center[None, :]
    return np.einsum("ij,ij->i", delta, delta)


def select_landmarks(
    X,
    n_landmarks: int,
    *,
    strategy: str = "kmeans++",
    seed=0,
    exclude=None,
) -> np.ndarray:
    """Choose ``m`` landmark row indices from ``X`` (sorted ascending).

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n, m_features)``.
    n_landmarks:
        Number of landmarks ``m``, ``2 <= m <= n``.
    strategy:
        * ``"uniform"`` — i.i.d. sampling without replacement; cheapest,
          and unbiased for well-mixed data.
        * ``"kmeans++"`` (default) — D²-sampling: each next landmark is
          drawn with probability proportional to its squared distance to
          the nearest landmark so far. Covers clusters proportionally to
          their spread without the farthest-point outlier obsession.
        * ``"farthest"`` — greedy farthest-point traversal; deterministic
          after the seeded start, maximal coverage of the data's extent.
    seed:
        Generator seed; selection is a pure function of ``(X, m, strategy,
        seed, exclude)``.
    exclude:
        Column indices dropped before computing distances (the paper
        excludes protected attributes from neighborhoods, §3.1). Ignored
        by ``"uniform"``.

    Returns
    -------
    ndarray of shape (m,)
        Sorted, unique row indices. Sorting keeps ``m = n`` selections
        byte-identical to the full training set, which is what makes the
        exact-parity guarantee of :class:`LandmarkPlan` trivial to audit.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import select_landmarks
    >>> X = np.random.default_rng(0).normal(size=(100, 3))
    >>> indices = select_landmarks(X, 4, strategy="farthest", seed=1)
    >>> indices.shape, bool(np.all(np.diff(indices) > 0))
    ((4,), True)
    """
    X = check_array(X, name="X", min_samples=2)
    n = X.shape[0]
    if n_landmarks != int(n_landmarks):
        raise ValidationError(
            f"n_landmarks must be an integer; got {n_landmarks!r}"
        )
    n_landmarks = int(n_landmarks)
    if not 2 <= n_landmarks <= n:
        raise ValidationError(
            f"n_landmarks must be in [2, n={n}]; got {n_landmarks}"
        )
    if strategy not in LANDMARK_STRATEGIES:
        raise ValidationError(
            f"unknown landmark strategy {strategy!r}; "
            f"use one of {LANDMARK_STRATEGIES}"
        )
    rng = check_random_state(seed)

    if strategy == "uniform" or n_landmarks == n:
        return np.sort(rng.choice(n, size=n_landmarks, replace=False))

    view = _distance_view(X, exclude)

    chosen = np.empty(n_landmarks, dtype=np.int64)
    chosen[0] = int(rng.integers(n))
    # Running minimum squared distance to the chosen set: one O(n·f) update
    # per new landmark keeps the whole selection O(n·m·f).
    d2 = _min_sq_distances(view, view[chosen[0]])
    for i in range(1, n_landmarks):
        total = float(d2.sum())
        if total <= 0.0:
            # Every remaining point coincides with a landmark; fall back to
            # uniform among the unchosen so selection always completes.
            remaining = np.setdiff1d(np.arange(n), chosen[:i])
            chosen[i:] = rng.choice(
                remaining, size=n_landmarks - i, replace=False
            )
            break
        if strategy == "kmeans++":
            next_index = int(rng.choice(n, p=d2 / total))
        else:  # farthest-point: deterministic argmax after the seeded start
            next_index = int(np.argmax(d2))
        chosen[i] = next_index
        np.minimum(d2, _min_sq_distances(view, view[next_index]), out=d2)
    return np.sort(chosen)


def nystrom_extend(
    X_new,
    X_landmarks,
    Z_landmarks,
    *,
    n_neighbors: int = 10,
    bandwidth: float | None = None,
    exclude=None,
    backend: str = "exact",
    backend_options: dict | None = None,
    dtype=None,
) -> np.ndarray:
    """Graph-smoothing Nyström extension of a landmark embedding.

    Embeds unseen rows as the heat-kernel-weighted average of their
    ``n_neighbors`` nearest landmarks' embeddings:
    ``z(x) = Σ_j w_j(x) z_j / Σ_j w_j(x)`` with ``w`` from
    :func:`repro.graphs.knn_cross`. This is the generic Laplacian-eigenmap
    out-of-sample rule; PFR-family models prefer their parametric maps
    (``X V`` / ``K A``), but this version needs only landmark coordinates
    and embeddings, so it applies to *any* representation and is what the
    fidelity diagnostics in ``benchmarks/bench_landmark.py`` use as a
    model-free cross-check.

    Parameters
    ----------
    X_new:
        Query rows of shape ``(q, m_features)``.
    X_landmarks, Z_landmarks:
        Landmark coordinates ``(m, m_features)`` and their embedding
        ``(m, d)``.
    n_neighbors, bandwidth, exclude:
        Forwarded to :func:`repro.graphs.knn_cross`; ``n_neighbors`` is
        clamped to the landmark count.
    backend, backend_options, dtype:
        Forwarded to :func:`repro.graphs.knn_cross`. ``dtype=np.float32``
        keeps the extension weights and output float32 (the extension leg
        of the float32 pipeline); ``None`` computes in float64 as before.

    Returns
    -------
    ndarray of shape (q, d)
        Extended embedding; a query with all-zero weights (heat-kernel
        underflow) falls back to its single nearest landmark's embedding.
    """
    work = np.dtype(np.float64) if dtype is None else np.dtype(dtype)
    X_new = check_array(X_new, name="X_new", dtype=work)
    X_landmarks = check_array(
        X_landmarks, name="X_landmarks", min_samples=1, dtype=work
    )
    Z_landmarks = np.asarray(Z_landmarks, dtype=work)
    if Z_landmarks.ndim != 2 or Z_landmarks.shape[0] != X_landmarks.shape[0]:
        raise ValidationError(
            f"Z_landmarks must be (n_landmarks, d) = ({X_landmarks.shape[0]}, d); "
            f"got shape {Z_landmarks.shape}"
        )
    if bandwidth is None and X_landmarks.shape[0] < 2:
        # median_heuristic needs at least one pairwise distance; with a
        # single landmark it degenerates to NaN and the extension would
        # silently return NaN rows.
        raise ValidationError(
            "nystrom_extend with a single landmark cannot resolve a "
            "heat-kernel bandwidth from the data; pass bandwidth= explicitly"
        )
    k = min(int(n_neighbors), X_landmarks.shape[0])
    weights = knn_cross(
        X_new,
        X_landmarks,
        n_neighbors=k,
        bandwidth=bandwidth,
        exclude=exclude,
        backend=backend,
        backend_options=backend_options,
        dtype=work,
    )
    mass = np.asarray(weights.sum(axis=1)).ravel()
    degenerate = mass <= 0.0
    if degenerate.any():
        # All k weights underflowed: use the single nearest landmark.
        nearest = knn_cross(
            X_new[degenerate],
            X_landmarks,
            n_neighbors=1,
            bandwidth=bandwidth,
            exclude=exclude,
            backend=backend,
            backend_options=backend_options,
            dtype=work,
            binary=True,
        )
        out = np.zeros((X_new.shape[0], Z_landmarks.shape[1]), dtype=work)
        out[~degenerate] = (
            (weights[~degenerate] @ Z_landmarks) / mass[~degenerate][:, None]
        )
        out[degenerate] = nearest @ Z_landmarks
        return out
    return (weights @ Z_landmarks) / mass[:, None]


def embedding_fidelity(Z_ref, Z, *, per_row: bool = False, align: bool = True):
    """Row-wise cosine similarity, optionally after the best linear alignment.

    Embeddings are equivalent up to an invertible linear map (downstream
    linear models cannot tell them apart), so the default least-squares-
    aligns ``Z`` onto ``Z_ref`` before comparing rows — a Procrustes-style
    measure generalized to absorb the per-column scale differences between
    an m-row and an n-row orthonormality constraint. Returns 1.0 for
    equivalent embeddings; this is the acceptance metric of
    ``benchmarks/bench_landmark.py`` and the monotonicity lockdown in
    ``tests/test_core_approx.py``.

    Parameters
    ----------
    per_row:
        Return the ``(n,)`` vector of row similarities instead of their
        mean — the drift-scoring primitive of the lifecycle layer.
    align:
        Fit the free linear alignment before comparing. Disable when both
        embeddings already live in the same basis (e.g. the parametric map
        vs. the graph-smoothing extension of one fitted model): on small
        batches with at most ``d`` rows the free alignment is trivially
        exact, which would score every batch 1.0 and hide all drift.
    """
    Z_ref = np.asarray(Z_ref, dtype=np.float64)
    Z = np.asarray(Z, dtype=np.float64)
    if Z_ref.shape != Z.shape or Z_ref.ndim != 2:
        raise ValidationError(
            f"embedding_fidelity needs two equal-shape 2-D embeddings; "
            f"got {Z_ref.shape} and {Z.shape}"
        )
    if align:
        A, *_ = np.linalg.lstsq(Z, Z_ref, rcond=None)
        Z_aligned = Z @ A
    else:
        Z_aligned = Z
    numerator = np.sum(Z_aligned * Z_ref, axis=1)
    denominator = np.maximum(
        np.linalg.norm(Z_aligned, axis=1) * np.linalg.norm(Z_ref, axis=1),
        1e-15,
    )
    scores = numerator / denominator
    if per_row:
        return scores
    return float(np.mean(scores))


def row_agreement(Z_graph, Z_param) -> np.ndarray:
    """Scale-aware per-row agreement between two same-basis embeddings.

    The cosine (no free alignment — see :func:`embedding_fidelity`'s
    ``align``) scaled by the norm ratio of the rows: the graph-smoothing
    extension is a convex combination of landmark embeddings, so a
    drifted row whose parametric image leaves the landmark hull keeps a
    plausible *direction* but an inflated *norm* — the ratio is what
    collapses. Shared by :meth:`LandmarkPlan.score_rows` and the serving
    tier's drift scorer (:func:`repro.lifecycle.scorer_for`).
    """
    Z_graph = np.asarray(Z_graph, dtype=np.float64)
    Z_param = np.asarray(Z_param, dtype=np.float64)
    cosine = embedding_fidelity(Z_graph, Z_param, per_row=True, align=False)
    norm_graph = np.linalg.norm(Z_graph, axis=1)
    norm_param = np.linalg.norm(Z_param, axis=1)
    ratio = np.minimum(norm_graph, norm_param) / np.maximum(
        np.maximum(norm_graph, norm_param), 1e-15
    )
    return cosine * ratio


def _restrict(W, indices: np.ndarray):
    """Symmetric restriction ``W[indices][:, indices]`` (sparse or dense)."""
    if sp.issparse(W):
        return W.tocsr()[indices][:, indices]
    return np.asarray(W)[np.ix_(indices, indices)]


@dataclass(frozen=True)
class PlanExtension:
    """Outcome of one lifecycle :meth:`LandmarkPlan.extend` call.

    Attributes
    ----------
    plan:
        The plan to keep using: ``self`` when the landmark set was kept,
        or the warm-started child plan when a refresh ran.
    scores:
        Per-row fidelity of the appended batch (parametric map vs.
        graph-smoothing extension, no free alignment).
    baseline:
        Fit-time fidelity distribution quantiles the scores were judged
        against (see :meth:`LandmarkPlan.fidelity_baseline`).
    stale_fraction:
        Fraction of the batch scoring below the baseline's ``p05``.
    stale:
        Whether that fraction crossed the staleness threshold.
    refreshed:
        Whether a warm-started refit ran (``plan`` is then the child).
    n_pending:
        Rows appended but not yet folded into a refreshed landmark set.
    """

    plan: "LandmarkPlan"
    scores: np.ndarray = field(repr=False)
    baseline: dict = field(repr=False)
    stale_fraction: float
    stale: bool
    refreshed: bool
    n_pending: int


class LandmarkPlan:
    """Landmark-Nyström fit pipeline for PFR-family estimators.

    Selects ``n_landmarks`` training rows (:func:`select_landmarks`),
    restricts the fairness graph (and any precomputed data graph) to them,
    and drives a :class:`~repro.core.SpectralFitPlan` over the landmark
    subproblem — so the eigenproblem costs O(m³) instead of O(n³) while
    γ/d sweeps keep the PR-2 warm-start behavior. :meth:`fit` populates a
    ``PFR(extension="nystrom")`` / ``KernelPFR(extension="nystrom")``
    estimator whose ``transform`` then serves arbitrary unseen rows.

    With ``n_landmarks = n`` every strategy selects all rows and the sorted
    index set makes the landmark matrices byte-identical to the full ones:
    the plan then reproduces the exact :class:`SpectralFitPlan` solve to
    machine precision (locked down by ``tests/test_core_approx.py``).

    Parameters are :class:`SpectralFitPlan`'s plus the landmark knobs;
    build instances via :meth:`for_estimator` in user code.
    """

    def __init__(
        self,
        X,
        w_fair,
        *,
        n_landmarks: int,
        strategy: str = "kmeans++",
        seed=0,
        kind: str = "linear",
        w_x=None,
        exclude_columns=None,
        **structural,
    ):
        # Cast to the pipeline dtype before selection so the landmark digest
        # (which hashes X) and the seeded selection both see the dtype the
        # subplan will compute in. Unknown dtype strings fall through to the
        # subplan's validation below.
        plan_dtype = structural.get("dtype", "float64")
        try:
            np_dtype = np.dtype(plan_dtype)
        except TypeError:
            np_dtype = np.dtype(np.float64)
        if np_dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            np_dtype = np.dtype(np.float64)
        X = check_array(X, name="X", min_samples=2, dtype=np_dtype)
        n = X.shape[0]
        w_fair = check_symmetric(w_fair, name="w_fair")
        if w_fair.shape[0] != n:
            raise ValidationError(
                f"w_fair has {w_fair.shape[0]} nodes but X has {n} samples"
            )
        if w_x is not None:
            w_x = check_symmetric(w_x, name="w_x")
            if w_x.shape[0] != n:
                raise ValidationError(
                    f"w_x has {w_x.shape[0]} nodes but X has {n} samples"
                )

        self.X = X
        self.n_landmarks = int(n_landmarks)
        self.strategy = strategy
        self.seed = seed
        with span("plan.landmarks", strategy=str(strategy),
                  m=int(n_landmarks), n=int(n)):
            self.indices_ = select_landmarks(
                X,
                self.n_landmarks,
                strategy=strategy,
                seed=seed,
                exclude=exclude_columns,
            )
        self.X_landmarks_ = X[self.indices_]
        w_fair_landmarks = _restrict(w_fair, self.indices_)
        w_x_landmarks = None if w_x is None else _restrict(w_x, self.indices_)
        self.subplan = SpectralFitPlan(
            self.X_landmarks_,
            w_fair_landmarks,
            kind=kind,
            w_x=w_x_landmarks,
            exclude_columns=exclude_columns,
            **structural,
        )
        # Tell the subplan its estimators legitimately carry
        # extension="nystrom" (SpectralFitPlan otherwise rejects them so a
        # bare exact plan can never silently fit a landmark estimator).
        self.subplan._landmark_driver = True
        self._landmark_digest = _stage_digest(
            "landmarks",
            {
                "n_landmarks": self.n_landmarks,
                "strategy": self.strategy,
                "seed": repr(self.seed),
                "n_total": n,
            },
            {"X": X, "indices": self.indices_},
        )
        self._init_lifecycle_state()

    def _init_lifecycle_state(self) -> None:
        # Refresh lineage + streaming state (see extend()/refresh()). A
        # freshly constructed plan is a root: no parent, nothing pending.
        self.parent: LandmarkPlan | None = None
        self._extend_digest: str | None = None
        self._pending: list[tuple[np.ndarray, object]] = []
        self._last_fit_point: tuple[float, int] | None = None
        self._baselines: dict[tuple[float, int], dict] = {}

    @property
    def n_pending(self) -> int:
        """Rows buffered by :meth:`extend` awaiting the next :meth:`refresh`."""
        return sum(batch.shape[0] for batch, _ in self._pending)

    # ------------------------------------------------------------ factory
    @classmethod
    def for_estimator(cls, estimator, X, w_fair, *, w_x=None) -> "LandmarkPlan":
        """Build the landmark plan matching a PFR/KernelPFR's configuration.

        The estimator must have ``extension="nystrom"`` and an integer
        ``landmarks``; its γ and ``n_components`` stay free sweep axes,
        exactly as with :meth:`SpectralFitPlan.for_estimator`.
        """
        from .kernel_pfr import KernelPFR
        from .pfr import PFR

        if getattr(estimator, "extension", "exact") != "nystrom":
            raise ValidationError(
                "LandmarkPlan.for_estimator needs an estimator with "
                f"extension='nystrom'; got {getattr(estimator, 'extension', 'exact')!r}"
            )
        if estimator.landmarks is None:
            raise ValidationError(
                "extension='nystrom' requires landmarks=<int>; got None"
            )
        landmark_kwargs = dict(
            n_landmarks=int(estimator.landmarks),
            strategy=estimator.landmark_strategy,
            seed=estimator.landmark_seed,
        )
        # n is the capacity ceiling: asking for more landmarks than rows
        # degrades gracefully to the exact solve.
        n = check_array(X, name="X", min_samples=2).shape[0]
        landmark_kwargs["n_landmarks"] = min(landmark_kwargs["n_landmarks"], n)

        if isinstance(estimator, KernelPFR):
            return cls(
                X,
                w_fair,
                kind="kernel",
                w_x=w_x,
                n_neighbors=estimator.n_neighbors,
                bandwidth=estimator.bandwidth,
                exclude_columns=estimator.exclude_columns,
                rescale=estimator.rescale,
                constraint=estimator.constraint,
                ridge=estimator.ridge,
                eig_solver=estimator.eig_solver,
                kernel=estimator.kernel,
                kernel_bandwidth=estimator.kernel_bandwidth,
                degree=estimator.degree,
                coef0=estimator.coef0,
                knn_backend=estimator.knn_backend,
                knn_seed=estimator.knn_seed,
                dtype=estimator.dtype,
                **landmark_kwargs,
            )
        if isinstance(estimator, PFR):
            return cls(
                X,
                w_fair,
                kind="linear",
                w_x=w_x,
                n_neighbors=estimator.n_neighbors,
                bandwidth=estimator.bandwidth,
                exclude_columns=estimator.exclude_columns,
                normalized_laplacian=estimator.normalized_laplacian,
                rescale=estimator.rescale,
                constraint=estimator.constraint,
                ridge=estimator.ridge,
                eig_solver=estimator.eig_solver,
                knn_backend=estimator.knn_backend,
                knn_seed=estimator.knn_seed,
                dtype=estimator.dtype,
                **landmark_kwargs,
            )
        raise ValidationError(
            f"for_estimator expects a PFR or KernelPFR; got {type(estimator).__name__}"
        )

    # ---------------------------------------------------------- delegation
    @property
    def graph(self) -> Precomputed:
        """Stage bundle of the landmark subproblem's graphs."""
        return self.subplan.graph

    @property
    def laplacians(self) -> Precomputed:
        """Stage bundle of the landmark subproblem's Laplacians."""
        return self.subplan.laplacians

    @property
    def projection(self) -> Precomputed:
        """Stage bundle of the landmark subproblem's objective matrices."""
        return self.subplan.projection

    @property
    def d_max(self) -> int:
        """Largest latent dimensionality the landmark subproblem supports."""
        return self.subplan.d_max

    def solve(self, gamma: float, d: int):
        """Eigenpairs of the γ-mixed *landmark* objective (see
        :meth:`SpectralFitPlan.solve` — caching and eigengap guards apply
        unchanged)."""
        return self.subplan.solve(gamma, d)

    def fit(self, estimator):
        """Populate a nystrom-extension estimator from the landmark solve.

        Beyond :meth:`SpectralFitPlan.fit`, records the selected
        ``landmark_indices_`` (positions into the *full* training matrix)
        and prepends the ``landmarks`` stage digest to ``plan_digests_``.
        Returns the estimator.
        """
        self._check_landmark_match(estimator)
        self.subplan.fit(estimator)
        estimator.landmark_indices_ = self.indices_.copy()
        estimator.landmark_X_ = self.X_landmarks_.copy()
        estimator.plan_digests_ = self.stage_digests()
        self._last_fit_point = (
            float(estimator.gamma),
            int(estimator.n_components),
        )
        return estimator

    # ----------------------------------------------------------- lifecycle
    def _resolve_point(self, gamma, d) -> tuple[float, int]:
        """The (γ, d) operating point: explicit, or the last fit's."""
        if gamma is not None and d is not None:
            return float(gamma), int(d)
        if self._last_fit_point is None:
            raise ValidationError(
                "this plan has no operating point yet; fit() an estimator "
                "first or pass both gamma and d"
            )
        return self._last_fit_point

    def _landmark_embedding(self, gamma: float, d: int) -> np.ndarray:
        """Primal embedding of the landmark rows at one operating point."""
        _, V = self.solve(gamma, d)
        if self.subplan.kind == "linear":
            return self.X_landmarks_ @ V
        proj = self.subplan.projection
        if proj["whiten"] is not None:
            # Constraint 'z': solve() returns coordinates in K's
            # principal subspace Φ = U√S, so Z = Φ V.
            return (proj["kernel_basis"] *
                    np.sqrt(proj["kernel_spectrum"])) @ V
        # Constraint 'v': solve() returns the duals A; Z = K A.
        from .kernel_pfr import kernel_matrix

        K = kernel_matrix(
            self.X_landmarks_,
            self.X_landmarks_,
            kernel=self.subplan.kernel,
            bandwidth=proj["fitted_bandwidth"],
            degree=self.subplan.degree,
            coef0=self.subplan.coef0,
        )
        return K @ V

    def _parametric_embedding(self, X_rows, gamma: float, d: int) -> np.ndarray:
        """The fitted model's out-of-sample map: ``X V`` / ``K(X, L) A``."""
        _, V = self.solve(gamma, d)
        if self.subplan.kind == "linear":
            return X_rows @ V
        from .kernel_pfr import kernel_matrix

        proj = self.subplan.projection
        if proj["whiten"] is not None:
            A = proj["kernel_basis"] @ (
                V / np.sqrt(proj["kernel_spectrum"])[:, None]
            )
        else:
            A = V
        K = kernel_matrix(
            X_rows,
            self.X_landmarks_,
            kernel=self.subplan.kernel,
            bandwidth=proj["fitted_bandwidth"],
            degree=self.subplan.degree,
            coef0=self.subplan.coef0,
        )
        return K @ A

    def _graph_extend(self, X_new, Z_landmarks) -> np.ndarray:
        return nystrom_extend(
            X_new,
            self.X_landmarks_,
            Z_landmarks,
            n_neighbors=min(self.subplan.n_neighbors, len(self.indices_)),
            bandwidth=self.subplan.bandwidth,
            exclude=self.subplan.exclude_columns,
            backend=self.subplan.knn_backend,
            backend_options=(
                {"seed": self.subplan.knn_seed}
                if self.subplan.knn_backend == "lsh"
                else None
            ),
            dtype=self.subplan._np_dtype,
        )

    def score_rows(self, X_rows, *, gamma=None, d=None) -> np.ndarray:
        """Per-row fidelity of new rows against this plan's landmark set.

        Compares the fitted model's parametric embedding of each row with
        the model-free graph-smoothing extension
        (:func:`nystrom_extend`) — both live in the same landmark basis,
        so the comparison runs *without* the free linear alignment (which
        would trivially score tiny batches 1.0). The per-row cosine is
        scaled by the norm ratio of the two embeddings: the graph
        extension is a convex combination of landmark embeddings, so a
        drifted row whose parametric image leaves the landmark hull keeps
        a plausible *direction* but an inflated *norm* — the ratio is
        what collapses. This is the lifecycle layer's drift signal.
        """
        gamma, d = self._resolve_point(gamma, d)
        X_rows = check_array(
            X_rows, name="X_rows", dtype=self.subplan._np_dtype
        )
        if X_rows.shape[1] != self.X.shape[1]:
            raise ValidationError(
                f"X_rows has {X_rows.shape[1]} features but the plan was "
                f"built on {self.X.shape[1]}"
            )
        Z_param = self._parametric_embedding(X_rows, gamma, d)
        Z_graph = self._graph_extend(X_rows, self._landmark_embedding(gamma, d))
        return row_agreement(Z_graph, Z_param)

    def fidelity_baseline(
        self, gamma=None, d=None, *, sample: int = 256, seed=0
    ) -> dict:
        """Fit-time per-row fidelity distribution (cached per (γ, d)).

        Scores a seeded sample of the training rows through
        :meth:`score_rows` and summarizes the distribution's quantiles —
        the yardstick :meth:`extend` measures incoming batches against.
        """
        gamma, d = self._resolve_point(gamma, d)
        key = (gamma, d)
        cached = self._baselines.get(key)
        if cached is None:
            n = self.X.shape[0]
            rng = check_random_state(seed)
            take = min(int(sample), n)
            index = np.sort(rng.choice(n, size=take, replace=False))
            scores = self.score_rows(self.X[index], gamma=gamma, d=d)
            quantiles = np.quantile(scores, [0.01, 0.05, 0.10, 0.25, 0.50])
            cached = {
                "gamma": gamma,
                "d": d,
                "n_sample": take,
                "mean": float(scores.mean()),
                "p01": float(quantiles[0]),
                "p05": float(quantiles[1]),
                "p10": float(quantiles[2]),
                "p25": float(quantiles[3]),
                "p50": float(quantiles[4]),
            }
            self._baselines[key] = cached
        return dict(cached)

    def extend(
        self,
        X_new,
        Z_landmarks=None,
        *,
        gamma=None,
        d=None,
        w_fair_new=None,
        refresh: str = "auto",
        stale_fraction: float = 0.5,
    ):
        """Extend the plan to new rows — embedding, or lifecycle append.

        Two modes share this entry point:

        * **One-off graph-smoothing extension** (the historical API): pass
          an explicit landmark embedding ``Z_landmarks`` or a ``(gamma,
          d)`` operating point and get back the extended embedding as an
          ndarray (see :func:`nystrom_extend` for the weighting rule).
        * **Lifecycle append** (requires a prior :meth:`fit`): pass only
          ``X_new``. The batch is scored with :meth:`score_rows` against
          the fit-time :meth:`fidelity_baseline`, appended to the pending
          buffer, and — when the scored staleness crosses
          ``stale_fraction`` and ``refresh="auto"`` (or always, with
          ``refresh="always"``) — a warm-started :meth:`refresh` runs.
          Returns a :class:`PlanExtension`; ``refresh="never"`` defers the
          decision to an external policy (see :mod:`repro.lifecycle`).

        ``w_fair_new`` optionally carries judged fairness edges *within*
        the batch (shape ``(q, q)``); unjudged batches join the fairness
        graph isolated, exactly like unjudged individuals in the paper.
        """
        if Z_landmarks is not None or gamma is not None or d is not None:
            if w_fair_new is not None:
                raise ValidationError(
                    "w_fair_new only applies to the lifecycle extend(X_new) "
                    "mode, not the one-off embedding extension"
                )
            if Z_landmarks is None:
                if gamma is None or d is None:
                    raise ValidationError(
                        "extend() needs Z_landmarks or both gamma and d"
                    )
                Z_landmarks = self._landmark_embedding(float(gamma), int(d))
            return self._graph_extend(X_new, Z_landmarks)
        if refresh not in ("auto", "never", "always"):
            raise ValidationError(
                f"refresh must be 'auto', 'never' or 'always'; got {refresh!r}"
            )
        if self._last_fit_point is None:
            raise ValidationError(
                "extend() needs Z_landmarks or both gamma and d on a plan "
                "that was never fit(); the lifecycle extend(X_new) mode "
                "requires a fitted operating point"
            )
        X_new = check_array(X_new, name="X_new", dtype=self.subplan._np_dtype)
        if X_new.shape[1] != self.X.shape[1]:
            raise ValidationError(
                f"X_new has {X_new.shape[1]} features but the plan was "
                f"built on {self.X.shape[1]}"
            )
        if w_fair_new is not None:
            w_fair_new = check_symmetric(w_fair_new, name="w_fair_new")
            if w_fair_new.shape[0] != X_new.shape[0]:
                raise ValidationError(
                    f"w_fair_new has {w_fair_new.shape[0]} nodes but X_new "
                    f"has {X_new.shape[0]} rows"
                )
        point = self._last_fit_point
        with span("plan.extend", n_new=int(X_new.shape[0])):
            scores = self.score_rows(X_new, gamma=point[0], d=point[1])
            baseline = self.fidelity_baseline(point[0], point[1])
            self._pending.append((X_new, w_fair_new))
            fraction = float(np.mean(scores < baseline["p05"]))
            stale = fraction >= float(stale_fraction)
            plan: LandmarkPlan = self
            refreshed = False
            if refresh == "always" or (refresh == "auto" and stale):
                plan = self.refresh()
                refreshed = True
        return PlanExtension(
            plan=plan,
            scores=scores,
            baseline=baseline,
            stale_fraction=fraction,
            stale=stale,
            refreshed=refreshed,
            n_pending=0 if refreshed else sum(
                batch.shape[0] for batch, _ in self._pending
            ),
        )

    def refresh(self, *, n_new_landmarks: int | None = None) -> "LandmarkPlan":
        """Warm-started refit folding the pending rows into the landmark set.

        Selects new landmarks *from the pending rows only* (O(q·m·f)
        instead of the cold fit's O(n·m·f) selection over the full
        training matrix), keeps the parent's landmark data graph block
        verbatim, and computes only the new-landmark edges via
        :func:`repro.graphs.knn_cross` — the assembled graph is handed to
        the child's :class:`SpectralFitPlan` as a precomputed ``w_x``, so
        the child never rebuilds what the parent already paid for. Pending
        fairness edges ride along; old↔new fairness edges are unknown at
        refresh time and enter as zeros (unjudged pairs, paper §3.2).

        Returns the child plan; its :meth:`stage_digests` chain off this
        plan's digests (``landmarks`` + a new ``extend`` stage) so the
        refresh lineage is explicit in every downstream manifest.
        """
        if not self._pending:
            raise ValidationError(
                "refresh() has no pending rows; call extend(X_new) first"
            )
        X_pending = np.vstack([batch for batch, _ in self._pending])
        q = X_pending.shape[0]
        m = len(self.indices_)
        n = self.X.shape[0]
        if n_new_landmarks is None:
            n_new_landmarks = max(1, min(q, int(round(m * q / max(n, 1)))))
        n_new_landmarks = int(n_new_landmarks)
        if not 1 <= n_new_landmarks <= q:
            raise ValidationError(
                f"n_new_landmarks must be in [1, {q} pending rows]; "
                f"got {n_new_landmarks}"
            )
        with span("plan.refresh", n_pending=int(q),
                  n_new_landmarks=int(n_new_landmarks)):
            child = self._refresh_child(X_pending, n_new_landmarks)
        self._pending = []
        return child

    def _refresh_child(
        self, X_pending: np.ndarray, n_new_landmarks: int
    ) -> "LandmarkPlan":
        sub = self.subplan
        q = X_pending.shape[0]
        m = len(self.indices_)
        n = self.X.shape[0]
        exclude = sub.exclude_columns
        if n_new_landmarks >= 2:
            new_local = select_landmarks(
                X_pending,
                n_new_landmarks,
                strategy=self.strategy,
                seed=self.seed,
                exclude=exclude,
            )
        else:
            # A single new landmark: the pending row farthest from the
            # existing landmark set (greedy farthest-point step).
            view = _distance_view(X_pending, exclude)
            landmark_view = _distance_view(self.X_landmarks_, exclude)
            d2 = np.full(q, np.inf)
            for row in landmark_view:
                np.minimum(d2, _min_sq_distances(view, row), out=d2)
            new_local = np.array([int(np.argmax(d2))], dtype=np.int64)
        X_new_landmarks = X_pending[new_local]
        q_new = X_new_landmarks.shape[0]

        # --- incremental data graph: reuse the old m×m block verbatim ----
        W_old = sub.graph["w_x"]
        k = min(sub.n_neighbors, m)
        bandwidth = sub.bandwidth
        if bandwidth is None:
            bandwidth = float(
                median_heuristic(
                    _distance_view(
                        np.vstack([self.X_landmarks_, X_new_landmarks]),
                        exclude,
                    )
                )
            )
        backend_options = (
            {"seed": sub.knn_seed} if sub.knn_backend == "lsh" else None
        )
        cross = knn_cross(
            X_new_landmarks,
            self.X_landmarks_,
            n_neighbors=k,
            bandwidth=bandwidth,
            exclude=exclude,
            backend=sub.knn_backend,
            backend_options=backend_options,
            dtype=sub._np_dtype,
        )
        if q_new >= 2:
            W_new = knn_graph(
                X_new_landmarks,
                n_neighbors=min(k, q_new - 1),
                bandwidth=bandwidth,
                exclude=exclude,
                backend=sub.knn_backend,
                backend_options=backend_options,
                dtype=sub._np_dtype,
            )
        else:
            W_new = sp.csr_matrix((1, 1), dtype=sub._np_dtype)
        W_combined = sp.bmat(
            [
                [sp.csr_matrix(W_old), sp.csr_matrix(cross).T],
                [sp.csr_matrix(cross), sp.csr_matrix(W_new)],
            ],
            format="csr",
        )
        if not sp.issparse(W_old):
            W_combined = W_combined.toarray()

        # --- fairness graph: parent landmark block ⊕ judged pending edges
        WF_new = np.zeros((q_new, q_new), dtype=np.float64)
        offset = 0
        for batch, w_fair_batch in self._pending:
            size = batch.shape[0]
            if w_fair_batch is not None:
                hit = np.where(
                    (new_local >= offset) & (new_local < offset + size)
                )[0]
                if hit.size:
                    local = new_local[hit] - offset
                    block = (
                        w_fair_batch.toarray()
                        if sp.issparse(w_fair_batch)
                        else np.asarray(w_fair_batch)
                    )
                    WF_new[np.ix_(hit, hit)] = block[np.ix_(local, local)]
            offset += size
        WF_old = sub.w_fair
        if sp.issparse(WF_old):
            WF_combined = sp.bmat(
                [[WF_old, None], [None, sp.csr_matrix(WF_new)]], format="csr"
            )
        else:
            WF_combined = np.zeros((m + q_new, m + q_new), dtype=np.float64)
            WF_combined[:m, :m] = np.asarray(WF_old)
            WF_combined[m:, m:] = WF_new

        extend_digest = _stage_digest(
            "extend",
            {
                "parent_landmarks": self._landmark_digest,
                "n_pending": int(q),
                "n_new_landmarks": int(q_new),
            },
            {"X_new_landmarks": X_new_landmarks, "new_local": new_local},
        )

        child = object.__new__(LandmarkPlan)
        child.X = np.vstack([self.X, X_pending])
        child.n_landmarks = m + q_new
        child.strategy = self.strategy
        child.seed = self.seed
        child.indices_ = np.concatenate([self.indices_, n + new_local])
        child.X_landmarks_ = np.vstack([self.X_landmarks_, X_new_landmarks])
        child.subplan = SpectralFitPlan(
            child.X_landmarks_,
            WF_combined,
            kind=sub.kind,
            w_x=W_combined,
            exclude_columns=exclude,
            **self._structural_kwargs(),
        )
        child.subplan._landmark_driver = True
        child._landmark_digest = _stage_digest(
            "landmarks",
            {
                "n_landmarks": child.n_landmarks,
                "strategy": child.strategy,
                "seed": repr(child.seed),
                "n_total": child.X.shape[0],
                "parent": self._landmark_digest,
                "extend": extend_digest,
            },
            {"indices": child.indices_},
        )
        child._init_lifecycle_state()
        child.parent = self
        child._extend_digest = extend_digest
        child._last_fit_point = self._last_fit_point
        return child

    def _structural_kwargs(self) -> dict:
        """The subplan's structural hyper-parameters as constructor kwargs
        (``exclude_columns`` excluded — callers pass it positionally)."""
        sub = self.subplan
        kwargs = dict(
            n_neighbors=sub.n_neighbors,
            bandwidth=sub.bandwidth,
            rescale=sub.rescale,
            constraint=sub.constraint,
            ridge=sub.ridge,
            eig_solver=sub.eig_solver,
            knn_backend=sub.knn_backend,
            knn_seed=sub.knn_seed,
            dtype=sub.dtype,
        )
        if sub.kind == "linear":
            kwargs["normalized_laplacian"] = sub.normalized_laplacian
        else:
            kwargs.update(
                kernel=sub.kernel,
                kernel_bandwidth=sub.kernel_bandwidth,
                degree=sub.degree,
                coef0=sub.coef0,
            )
        return kwargs

    # ------------------------------------------------------------ digests
    def stage_digests(self) -> dict:
        """Provenance chain: ``landmarks`` + the landmark subproblem stages.

        The ``landmarks`` digest fingerprints the full training matrix,
        the selection knobs and the chosen indices; the downstream stage
        digests (graph → laplacian → projection → solve) come from the
        subplan, whose graph stage already hashes the landmark rows — so
        two plans share a chain iff they agree on the data, the selection
        and every structural hyper-parameter. Refreshed plans additionally
        carry an ``extend`` digest chaining the child to its parent's
        landmark digest, so refresh lineage is auditable from any fitted
        artifact; root plans emit exactly the pre-lifecycle keys
        (byte-identical digests when the feature is unused).
        """
        digests = {"landmarks": self._landmark_digest}
        if self._extend_digest is not None:
            digests["extend"] = self._extend_digest
        digests.update(self.subplan.stage_digests())
        return digests

    # ------------------------------------------------------------ internal
    def _check_landmark_match(self, estimator) -> None:
        if getattr(estimator, "extension", "exact") != "nystrom":
            raise ValidationError(
                "LandmarkPlan fits estimators with extension='nystrom'; "
                f"got extension={getattr(estimator, 'extension', 'exact')!r}"
            )
        wanted = min(int(estimator.landmarks), self.X.shape[0])
        if wanted != self.n_landmarks:
            raise ValidationError(
                f"estimator wants {wanted} landmarks but this plan selected "
                f"{self.n_landmarks}"
            )
        for name, mine in (
            ("landmark_strategy", self.strategy),
            ("landmark_seed", self.seed),
        ):
            value = getattr(estimator, name)
            if value != mine:
                raise ValidationError(
                    f"estimator is incompatible with this landmark plan: "
                    f"{name}={value!r} differs from the plan's {mine!r}"
                )


def plan_for_estimator(estimator, X, w_fair, *, w_x=None):
    """The fit plan an estimator's configuration calls for.

    ``extension="nystrom"`` estimators get a :class:`LandmarkPlan`;
    everything else the exact :class:`~repro.core.SpectralFitPlan`. This is
    the single dispatch point used by ``PFR.fit``/``KernelPFR.fit``,
    :func:`repro.core.fit_path` and the experiment harness's plan caches.
    """
    if getattr(estimator, "extension", "exact") == "nystrom":
        return LandmarkPlan.for_estimator(estimator, X, w_fair, w_x=w_x)
    return SpectralFitPlan.for_estimator(estimator, X, w_fair, w_x=w_x)
