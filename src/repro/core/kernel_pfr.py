"""Kernelized PFR (paper §3.3.4 — flagged by the authors as future work).

Replaces the linear map ``Z = X V`` with ``Z = Φ(X) V`` where
``V = Σ_i α_i Φ(x_i)`` lives in the feature space of a Mercer kernel
``K_ij = k(x_i, x_j)``. The optimization becomes (Equation 8)

    K ((1-γ) L_X + γ L_F) K α = λ α

and the representation of any point set is ``Z = A ᵀK`` — in row convention,
``Z = K(X_new, X_train) A`` with ``A = [α_1 … α_d]``.

The paper evaluates only linear PFR; this module implements the extension so
the ablation benchmarks can quantify what the kernel buys on non-linearly
structured data.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_array, check_is_fitted
from ..exceptions import ValidationError
from ..graphs.knn import median_heuristic, pairwise_sq_distances
from ..ml.base import BaseEstimator, TransformerMixin
from .approx import check_extension_params, check_numeric_params, plan_for_estimator

__all__ = ["KernelPFR", "kernel_matrix"]


def kernel_matrix(
    X,
    Y=None,
    *,
    kernel: str = "rbf",
    bandwidth: float | None = None,
    degree: int = 3,
    coef0: float = 1.0,
) -> np.ndarray:
    """Mercer kernel matrix between rows of ``X`` and ``Y``.

    Supported kernels: ``"linear"`` (x·y), ``"rbf"``
    (``exp(-||x-y||²/t)``, ``t`` = median heuristic when unset) and
    ``"poly"`` (``(x·y + coef0)^degree``).

    When both inputs are float32 the kernel is computed in (and returned
    as) float32 — the kernel leg of the opt-in float32 pipeline; every
    other dtype combination computes in float64 as before.
    """
    X = check_array(X, name="X", dtype=None)
    Y = X if Y is None else check_array(Y, name="Y", dtype=None)
    work = (
        np.float32
        if (X.dtype == np.float32 and Y.dtype == np.float32)
        else np.float64
    )
    X = np.asarray(X, dtype=work)
    Y = np.asarray(Y, dtype=work)
    if X.shape[1] != Y.shape[1]:
        raise ValidationError(
            f"X and Y have different feature counts: {X.shape[1]} vs {Y.shape[1]}"
        )
    if kernel == "linear":
        return X @ Y.T
    if kernel == "rbf":
        if bandwidth is None:
            bandwidth = median_heuristic(Y)
        if bandwidth <= 0:
            raise ValidationError(f"bandwidth must be positive; got {bandwidth}")
        return np.exp(-pairwise_sq_distances(X, Y) / bandwidth)
    if kernel == "poly":
        if degree < 1:
            raise ValidationError(f"degree must be >= 1; got {degree}")
        return (X @ Y.T + coef0) ** degree
    raise ValidationError(f"unknown kernel {kernel!r}; use 'linear', 'rbf' or 'poly'")


class KernelPFR(BaseEstimator, TransformerMixin):
    """Kernelized Pairwise Fair Representation learner (Equation 8).

    Parameters mirror :class:`repro.core.PFR` plus the kernel configuration
    and the landmark-Nyström knobs (``extension``, ``landmarks``,
    ``landmark_strategy``, ``landmark_seed`` — see
    :class:`repro.core.LandmarkPlan`). The training data is retained
    (needed to kernelize new points), so memory is O(n·m) + O(n·d) for the
    exact solve and O(landmarks·m) + O(landmarks·d) for the nystrom one —
    the kernel variant is where landmarks matter most, since the exact fit
    also costs an O(n³) eigendecomposition.

    Attributes
    ----------
    alphas_ : ndarray of shape (n, d)
        Dual coefficients ``A = [α_1 … α_d]`` (rows follow ``X_fit_``).
    eigenvalues_ : ndarray of shape (d,)
        Ascending eigenvalues of ``K L K``.
    X_fit_ : ndarray of shape (n, m)
        Retained training data for out-of-sample kernel evaluation — the
        landmark rows only for nystrom fits, which is exactly the Nyström
        out-of-sample map ``Z = K(X_new, X_landmarks) A``.
    plan_digests_ : dict
        SHA-256 digests of the fit plan's stages (graph, laplacian,
        projection, solve; plus ``landmarks`` for nystrom fits) — the
        provenance trail the serving registry records in its manifests.
    landmark_indices_ : ndarray or None
        Sorted training-row indices the nystrom fit solved on; ``None``
        for exact fits.
    """

    def __init__(
        self,
        n_components: int = 2,
        gamma: float = 0.5,
        kernel: str = "rbf",
        kernel_bandwidth: float | None = None,
        degree: int = 3,
        coef0: float = 1.0,
        n_neighbors: int = 10,
        bandwidth: float | None = None,
        exclude_columns=None,
        rescale: str = "objective",
        constraint: str = "z",
        eig_solver: str = "dense",
        ridge: float = 1e-8,
        extension: str = "exact",
        landmarks: int | None = None,
        landmark_strategy: str = "kmeans++",
        landmark_seed: int = 0,
        knn_backend: str = "exact",
        knn_seed: int = 0,
        dtype: str = "float64",
    ):
        self.n_components = n_components
        self.gamma = gamma
        self.kernel = kernel
        self.kernel_bandwidth = kernel_bandwidth
        self.degree = degree
        self.coef0 = coef0
        self.n_neighbors = n_neighbors
        self.bandwidth = bandwidth
        self.exclude_columns = exclude_columns
        self.rescale = rescale
        self.constraint = constraint
        self.eig_solver = eig_solver
        self.ridge = ridge
        self.extension = extension
        self.landmarks = landmarks
        self.landmark_strategy = landmark_strategy
        self.landmark_seed = landmark_seed
        self.knn_backend = knn_backend
        self.knn_seed = knn_seed
        self.dtype = dtype

    def _kernel(self, X, Y) -> np.ndarray:
        return kernel_matrix(
            X,
            Y,
            kernel=self.kernel,
            bandwidth=self.kernel_bandwidth,
            degree=self.degree,
            coef0=self.coef0,
        )

    def fit(self, X, w_fair, *, w_x=None):
        """Learn dual coefficients ``A`` from data and a fairness graph.

        A thin driver over :class:`repro.core.SpectralFitPlan`, which also
        clamps ``n_neighbors`` to ``n - 1`` when the internal k-NN graph is
        built (matching :meth:`repro.core.PFR.fit`). To fit many (γ, d)
        operating points on the same data, build the plan once — see
        :func:`repro.core.fit_path`.
        """
        X = check_array(X, name="X", min_samples=2, dtype=None)
        check_numeric_params(self)
        check_extension_params(self)
        n = X.shape[0]
        if self.extension == "nystrom":
            # The eigenproblem runs on the landmark rows only, so they are
            # the capacity ceiling for the latent dimensionality.
            n = min(n, int(self.landmarks))
        if not 1 <= self.n_components <= n:
            raise ValidationError(
                f"n_components must be in [1, n={n}]; got {self.n_components}"
            )
        if not 0.0 <= self.gamma <= 1.0:
            raise ValidationError(f"gamma must be in [0, 1]; got {self.gamma}")
        plan = plan_for_estimator(self, X, w_fair, w_x=w_x)
        return plan.fit(self)

    def transform(self, X) -> np.ndarray:
        """Project points through the kernel: ``Z = K(X, X_fit) A``.

        The output dtype follows the fitted model — float32 models
        kernelize and project in float32.
        """
        check_is_fitted(self, "alphas_")
        X = check_array(X, name="X", dtype=self.alphas_.dtype)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features; KernelPFR was fitted with "
                f"{self.n_features_in_}"
            )
        K_new = kernel_matrix(
            X,
            self.X_fit_,
            kernel=self.kernel,
            bandwidth=self._fitted_bandwidth,
            degree=self.degree,
            coef0=self.coef0,
        )
        return K_new @ self.alphas_

    def fit_transform(self, X, w_fair=None, **fit_params):
        """Fit on ``(X, w_fair)`` and return the transformed training data."""
        if w_fair is None:
            raise ValidationError("KernelPFR.fit_transform requires the fairness graph")
        return self.fit(X, w_fair, **fit_params).transform(X)
