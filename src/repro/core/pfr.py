"""PFR — Pairwise Fair Representations (paper §3.3, the primary contribution).

PFR learns a linear map ``Z = X V`` (``V`` of shape ``(m, d)``, row-sample
convention) by minimizing

    (1-γ) Σ_ij ||z_i - z_j||² WX_ij + γ Σ_ij ||z_i - z_j||² WF_ij
    subject to  VᵀV = I                                       (Equation 5)

which reduces (§3.3.2) to taking the ``d`` smallest eigenvectors of
``Xᵀ((1-γ)L_X + γL_F)X`` (Equation 7). ``WX`` is the k-NN heat-kernel graph
over the non-protected attributes; ``WF`` is the fairness graph elicited
from pairwise judgments (:mod:`repro.graphs.fairness`).

Once fitted, :meth:`PFR.transform` maps *unseen* individuals into the fair
representation using only their data attributes — no judgments are needed at
test time, which is the property that makes the method deployable.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_array, check_is_fitted
from ..exceptions import ValidationError
from ..ml.base import BaseEstimator, TransformerMixin
from .approx import check_extension_params, check_numeric_params, plan_for_estimator

__all__ = ["PFR"]


class PFR(BaseEstimator, TransformerMixin):
    """Pairwise Fair Representation learner (linear variant).

    Parameters
    ----------
    n_components:
        Latent dimensionality ``d`` (must satisfy ``d <= m``).
    gamma:
        Trade-off ``γ ∈ [0, 1]`` between the data graph ``WX`` (γ=0) and the
        fairness graph ``WF`` (γ=1) — Equation 5.
    n_neighbors:
        ``p`` for the k-NN graph built when no ``WX`` is supplied to ``fit``.
    bandwidth:
        Heat-kernel bandwidth ``t``; ``None`` = median heuristic.
    exclude_columns:
        Indices of protected-attribute columns, excluded from the k-NN
        distance (the paper computes ``Np`` "excluding the protected
        attributes"). Only used when ``fit`` builds ``WX`` itself.
        Multi-valued protected attributes (§3.1 allows more than two
        groups) should be **one-hot encoded**: a single integer-coded
        column cannot linearly absorb non-monotone per-group shifts, so
        the linear map would be unable to align the groups.
    normalized_laplacian:
        Use symmetric-normalized Laplacians instead of combinatorial ones
        (an ablation; the paper uses combinatorial).
    rescale:
        How to balance the two graph terms before mixing with γ:

        * ``"objective"`` (default) — normalize the projected objective
          matrices ``XᵀL_XX`` and ``XᵀL_FX`` by their traces, so γ
          interpolates between the two *losses* of Equation 5 on a common
          scale. Required to reproduce the paper's smooth γ-sweeps when
          ``WF`` is orders of magnitude denser than ``WX``
          (equivalence-class cliques, quantile graphs).
        * ``"degree"`` — divide each Laplacian by its average degree.
        * ``"none"`` — the verbatim Equation 6 combination.
    constraint:
        ``"z"`` (default) enforces the paper's Equation 5 constraint
        ``ZZᵀ = I`` via the generalized eigenproblem
        ``X L Xᵀ v = λ X Xᵀ v`` (LPP-style). ``"v"`` enforces Equation 6's
        ``VᵀV = I`` via the standard eigenproblem. The two equations in the
        paper are inconsistent; ``"v"`` is pathological when X has (near-)
        collinear columns because the smallest eigenvectors then live in
        X's null space where the objective is trivially zero. See DESIGN.md.
    ridge:
        Regularization added to ``XᵀX`` in the ``"z"`` mode to keep the
        generalized problem well-posed for rank-deficient X.
    eig_solver:
        ``"auto"``, ``"dense"`` (LAPACK, the paper's choice), ``"sparse"``
        (Lanczos), ``"lobpcg"`` or ``"randomized"`` — forwarded to the
        trace-optimization layer (see the solver table in
        :mod:`repro.core.trace_optimization`; the generalized problem is
        solved dense except for lobpcg's native support).
    extension:
        ``"exact"`` (default) solves the paper's eigenproblem over all n
        training rows. ``"nystrom"`` solves it on ``landmarks`` selected
        rows only (:class:`repro.core.LandmarkPlan`) — the scaling path
        for n far beyond the paper's datasets; the learned map transforms
        arbitrary unseen rows either way.
    landmarks:
        Number of landmark rows ``m ≪ n`` for ``extension="nystrom"``
        (clamped to n, so ``landmarks >= n`` reproduces the exact solve).
    landmark_strategy:
        ``"uniform"``, ``"kmeans++"`` (default) or ``"farthest"`` — see
        :func:`repro.core.select_landmarks`.
    landmark_seed:
        Seed for the landmark selection (fits stay pure functions of the
        constructor arguments and the data).
    knn_backend:
        Neighbor-search backend for the internal ``WX`` build — ``"exact"``
        (default), ``"blocked"`` or ``"lsh"`` (see the backend table in
        :mod:`repro.graphs.knn`). Ignored when ``fit`` receives a
        precomputed ``w_x``.
    knn_seed:
        Seed for the ``"lsh"`` backend's hash tables (deterministic
        approximate graphs); ignored by the exact backends.
    dtype:
        ``"float64"`` (default) or ``"float32"`` — the arithmetic dtype of
        the whole fit pipeline (graph, Laplacian, projection, solve) and of
        ``transform`` outputs. float32 halves memory traffic at a small,
        `embedding_fidelity`-gated accuracy cost.

    Attributes
    ----------
    components_ : ndarray of shape (m, d)
        The learned orthonormal basis ``V``; columns are eigenvectors of the
        objective matrix in ascending eigenvalue order.
    eigenvalues_ : ndarray of shape (d,)
        Eigenvalues associated with each component.
    n_features_in_ : int
        Number of input features ``m`` seen during fit.
    plan_digests_ : dict
        SHA-256 digests of the fit plan's stages (graph, laplacian,
        projection, solve; plus ``landmarks`` for nystrom fits) — the
        provenance trail the serving registry records in its manifests.
    landmark_indices_ : ndarray or None
        Sorted training-row indices the nystrom fit solved on; ``None``
        for exact fits.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import PFR
    >>> from repro.graphs import between_group_quantile_graph
    >>> rng = np.random.default_rng(0)
    >>> X = rng.normal(size=(40, 5))
    >>> groups = np.repeat([0, 1], 20)
    >>> scores = rng.random(40)
    >>> WF = between_group_quantile_graph(scores, groups, n_quantiles=4)
    >>> Z = PFR(n_components=2, gamma=0.5).fit(X, WF).transform(X)
    >>> Z.shape
    (40, 2)
    """

    def __init__(
        self,
        n_components: int = 2,
        gamma: float = 0.5,
        n_neighbors: int = 10,
        bandwidth: float | None = None,
        exclude_columns=None,
        normalized_laplacian: bool = False,
        rescale: str = "objective",
        constraint: str = "z",
        ridge: float = 1e-8,
        eig_solver: str = "auto",
        extension: str = "exact",
        landmarks: int | None = None,
        landmark_strategy: str = "kmeans++",
        landmark_seed: int = 0,
        knn_backend: str = "exact",
        knn_seed: int = 0,
        dtype: str = "float64",
    ):
        self.n_components = n_components
        self.gamma = gamma
        self.n_neighbors = n_neighbors
        self.bandwidth = bandwidth
        self.exclude_columns = exclude_columns
        self.normalized_laplacian = normalized_laplacian
        self.rescale = rescale
        self.constraint = constraint
        self.ridge = ridge
        self.eig_solver = eig_solver
        self.extension = extension
        self.landmarks = landmarks
        self.landmark_strategy = landmark_strategy
        self.landmark_seed = landmark_seed
        self.knn_backend = knn_backend
        self.knn_seed = knn_seed
        self.dtype = dtype

    def _validate_hyper_parameters(self, n_features: int) -> None:
        if not 1 <= self.n_components <= n_features:
            raise ValidationError(
                f"n_components must be in [1, m={n_features}]; got {self.n_components}"
            )
        if not 0.0 <= self.gamma <= 1.0:
            raise ValidationError(f"gamma must be in [0, 1]; got {self.gamma}")
        if self.constraint not in ("z", "v"):
            raise ValidationError(
                f"constraint must be 'z' (ZZᵀ=I, Eq. 5) or 'v' (VᵀV=I, Eq. 6); "
                f"got {self.constraint!r}"
            )
        if self.rescale not in ("objective", "degree", "none"):
            raise ValidationError(
                f"rescale must be 'objective', 'degree' or 'none'; got {self.rescale!r}"
            )
        if self.ridge < 0:
            raise ValidationError(f"ridge must be non-negative; got {self.ridge}")
        check_numeric_params(self)
        check_extension_params(self)

    def fit(self, X, w_fair, *, w_x=None):
        """Learn the fair basis ``V`` from data and a fairness graph.

        A thin driver over :class:`repro.core.SpectralFitPlan`: the four
        fit stages (graph, Laplacian, projection, solve) run once for this
        (γ, d) operating point. To fit many operating points on the same
        data, build the plan once — see :func:`repro.core.fit_path`.

        Parameters
        ----------
        X:
            Feature matrix of shape ``(n, m)``.
        w_fair:
            Fairness-graph adjacency ``WF`` of shape ``(n, n)`` (sparse or
            dense, symmetric, non-negative). May be all-zero — PFR then
            degrades gracefully to Laplacian-eigenmap dimensionality
            reduction on ``WX``.
        w_x:
            Optional precomputed data-similarity graph ``WX``. When omitted,
            the k-NN heat-kernel graph is built from ``X`` using the
            constructor's ``n_neighbors`` / ``bandwidth`` /
            ``exclude_columns``.
        """
        X = check_array(X, name="X", min_samples=2, dtype=None)
        self._validate_hyper_parameters(X.shape[1])
        plan = plan_for_estimator(self, X, w_fair, w_x=w_x)
        return plan.fit(self)

    def transform(self, X) -> np.ndarray:
        """Project (possibly unseen) individuals: ``Z = X V``, shape ``(n, d)``.

        The output dtype follows the fitted components — float32 models
        transform in (and return) float32.
        """
        check_is_fitted(self, "components_")
        X = check_array(X, name="X", dtype=self.components_.dtype)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features; PFR was fitted with {self.n_features_in_}"
            )
        return X @ self.components_

    def fit_transform(self, X, w_fair=None, **fit_params):
        """Fit on ``(X, w_fair)`` and return the transformed training data."""
        if w_fair is None:
            raise ValidationError("PFR.fit_transform requires the fairness graph w_fair")
        return self.fit(X, w_fair, **fit_params).transform(X)

    def objective_value(self, X, W) -> float:
        """Pairwise loss ``Σ_ij ||z_i - z_j||² W_ij`` of the fitted map on graph ``W``.

        Useful for inspecting how much of each graph's structure the learned
        representation preserves (Equations 3–4 evaluated at the optimum).
        """
        from .trace_optimization import pairwise_loss

        return pairwise_loss(self.transform(X), W)
