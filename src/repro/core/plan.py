"""Staged spectral fit pipeline: precompute once, sweep γ and d for free.

The paper's headline experiments are γ-sweeps (Figures 4, 7, 10) and
accuracy/fairness trade-off grids, yet a naive sweep refits from scratch at
every operating point even though only the scalar mix weight γ changes.
This module decomposes :meth:`repro.core.PFR.fit` (and the kernel variant)
into four explicit stages whose outputs are immutable :class:`Precomputed`
bundles, so everything upstream of the γ-mix is shared across a sweep:

1. **Graph stage** — build or validate the data graph ``WX`` (paper §3.1,
   the k-NN heat-kernel graph of Equation 1 computed excluding the
   protected attributes) and the fairness graph ``WF`` (§3.2).
2. **Laplacian stage** — the combinatorial (or normalized) Laplacians
   ``L_X = D_X - WX`` and ``L_F = D_F - WF`` entering Equations 5–6.
3. **Projection stage** — the γ-independent quadratic forms of the trace
   objective. Linear PFR (Equation 7): ``M_X = Xᵀ L_X X``,
   ``M_F = Xᵀ L_F X`` and the constraint matrix ``B = Xᵀ X`` of the
   ``ZZᵀ = I`` generalized problem. Kernel PFR (Equation 8): the analogues
   ``K L K`` (constraint ``'v'``) or ``Φᵀ L Φ`` in the kernel's principal
   subspace (constraint ``'z'``), including the one-off ``O(n³)``
   eigendecomposition of ``K`` itself. Per-term rescaling (trace or
   degree) is folded in here, so stage 4 sees ready-to-mix matrices.
4. **Solve stage** — mix ``M(γ) = (1-γ) M_X + γ M_F`` (Equations 5–6
   reduce to this because the objective is linear in the Laplacian) and
   take the ``d`` smallest eigenpairs (Equations 7–8). Solutions are
   cached per γ at the largest ``d`` requested, so a sweep over ``d``
   solves once at ``d_max`` and slices eigenpairs (guarded by an eigengap
   check so a slice never splits a degenerate cluster — sliced results
   stay numerically equal to independent fits).

For a sweep, stages 1–3 run once; each γ costs only one dense mix plus one
small eigensolve, which is what lets :func:`fit_path` beat a naive refit
loop by well over the 3× acceptance floor (see
``benchmarks/bench_fit_path.py``).

Every stage also carries a SHA-256 digest chained from its inputs, giving
each fitted estimator an auditable provenance trail (``plan_digests_``)
that the serving registry records in its manifests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from .._validation import check_array, check_symmetric
from ..exceptions import ValidationError
from ..graphs.knn import KNN_BACKENDS, knn_graph, median_heuristic
from ..graphs.laplacian import laplacian
from ..obs.metrics import get_registry
from ..obs.trace import span
from .trace_optimization import (
    EIG_SOLVERS,
    objective_matrix,
    sign_normalize,
    smallest_eigenvectors,
)

__all__ = ["Precomputed", "SpectralFitPlan", "fit_path"]


def _hash_array(digest, array) -> None:
    """Feed one (dense or sparse) array into a hashlib digest."""
    if sp.issparse(array):
        csr = array.tocsr()
        if not csr.has_sorted_indices:
            csr = csr.sorted_indices()
        digest.update(b"sparse")
        digest.update(repr(csr.shape).encode())
        for part in (csr.data, csr.indices, csr.indptr):
            part = np.ascontiguousarray(part)
            digest.update(part.dtype.str.encode())
            digest.update(part.tobytes())
        return
    dense = np.ascontiguousarray(np.asarray(array))
    digest.update(b"dense")
    digest.update(dense.dtype.str.encode())
    digest.update(repr(dense.shape).encode())
    digest.update(dense.tobytes())


def _stage_digest(stage: str, params: dict, arrays: dict | None = None) -> str:
    """Deterministic SHA-256 fingerprint of one stage's inputs."""
    digest = hashlib.sha256()
    digest.update(stage.encode())
    digest.update(repr(sorted(params.items())).encode())
    for name in sorted(arrays or {}):
        digest.update(name.encode())
        _hash_array(digest, arrays[name])
    return digest.hexdigest()


@dataclass(frozen=True)
class Precomputed:
    """Immutable output bundle of one pipeline stage.

    Attributes
    ----------
    stage:
        Stage name: ``"graph"``, ``"laplacian"`` or ``"projection"``.
    digest:
        SHA-256 fingerprint of the stage's inputs, chained through the
        upstream stage's digest — two plans agree on a digest iff they
        agree on everything that influences the stage's output.
    data:
        Read-only mapping of the stage's named outputs.
    """

    stage: str
    digest: str
    data: Mapping[str, Any] = field(repr=False)

    def __post_init__(self):
        object.__setattr__(self, "data", MappingProxyType(dict(self.data)))

    def __getitem__(self, key: str):
        return self.data[key]


class SpectralFitPlan:
    """Reusable precomputation pipeline behind ``PFR.fit`` / ``KernelPFR.fit``.

    A plan is bound to one training set ``(X, WF[, WX])`` and one set of
    *structural* hyper-parameters (graph construction, Laplacian flavor,
    rescale mode, constraint, kernel configuration). The *sweep*
    hyper-parameters — γ and the latent dimensionality ``d`` — are free:
    :meth:`solve` answers any (γ, d) point by reusing all upstream stages,
    and :meth:`fit` populates a compatible estimator in place.

    Stages materialize lazily on first access and are exposed as
    :class:`Precomputed` bundles via :attr:`graph`, :attr:`laplacians` and
    :attr:`projection`.

    Use :meth:`for_estimator` (or the :class:`repro.core.PFR` /
    :class:`repro.core.KernelPFR` constructors' parameters mirrored here
    directly) to build one; use :func:`fit_path` for the common
    γ-by-dimension sweep.
    """

    def __init__(
        self,
        X,
        w_fair,
        *,
        kind: str = "linear",
        w_x=None,
        n_neighbors: int = 10,
        bandwidth: float | None = None,
        exclude_columns=None,
        normalized_laplacian: bool = False,
        rescale: str = "objective",
        constraint: str = "z",
        ridge: float = 1e-8,
        eig_solver: str = "auto",
        kernel: str = "rbf",
        kernel_bandwidth: float | None = None,
        degree: int = 3,
        coef0: float = 1.0,
        knn_backend: str = "exact",
        knn_seed: int = 0,
        dtype: str = "float64",
    ):
        if kind not in ("linear", "kernel"):
            raise ValidationError(f"kind must be 'linear' or 'kernel'; got {kind!r}")
        if rescale not in ("objective", "degree", "none"):
            raise ValidationError(
                f"rescale must be 'objective', 'degree' or 'none'; got {rescale!r}"
            )
        if constraint not in ("z", "v"):
            raise ValidationError(
                f"constraint must be 'z' (ZZᵀ=I, Eq. 5) or 'v' (VᵀV=I, Eq. 6); "
                f"got {constraint!r}"
            )
        if ridge < 0:
            raise ValidationError(f"ridge must be non-negative; got {ridge}")
        if eig_solver not in EIG_SOLVERS:
            raise ValidationError(
                f"eig_solver must be one of {EIG_SOLVERS}; got {eig_solver!r}"
            )
        if knn_backend not in KNN_BACKENDS:
            raise ValidationError(
                f"knn_backend must be one of {KNN_BACKENDS}; got {knn_backend!r}"
            )
        try:
            dtype = np.dtype(dtype).name
        except TypeError as exc:
            raise ValidationError(f"unrecognized dtype {dtype!r}") from exc
        if dtype not in ("float64", "float32"):
            raise ValidationError(
                f"dtype must be 'float64' or 'float32'; got {dtype!r}"
            )
        np_dtype = np.dtype(dtype)

        X = check_array(X, name="X", min_samples=2, dtype=np_dtype)
        n = X.shape[0]
        w_fair = check_symmetric(w_fair, name="w_fair", dtype=np_dtype)
        # Sparse inputs keep their dtype on the default path (digest
        # stability); only the opt-in float32 pipeline casts them down.
        if sp.issparse(w_fair) and np_dtype == np.float32 and w_fair.dtype != np_dtype:
            w_fair = w_fair.astype(np_dtype)
        if w_fair.shape[0] != n:
            raise ValidationError(
                f"w_fair has {w_fair.shape[0]} nodes but X has {n} samples"
            )
        if w_x is not None:
            w_x = check_symmetric(w_x, name="w_x", dtype=np_dtype)
            if sp.issparse(w_x) and np_dtype == np.float32 and w_x.dtype != np_dtype:
                w_x = w_x.astype(np_dtype)
            if w_x.shape[0] != n:
                raise ValidationError(
                    f"w_x has {w_x.shape[0]} nodes but X has {n} samples"
                )

        self.X = X
        self.w_fair = w_fair
        self.kind = kind
        self.n_neighbors = n_neighbors
        self.bandwidth = bandwidth
        self.exclude_columns = exclude_columns
        self.normalized_laplacian = bool(normalized_laplacian) if kind == "linear" else False
        self.rescale = rescale
        self.constraint = constraint
        self.ridge = ridge
        self.eig_solver = eig_solver
        self.kernel = kernel
        self.kernel_bandwidth = kernel_bandwidth
        self.degree = degree
        self.coef0 = coef0
        self.knn_backend = knn_backend
        self.knn_seed = int(knn_seed)
        self.dtype = dtype
        self._np_dtype = np_dtype

        self._w_x_input = w_x
        # Set by LandmarkPlan on its internal subplan: an exact plan must
        # not silently fit an estimator that asked for extension="nystrom".
        self._landmark_driver = False
        self._graph: Precomputed | None = None
        self._laplacians: Precomputed | None = None
        self._projection: Precomputed | None = None
        # γ -> (eigenvalues, eigenvectors) at the largest d solved so far.
        self._solves: dict[float, tuple[np.ndarray, np.ndarray]] = {}
        # (γ, d) -> dedicated solves where slicing would cut a degenerate
        # eigenvalue cluster (see _slice_is_safe).
        self._exact_solves: dict[tuple[float, int], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------ factory
    @classmethod
    def for_estimator(cls, estimator, X, w_fair, *, w_x=None) -> "SpectralFitPlan":
        """Build the plan matching an (unfitted) PFR or KernelPFR's structure.

        The estimator's γ and ``n_components`` are ignored — those are the
        sweep axes the plan exists to make cheap.
        """
        from .kernel_pfr import KernelPFR
        from .pfr import PFR

        if isinstance(estimator, KernelPFR):
            return cls(
                X,
                w_fair,
                kind="kernel",
                w_x=w_x,
                n_neighbors=estimator.n_neighbors,
                bandwidth=estimator.bandwidth,
                exclude_columns=estimator.exclude_columns,
                rescale=estimator.rescale,
                constraint=estimator.constraint,
                ridge=estimator.ridge,
                eig_solver=estimator.eig_solver,
                kernel=estimator.kernel,
                kernel_bandwidth=estimator.kernel_bandwidth,
                degree=estimator.degree,
                coef0=estimator.coef0,
                knn_backend=estimator.knn_backend,
                knn_seed=estimator.knn_seed,
                dtype=estimator.dtype,
            )
        if isinstance(estimator, PFR):
            return cls(
                X,
                w_fair,
                kind="linear",
                w_x=w_x,
                n_neighbors=estimator.n_neighbors,
                bandwidth=estimator.bandwidth,
                exclude_columns=estimator.exclude_columns,
                normalized_laplacian=estimator.normalized_laplacian,
                rescale=estimator.rescale,
                constraint=estimator.constraint,
                ridge=estimator.ridge,
                eig_solver=estimator.eig_solver,
                knn_backend=estimator.knn_backend,
                knn_seed=estimator.knn_seed,
                dtype=estimator.dtype,
            )
        raise ValidationError(
            f"for_estimator expects a PFR or KernelPFR; got {type(estimator).__name__}"
        )

    # ------------------------------------------------------------- stages
    @property
    def graph(self) -> Precomputed:
        """Stage 1 — the validated/built graphs ``WX`` and ``WF`` (§3.1–3.2)."""
        if self._graph is None:
            with span("plan.graph", kind=self.kind, n=int(self.X.shape[0])):
                self._graph = self._graph_stage()
        return self._graph

    @property
    def laplacians(self) -> Precomputed:
        """Stage 2 — the Laplacians ``L_X`` and ``L_F`` of Equations 5–6."""
        if self._laplacians is None:
            with span("plan.laplacian", kind=self.kind):
                self._laplacians = self._laplacian_stage()
        return self._laplacians

    @property
    def projection(self) -> Precomputed:
        """Stage 3 — γ-independent objective/constraint matrices (Eqs. 7–8)."""
        if self._projection is None:
            with span("plan.projection", kind=self.kind,
                      constraint=self.constraint):
                self._projection = self._projection_stage()
        return self._projection

    @property
    def d_max(self) -> int:
        """Largest latent dimensionality this plan can solve for."""
        return int(self.projection["d_max"])

    def _graph_stage(self) -> Precomputed:
        n = self.X.shape[0]
        w_x = self._w_x_input
        if w_x is None:
            w_x = knn_graph(
                self.X,
                n_neighbors=min(self.n_neighbors, n - 1),
                bandwidth=self.bandwidth,
                exclude=self.exclude_columns,
                backend=self.knn_backend,
                backend_options=(
                    {"seed": self.knn_seed} if self.knn_backend == "lsh" else None
                ),
                dtype=self._np_dtype,
            )
        params = {"precomputed_wx": self._w_x_input is not None}
        if self._w_x_input is None:
            # The k-NN settings influence the output only when the graph is
            # actually built here; hashing them for a precomputed w_x would
            # give byte-identical stage outputs different digests.
            params.update(
                n_neighbors=int(min(self.n_neighbors, n - 1)),
                bandwidth=self.bandwidth,
                exclude_columns=(
                    None
                    if self.exclude_columns is None
                    else tuple(int(c) for c in self.exclude_columns)
                ),
            )
            # New knobs enter the digest only when they leave the historical
            # default — default-path digests must stay byte-stable vs. seed.
            if self.knn_backend != "exact":
                params["backend"] = self.knn_backend
                params["knn_seed"] = self.knn_seed
        if self.dtype != "float64":
            params["dtype"] = self.dtype
        digest = _stage_digest(
            "graph", params, {"X": self.X, "w_x": w_x, "w_fair": self.w_fair}
        )
        return Precomputed("graph", digest, {"w_x": w_x, "w_fair": self.w_fair})

    def _laplacian_stage(self) -> Precomputed:
        graph = self.graph
        L_x = laplacian(graph["w_x"], normalized=self.normalized_laplacian)
        L_f = laplacian(graph["w_fair"], normalized=self.normalized_laplacian)
        digest = _stage_digest(
            "laplacian",
            {"normalized": self.normalized_laplacian, "upstream": graph.digest},
        )
        return Precomputed("laplacian", digest, {"L_x": L_x, "L_f": L_f})

    def _projection_stage(self) -> Precomputed:
        lap = self.laplacians
        data = (
            self._linear_projection(lap)
            if self.kind == "linear"
            else self._kernel_projection(lap)
        )
        params = {
            "kind": self.kind,
            "rescale": self.rescale,
            "constraint": self.constraint,
            "ridge": self.ridge,
            "upstream": lap.digest,
        }
        if self.kind == "kernel":
            params.update(
                kernel=self.kernel,
                kernel_bandwidth=data["fitted_bandwidth"],
                degree=self.degree,
                coef0=self.coef0,
            )
        return Precomputed("projection", _stage_digest("projection", params), data)

    def _scaled_laplacian(self, L) -> sp.csr_matrix:
        """Per-graph ``"degree"`` rescaling (matches ``combine_laplacians``)."""
        mean_degree = L.diagonal().mean()
        return L / mean_degree if mean_degree > 0 else L

    def _trace_normalized(self, M: np.ndarray) -> np.ndarray:
        """Per-graph ``"objective"`` rescaling: unit-trace quadratic form."""
        trace = np.trace(M)
        return M / trace if trace > 0 else M

    def _linear_projection(self, lap: Precomputed) -> dict:
        X = self.X
        m = X.shape[1]
        L_x, L_f = lap["L_x"], lap["L_f"]
        if self.rescale == "objective":
            M_x = self._trace_normalized(objective_matrix(X, L_x))
            M_f = self._trace_normalized(objective_matrix(X, L_f))
        elif self.rescale == "degree":
            M_x = objective_matrix(X, self._scaled_laplacian(L_x))
            M_f = objective_matrix(X, self._scaled_laplacian(L_f))
        else:
            M_x = objective_matrix(X, L_x)
            M_f = objective_matrix(X, L_f)
        data = {"M_x": M_x, "M_f": M_f, "d_max": m, "mix_ridge": 0.0,
                "symmetrize_mix": False, "whiten": None,
                "fitted_bandwidth": None}
        if self.constraint == "z":
            G = X.T @ X
            data["B"] = G + self.ridge * np.trace(G) / m * np.eye(m, dtype=G.dtype)
        else:
            data["B"] = None
        return data

    def _kernel_projection(self, lap: Precomputed) -> dict:
        from .kernel_pfr import kernel_matrix

        X = self.X
        n = X.shape[0]
        if self.kernel == "rbf" and self.kernel_bandwidth is None:
            # Freeze the data-dependent bandwidth now so every estimator
            # fitted from this plan kernelizes new points identically.
            fitted_bandwidth = median_heuristic(X)
        else:
            fitted_bandwidth = self.kernel_bandwidth
        K = kernel_matrix(
            X,
            X,
            kernel=self.kernel,
            bandwidth=fitted_bandwidth,
            degree=self.degree,
            coef0=self.coef0,
        )
        L_x, L_f = lap["L_x"], lap["L_f"]

        if self.constraint == "z":
            # Work in K's principal subspace: with K = U S Uᵀ and feature
            # coordinates Φ = U_r √S_r, kernel PFR reduces to *linear* PFR
            # on Φ under the ZZᵀ = I constraint. This keeps the eigensolver
            # out of K's (huge, uninformative) near-null space.
            spectrum, U = scipy.linalg.eigh(0.5 * (K + K.T))
            keep = spectrum > max(spectrum.max(), 0.0) * 1e-10
            if not keep.any():
                raise ValidationError("kernel matrix is numerically zero")
            S = spectrum[keep]
            U = U[:, keep]
            rank = int(keep.sum())
            Phi = U * np.sqrt(S)  # (n, r): K = Phi Phiᵀ

            def projected(L):
                M_part = Phi.T @ (L @ Phi)
                if self.rescale == "objective":
                    return self._trace_normalized(M_part)
                return M_part

            if self.rescale == "degree":
                M_x = Phi.T @ (self._scaled_laplacian(L_x) @ Phi)
                M_f = Phi.T @ (self._scaled_laplacian(L_f) @ Phi)
            else:
                M_x = projected(L_x)
                M_f = projected(L_f)
            # The ZZᵀ = I constraint matrix B = diag(S) + ridge·c·I is
            # diagonal, so the generalized problem M v = λ B v whitens to a
            # *standard* one once: C = B^{-1/2} M B^{-1/2}, v = B^{-1/2} u.
            # Whitening commutes with the γ-mix (both are linear), and per-γ
            # a standard subset eigensolve is ~2× cheaper than repeating the
            # generalized reduction.
            whiten = 1.0 / np.sqrt(S + self.ridge * max(float(S.mean()), 1.0))
            M_x = M_x * whiten[:, None] * whiten[None, :]
            M_f = M_f * whiten[:, None] * whiten[None, :]
            return {
                "M_x": M_x,
                "M_f": M_f,
                "B": None,
                "whiten": whiten,
                "d_max": rank,
                "mix_ridge": 0.0,
                "symmetrize_mix": True,
                "kernel_spectrum": S,
                "kernel_basis": U,
                "fitted_bandwidth": fitted_bandwidth,
            }

        # constraint == "v": the verbatim Equation 8 operator K L K.
        def projected_v(L):
            M_part = K @ (L @ K)
            if self.rescale == "objective":
                return self._trace_normalized(M_part)
            return M_part

        if self.rescale == "degree":
            M_x = K @ (self._scaled_laplacian(L_x) @ K)
            M_f = K @ (self._scaled_laplacian(L_f) @ K)
        else:
            M_x = projected_v(L_x)
            M_f = projected_v(L_f)
        # K L K is rank-deficient whenever K is; a tiny ridge keeps the
        # eigensolver away from the exact null space.
        return {
            "M_x": M_x,
            "M_f": M_f,
            "B": None,
            "whiten": None,
            "d_max": n,
            "mix_ridge": float(self.ridge),
            "symmetrize_mix": True,
            "fitted_bandwidth": fitted_bandwidth,
        }

    # -------------------------------------------------------------- solve
    def _mixed(self, gamma: float) -> np.ndarray:
        proj = self.projection
        M = (1.0 - gamma) * proj["M_x"] + gamma * proj["M_f"]
        if proj["symmetrize_mix"]:
            M = 0.5 * (M + M.T)
        if proj["mix_ridge"]:
            M = M + proj["mix_ridge"] * np.eye(M.shape[0], dtype=M.dtype)
        return M

    @staticmethod
    def _slice_is_safe(eigenvalues: np.ndarray, d: int) -> bool:
        """Whether the first ``d`` eigenpairs of a larger solve are reusable.

        Slicing is exact only when the cut falls in a genuine eigengap: if
        λ_{d-1} ≈ λ_d the eigensolver may return *any* orthonormal basis of
        the degenerate cluster, and a dedicated d-solve could pick a
        different one. A relative gap of 1e-6 keeps the perturbation of the
        sliced eigenvectors far below the 1e-8 equivalence the sweep API
        guarantees against independent fits.
        """
        gap = eigenvalues[d] - eigenvalues[d - 1]
        scale = max(float(np.abs(eigenvalues).max()), 1e-12)
        return gap > 1e-6 * scale

    def solve(self, gamma: float, d: int) -> tuple[np.ndarray, np.ndarray]:
        """Stage 4 — eigenpairs of the γ-mixed objective (Equations 7–8).

        Returns the ``d`` ascending eigenvalues and primal eigenvectors
        (``V`` for linear PFR; subspace coordinates for kernel PFR — use
        :meth:`fit` to obtain dual coefficients). Solutions are cached per
        γ at the largest ``d`` requested so far; asking for a smaller ``d``
        afterwards slices the cached eigenpairs when the cut falls in a
        clear eigengap, and performs (and memoizes) a dedicated solve when
        it would split a degenerate cluster — so every answer matches an
        independent ``fit()`` at that operating point.
        """
        gamma = float(gamma)
        if not 0.0 <= gamma <= 1.0:
            raise ValidationError(f"gamma must be in [0, 1]; got {gamma}")
        proj = self.projection
        d = int(d)
        d_max = int(proj["d_max"])
        if not 1 <= d <= d_max:
            if self.kind == "kernel" and self.constraint == "z":
                raise ValidationError(
                    f"n_components={d} exceeds the kernel rank {d_max}"
                )
            raise ValidationError(f"d must be in [1, {d_max}]; got {d}")

        # Per-γ cache accounting: a "hit" reuses previously computed
        # eigenpairs (slice or memoized exact solve), a "miss" pays an
        # eigensolve. Counters only — they never influence which path runs.
        registry = get_registry()
        gamma_label = f"{gamma:g}"
        cached = self._solves.get(gamma)
        if cached is not None and cached[0].shape[0] > d:
            if self._slice_is_safe(cached[0], d):
                registry.inc("plan.solve_cache.hits", gamma=gamma_label)
                eigenvalues, vectors = cached
                return eigenvalues[:d].copy(), vectors[:, :d].copy()
            exact = self._exact_solves.get((gamma, d))
            if exact is None:
                registry.inc("plan.solve_cache.misses", gamma=gamma_label)
                exact = self._solve_fresh(gamma, d)
                self._exact_solves[(gamma, d)] = exact
            else:
                registry.inc("plan.solve_cache.hits", gamma=gamma_label)
            eigenvalues, vectors = exact
            return eigenvalues.copy(), vectors.copy()

        if cached is None or cached[0].shape[0] < d:
            registry.inc("plan.solve_cache.misses", gamma=gamma_label)
            cached = self._solve_fresh(gamma, d)
            self._solves[gamma] = cached
        else:
            registry.inc("plan.solve_cache.hits", gamma=gamma_label)
        eigenvalues, vectors = cached
        return eigenvalues[:d].copy(), vectors[:, :d].copy()

    def _solve_fresh(self, gamma: float, d: int) -> tuple[np.ndarray, np.ndarray]:
        with span("plan.solve", kind=self.kind, gamma=float(gamma), d=int(d)):
            return self._solve_fresh_inner(gamma, d)

    def _solve_fresh_inner(
        self, gamma: float, d: int
    ) -> tuple[np.ndarray, np.ndarray]:
        proj = self.projection
        M = self._mixed(gamma)
        if proj["B"] is not None:
            # smallest_eigenvectors solves B-problems dense except for
            # lobpcg's native generalized support; randomized documents the
            # dense fallback.
            return smallest_eigenvectors(M, d, B=proj["B"], solver=self.eig_solver)
        whiten = proj["whiten"]
        if whiten is not None:
            # Pre-whitened generalized problem (kernel ZZᵀ = I): solve the
            # standard problem, then map back to B-orthonormal vectors. The
            # iterative solvers apply here too; "auto"/"sparse" keep the
            # historical dense subset solve (the whitened mix is dense).
            solver = (
                self.eig_solver
                if self.eig_solver in ("lobpcg", "randomized")
                else "dense"
            )
            eigenvalues, U = smallest_eigenvectors(M, d, solver=solver)
            return eigenvalues, sign_normalize(U * whiten[:, None])
        return smallest_eigenvectors(M, d, solver=self.eig_solver)

    # ---------------------------------------------------------- estimators
    def fit(self, estimator):
        """Populate ``estimator``'s fitted state from this plan (thin driver).

        The estimator must be structurally compatible (same graph, rescale,
        constraint and kernel configuration); only its ``gamma`` and
        ``n_components`` select the operating point. Returns the estimator.
        """
        from .kernel_pfr import KernelPFR
        from .pfr import PFR

        if self.kind == "linear":
            if not isinstance(estimator, PFR):
                raise ValidationError(
                    f"a linear plan fits PFR estimators; got {type(estimator).__name__}"
                )
            self._check_structural_match(estimator)
            estimator._validate_hyper_parameters(self.X.shape[1])
            eigenvalues, V = self.solve(estimator.gamma, estimator.n_components)
            estimator.components_ = V
            estimator.eigenvalues_ = eigenvalues
            estimator.n_features_in_ = self.X.shape[1]
            estimator.plan_digests_ = self.stage_digests()
            # Documented contract: None for exact fits (LandmarkPlan.fit
            # overwrites these with the selected indices and rows).
            estimator.landmark_indices_ = None
            estimator.landmark_X_ = None
            return estimator

        if not isinstance(estimator, KernelPFR):
            raise ValidationError(
                f"a kernel plan fits KernelPFR estimators; got {type(estimator).__name__}"
            )
        self._check_structural_match(estimator)
        n = self.X.shape[0]
        if not 1 <= estimator.n_components <= n:
            raise ValidationError(
                f"n_components must be in [1, n={n}]; got {estimator.n_components}"
            )
        if not 0.0 <= estimator.gamma <= 1.0:
            raise ValidationError(
                f"gamma must be in [0, 1]; got {estimator.gamma}"
            )
        proj = self.projection
        eigenvalues, V = self.solve(estimator.gamma, estimator.n_components)
        if self.constraint == "z":
            # Z = Phi V = K (U S^{-1/2} V): fold the basis change into the
            # duals, exactly as the in-place fit does.
            U = proj["kernel_basis"]
            S = proj["kernel_spectrum"]
            A = U @ (V / np.sqrt(S)[:, None])
        else:
            A = V
        estimator._fitted_bandwidth = proj["fitted_bandwidth"]
        estimator.alphas_ = A
        estimator.eigenvalues_ = eigenvalues
        estimator.X_fit_ = self.X
        estimator.n_features_in_ = self.X.shape[1]
        estimator.plan_digests_ = self.stage_digests()
        estimator.landmark_indices_ = None
        estimator.landmark_X_ = None
        return estimator

    def _structural_params(self) -> dict:
        params = {
            "rescale": self.rescale,
            "constraint": self.constraint,
            "ridge": self.ridge,
            "eig_solver": self.eig_solver,
            "dtype": self.dtype,
        }
        if self._w_x_input is None:
            params.update(
                n_neighbors=self.n_neighbors,
                bandwidth=self.bandwidth,
                exclude_columns=(
                    None
                    if self.exclude_columns is None
                    else tuple(int(c) for c in self.exclude_columns)
                ),
                knn_backend=self.knn_backend,
                knn_seed=self.knn_seed,
            )
        if self.kind == "linear":
            params["normalized_laplacian"] = self.normalized_laplacian
        else:
            params.update(
                kernel=self.kernel,
                kernel_bandwidth=self.kernel_bandwidth,
                degree=self.degree,
                coef0=self.coef0,
            )
        return params

    def _check_structural_match(self, estimator) -> None:
        if (
            getattr(estimator, "extension", "exact") == "nystrom"
            and not self._landmark_driver
        ):
            raise ValidationError(
                "estimator has extension='nystrom'; fit it through "
                "repro.core.LandmarkPlan (or plan_for_estimator), not a "
                "bare SpectralFitPlan"
            )
        mine = self._structural_params()
        for name, expected in mine.items():
            if name == "normalized_laplacian" and self.kind == "kernel":
                continue
            value = getattr(estimator, name, None)
            if name == "exclude_columns" and value is not None:
                value = tuple(int(c) for c in value)
            if name == "dtype" and value is not None:
                value = np.dtype(value).name
            if name == "knn_seed" and value is not None:
                value = int(value)
            if value != expected:
                raise ValidationError(
                    f"estimator is structurally incompatible with this plan: "
                    f"{name}={value!r} differs from the plan's {expected!r}"
                )

    # ------------------------------------------------------------ digests
    def stage_digests(self) -> dict:
        """Chained SHA-256 digests of every stage — the provenance record.

        Keys: ``graph``, ``laplacian``, ``projection``, ``solve``. The
        ``solve`` digest fingerprints the solver configuration (constraint,
        rescale, ridge, eigensolver) on top of the projection digest; it
        deliberately excludes γ and ``d``, which are per-estimator and
        already recorded as hyper-parameters in registry manifests.
        """
        projection = self.projection
        solve = _stage_digest(
            "solve",
            {
                "kind": self.kind,
                "constraint": self.constraint,
                "rescale": self.rescale,
                "ridge": self.ridge,
                "eig_solver": self.eig_solver,
                "upstream": projection.digest,
            },
        )
        return {
            "graph": self.graph.digest,
            "laplacian": self.laplacians.digest,
            "projection": projection.digest,
            "solve": solve,
        }


def fit_path(
    X,
    w_fair,
    *,
    gammas=(0.0, 0.25, 0.5, 0.75, 1.0),
    dims=None,
    estimator=None,
    w_x=None,
) -> list:
    """Fit a whole γ × d grid of PFR estimators from one shared plan.

    Builds a :class:`SpectralFitPlan` once, solves each γ at the largest
    requested dimensionality, and slices eigenpairs for the smaller dims —
    every estimator returned is numerically interchangeable with an
    independent ``fit()`` at the same operating point, at a fraction of
    the cost (see ``benchmarks/bench_fit_path.py``).

    Parameters
    ----------
    X, w_fair, w_x:
        Training inputs, exactly as :meth:`repro.core.PFR.fit` takes them.
    gammas:
        γ grid (Figures 4, 7, 10 sweep this axis).
    dims:
        Latent dimensionalities to return per γ; ``None`` uses the
        template estimator's ``n_components``.
    estimator:
        Template :class:`~repro.core.PFR` or
        :class:`~repro.core.KernelPFR` supplying the structural
        hyper-parameters; ``None`` means a default ``PFR()``. The template
        itself is never mutated — each grid point gets a fresh clone.

    Returns
    -------
    list
        Fitted estimators in γ-major order: ``[(γ₀,d₀), (γ₀,d₁), …,
        (γ₁,d₀), …]`` following the input order of both grids.
    """
    from ..ml.base import clone
    from .approx import plan_for_estimator
    from .pfr import PFR

    template = PFR() if estimator is None else estimator
    gammas = [float(g) for g in np.atleast_1d(np.asarray(gammas, dtype=np.float64))]
    if not gammas:
        raise ValidationError("fit_path needs at least one gamma")
    if dims is None:
        dims = [int(template.n_components)]
    else:
        dims = [int(d) for d in np.atleast_1d(np.asarray(dims))]
    if not dims:
        raise ValidationError("fit_path needs at least one dimensionality")
    if min(dims) < 1:
        raise ValidationError(f"dims must be >= 1; got {sorted(dims)[0]}")

    # Landmark templates (extension="nystrom") sweep on a LandmarkPlan so
    # even 100k-row fits pay the selection + landmark precomputation once.
    plan = plan_for_estimator(template, X, w_fair, w_x=w_x)
    d_max = max(dims)
    fitted = []
    for gamma in gammas:
        # One solve at d_max per γ; smaller dims below slice its eigenpairs.
        plan.solve(gamma, d_max)
        for d in dims:
            model = clone(template).set_params(gamma=gamma, n_components=d)
            plan.fit(model)
            fitted.append(model)
    return fitted
