"""Trace-minimization layer shared by linear and kernel PFR (paper §3.3.2–3.3.3).

Both PFR variants reduce to: find the ``d`` eigenvectors with smallest
eigenvalues of a symmetric positive semi-definite matrix

    linear PFR:  M = X ((1-γ) L_X + γ L_F) Xᵀ      (m × m, Equation 7)
    kernel PFR:  M = K ((1-γ) L_X + γ L_F) K        (n × n, Equation 8)

(using the paper's column-sample convention; this library stores samples as
rows, so the linear case is ``Xᵀ L X``). The paper solves this with LAPACK
via scipy; we expose several solvers behind one function, plus helpers to
assemble the objective matrix and to evaluate the pairwise loss
``Σ_ij ||z_i - z_j||² W_ij = 2·Tr(Zᵀ L Z)`` used by tests and benchmarks.

Eigensolvers
------------
``smallest_eigenvectors`` dispatches on ``solver=``:

==============  =========================  ===================================
solver          complexity (k×k matrix,    accuracy guarantee
                d eigenpairs)
==============  =========================  ===================================
``dense``       O(k³) LAPACK ``eigh``      Exact to machine precision (the
                with index subsetting      paper's choice). **Default** for
                                           dense / small inputs via ``auto``.
``sparse``      O(nnz·iters) Lanczos       Exact to ARPACK tolerance;
                ``eigsh`` on the shifted   ``auto`` picks it for large sparse
                operator                   inputs.
``lobpcg``      O(nnz·iters·d) block       Iterative, tolerance-bounded;
                preconditioned CG          supports the generalized ``B``
                                           problem natively. Falls back to
                                           ``dense`` when ``k`` is too small
                                           for a stable block (k < 5d+1).
``randomized``  O(nnz·q·(d+p)) subspace    Approximate: q power iterations on
                iteration + O(k·(d+p)²)    the reflected operator σI−M with
                Rayleigh–Ritz              seeded test matrix; accuracy gated
                                           by ``embedding_fidelity`` in the
                                           parity tests (≥0.99 on the seed
                                           datasets). No ``B`` support —
                                           generalized problems fall back to
                                           ``dense``.
==============  =========================  ===================================

All solvers preserve float32 input end-to-end (eigenvalues/eigenvectors come
back float32 — no silent float64 upcast); float64 and every other dtype use
float64 as before. The iterative solvers emit the ``eig.iterations``
histogram and every call bumps the ``eig.solve`` counter (labelled by
solver) in :mod:`repro.obs`.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .._validation import check_array, check_symmetric
from ..exceptions import ValidationError
from ..obs.metrics import get_registry
from ..obs.trace import span

__all__ = [
    "EIG_SOLVERS",
    "smallest_eigenvectors",
    "objective_matrix",
    "pairwise_loss",
    "sign_normalize",
]

EIG_SOLVERS = ("auto", "dense", "sparse", "lobpcg", "randomized")


def _work_dtype(M) -> np.dtype:
    """float32 stays float32; everything else computes in float64."""
    dtype = getattr(M, "dtype", None)
    if dtype is not None and np.dtype(dtype) == np.dtype(np.float32):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def sign_normalize(V: np.ndarray) -> np.ndarray:
    """Fix eigenvector signs deterministically.

    Each column is flipped so its largest-magnitude entry is positive,
    making learned transforms reproducible across LAPACK builds and runs.
    float32 input stays float32.
    """
    V = np.array(V, dtype=_work_dtype(V), copy=True)
    if V.size == 0:
        return V
    # One vectorized pass: per-column pivot rows (first-max, like argmax in
    # the scalar loop), then flip every column whose pivot entry is negative.
    pivots = np.argmax(np.abs(V), axis=0)
    flip = V[pivots, np.arange(V.shape[1])] < 0
    V[:, flip] *= -1.0
    return V


def _lobpcg_smallest(M, d, *, B=None, seed=0, maxiter=500):
    """Smallest eigenpairs via LOBPCG; ``None`` signals the dense fallback.

    LOBPCG needs room for its block (X, residuals, conjugate directions):
    below ``k >= 5d+1`` scipy itself refuses, and tiny problems are faster
    dense anyway, so the caller falls back.
    """
    k = M.shape[0]
    if k < max(32, 5 * d + 1):
        return None
    work = _work_dtype(M)
    rng = np.random.default_rng(seed)
    X0 = rng.standard_normal((k, d)).astype(work, copy=False)
    eigenvalues, eigenvectors, history = spla.lobpcg(
        M, X0, B=B, largest=False, maxiter=maxiter,
        retResidualNormsHistory=True,
    )
    get_registry().observe("eig.iterations", float(len(history)), solver="lobpcg")
    order = np.argsort(eigenvalues)
    return eigenvalues[order], eigenvectors[:, order]


def _randomized_smallest(M, d, *, seed=0, oversample=10, n_iter=16):
    """Smallest eigenpairs via randomized subspace iteration.

    The smallest eigenvalues of PSD ``M`` are the *largest* of the
    reflected operator ``S = σI − M`` for any upper bound σ on the
    spectrum, so a standard randomized range finder with ``n_iter``
    power iterations plus a Rayleigh–Ritz projection recovers them.
    σ is a power-iteration estimate of λmax (padded 10%): a loose bound
    like Gershgorin would flatten S's spectral contrast and stall
    convergence. ``None`` signals the dense fallback for problems too
    small to benefit.
    """
    k = M.shape[0]
    p = min(k, d + oversample)
    if k < max(32, 2 * p):
        return None
    work = _work_dtype(M)
    rng_sigma = np.random.default_rng(seed)
    v = rng_sigma.standard_normal(k).astype(work, copy=False)
    lam_max = 1.0
    for _ in range(20):
        v = M @ v
        lam_max = float(np.linalg.norm(v))
        if lam_max == 0.0:
            break
        v /= lam_max
    sigma = 1.1 * lam_max + 1e-12

    def reflected(V):
        return sigma * V - M @ V

    rng = np.random.default_rng(seed)
    Q = rng.standard_normal((k, p)).astype(work, copy=False)
    for _ in range(n_iter):
        Q, _ = np.linalg.qr(reflected(Q))
    SQ = reflected(Q)
    T = Q.T @ SQ
    theta, U = scipy.linalg.eigh(0.5 * (T + T.T))
    # Largest θ of S ↔ smallest eigenvalues of M; reversing the ascending
    # eigh output yields M's spectrum back in ascending order.
    theta = theta[::-1][:d]
    U = U[:, ::-1][:, :d]
    get_registry().observe("eig.iterations", float(n_iter), solver="randomized")
    return sigma - theta, Q @ U


def smallest_eigenvectors(
    M,
    d: int,
    *,
    B=None,
    solver: str = "auto",
    sparse_threshold: int = 2000,
    seed: int = 0,
):
    """Eigenvectors of the ``d`` smallest eigenvalues of a symmetric matrix.

    Parameters
    ----------
    M:
        Symmetric (dense or sparse) matrix of shape ``(k, k)``. float32
        input is solved in float32 (see the module docstring).
    d:
        Number of eigenpairs, ``1 <= d <= k``.
    B:
        Optional symmetric positive-definite matrix for the *generalized*
        problem ``M v = λ B v`` (used by PFR's ``ZZᵀ = I`` constraint mode,
        where ``B = Xᵀ X``). Solved dense unless ``solver="lobpcg"``, which
        handles ``B`` natively. Eigenvectors are B-orthonormal
        (``VᵀBV = I``).
    solver:
        One of ``"auto"``, ``"dense"``, ``"sparse"``, ``"lobpcg"``,
        ``"randomized"`` — see the complexity/accuracy table in the module
        docstring. ``"auto"`` picks sparse for large sparse inputs, dense
        otherwise (the historical default behavior).
    sparse_threshold:
        Matrix size above which ``"auto"`` prefers the Lanczos path for
        sparse inputs.
    seed:
        Seed for the iterative solvers' start blocks (``lobpcg``,
        ``randomized``); ignored by the deterministic solvers.

    Returns
    -------
    eigenvalues : ndarray of shape (d,)
        Ascending eigenvalues.
    eigenvectors : ndarray of shape (k, d)
        Orthonormal (B-orthonormal in the generalized case), sign-normalized
        eigenvectors (columns).
    """
    k = M.shape[0]
    if M.shape[0] != M.shape[1]:
        raise ValidationError(f"M must be square; got shape {M.shape}")
    if not 1 <= d <= k:
        raise ValidationError(f"d must be in [1, {k}]; got {d}")
    if solver not in EIG_SOLVERS:
        raise ValidationError(f"unknown solver {solver!r}; use one of {EIG_SOLVERS}")
    work = _work_dtype(M)
    get_registry().inc("eig.solve", solver=solver)

    if B is not None:
        if solver == "lobpcg":
            with span("core.eig", solver="lobpcg", k=int(k), d=int(d),
                      dtype=str(work), generalized=True):
                result = _lobpcg_smallest(M, d, B=B, seed=seed)
            if result is not None:
                eigenvalues, eigenvectors = result
                return eigenvalues, sign_normalize(eigenvectors)
        # randomized has no generalized form; everything else (and the
        # too-small-for-LOBPCG case) takes the exact dense path.
        dense_m = M.toarray() if sp.issparse(M) else np.asarray(M, dtype=work)
        dense_b = B.toarray() if sp.issparse(B) else np.asarray(B, dtype=work)
        if dense_b.shape != dense_m.shape:
            raise ValidationError(
                f"B must match M's shape {dense_m.shape}; got {dense_b.shape}"
            )
        dense_m = 0.5 * (dense_m + dense_m.T)
        dense_b = 0.5 * (dense_b + dense_b.T)
        with span("core.eig", solver="dense", k=int(k), d=int(d),
                  dtype=str(work), generalized=True):
            eigenvalues, eigenvectors = scipy.linalg.eigh(
                dense_m, dense_b, subset_by_index=(0, d - 1)
            )
        return eigenvalues, sign_normalize(eigenvectors)

    if solver == "auto":
        use_sparse = sp.issparse(M) and k > sparse_threshold and d < k // 2
        solver = "sparse" if use_sparse else "dense"

    if solver in ("lobpcg", "randomized"):
        with span("core.eig", solver=solver, k=int(k), d=int(d), dtype=str(work)):
            if solver == "lobpcg":
                result = _lobpcg_smallest(M, d, seed=seed)
            else:
                result = _randomized_smallest(M, d, seed=seed)
        if result is None:
            return smallest_eigenvectors(M, d, solver="dense")
        eigenvalues, eigenvectors = result
        return eigenvalues, sign_normalize(eigenvectors)

    if solver == "dense":
        dense = M.toarray() if sp.issparse(M) else np.asarray(M, dtype=work)
        dense = check_symmetric(0.5 * (dense + dense.T), name="M", dtype=work)
        with span("core.eig", solver="dense", k=int(k), d=int(d), dtype=str(work)):
            eigenvalues, eigenvectors = scipy.linalg.eigh(
                dense, subset_by_index=(0, d - 1)
            )
    else:
        if d >= k - 1:
            # Lanczos cannot return nearly-all eigenpairs; fall back to dense.
            return smallest_eigenvectors(M, d, solver="dense")
        if sp.issparse(M):
            matrix = M.tocsr()
            shift = float(abs(matrix).sum()) / k + 1.0
        else:
            matrix = np.asarray(M, dtype=work)
            shift = float(np.abs(matrix).sum()) / k + 1.0
        # Shift the PSD spectrum so smallest-magnitude = smallest-algebraic
        # and the operator is well-conditioned for Lanczos. The shift is
        # applied implicitly through a LinearOperator: materializing
        # ``matrix + shift·I`` would copy the whole operator (and, before
        # this, coerced dense inputs through an extra sparse conversion) —
        # at landmark/serving scale the matvec view keeps memory at the
        # operator's own footprint.
        operator = spla.LinearOperator(
            (k, k),
            matvec=lambda v: matrix @ v + shift * v,
            matmat=lambda V: matrix @ V + shift * V,
            rmatvec=lambda v: matrix.T @ v + shift * v,
            dtype=work,
        )
        with span("core.eig", solver="sparse", k=int(k), d=int(d), dtype=str(work)):
            eigenvalues, eigenvectors = spla.eigsh(operator, k=d, which="SA")
        eigenvalues = eigenvalues - shift
        order = np.argsort(eigenvalues)
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]

    return eigenvalues, sign_normalize(eigenvectors)


def objective_matrix(X, L) -> np.ndarray:
    """Assemble the PFR objective matrix ``Xᵀ L X`` (row-sample convention).

    ``X`` has shape ``(n, m)`` and ``L`` shape ``(n, n)``; the result is the
    dense symmetric ``(m, m)`` matrix of Equation 7. float32 ``X`` yields a
    float32 objective (the float32 pipeline's assembly leg).
    """
    X = check_array(X, name="X", dtype=None)
    X = np.asarray(X, dtype=_work_dtype(X))
    if L.shape[0] != X.shape[0]:
        raise ValidationError(
            f"L has {L.shape[0]} nodes but X has {X.shape[0]} samples"
        )
    L = sp.csr_matrix(L)
    if L.dtype != X.dtype:
        L = L.astype(X.dtype)
    M = X.T @ (L @ X)
    return 0.5 * (M + M.T)


def pairwise_loss(Z, W) -> float:
    """Pairwise embedding loss ``Σ_ij ||z_i - z_j||² W_ij`` (Equations 3–4).

    Evaluated through the Laplacian identity ``2·Tr(Zᵀ L Z)``, which is
    O(nnz·d) instead of O(n²·d).
    """
    Z = np.asarray(Z, dtype=np.float64)
    if Z.ndim == 1:
        Z = Z[:, None]
    W = sp.csr_matrix(W)
    if W.shape[0] != Z.shape[0]:
        raise ValidationError(
            f"W has {W.shape[0]} nodes but Z has {Z.shape[0]} rows"
        )
    degrees = np.asarray(W.sum(axis=0)).ravel()
    # Tr(Zᵀ L Z) = Σ_i d_i ||z_i||² - Σ_ij W_ij z_i·z_j
    sq_norms = np.sum(Z * Z, axis=1)
    cross = float(np.sum((W @ Z) * Z))
    return float(2.0 * (degrees @ sq_norms - cross))
