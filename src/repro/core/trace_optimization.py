"""Trace-minimization layer shared by linear and kernel PFR (paper §3.3.2–3.3.3).

Both PFR variants reduce to: find the ``d`` eigenvectors with smallest
eigenvalues of a symmetric positive semi-definite matrix

    linear PFR:  M = X ((1-γ) L_X + γ L_F) Xᵀ      (m × m, Equation 7)
    kernel PFR:  M = K ((1-γ) L_X + γ L_F) K        (n × n, Equation 8)

(using the paper's column-sample convention; this library stores samples as
rows, so the linear case is ``Xᵀ L X``). The paper solves this with LAPACK
via scipy; we expose a dense LAPACK path and a sparse Lanczos path behind
one function, plus helpers to assemble the objective matrix and to evaluate
the pairwise loss ``Σ_ij ||z_i - z_j||² W_ij = 2·Tr(Zᵀ L Z)`` used by tests
and benchmarks.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .._validation import check_array, check_symmetric
from ..exceptions import ValidationError

__all__ = [
    "smallest_eigenvectors",
    "objective_matrix",
    "pairwise_loss",
    "sign_normalize",
]


def sign_normalize(V: np.ndarray) -> np.ndarray:
    """Fix eigenvector signs deterministically.

    Each column is flipped so its largest-magnitude entry is positive,
    making learned transforms reproducible across LAPACK builds and runs.
    """
    V = np.array(V, dtype=np.float64, copy=True)
    if V.size == 0:
        return V
    # One vectorized pass: per-column pivot rows (first-max, like argmax in
    # the scalar loop), then flip every column whose pivot entry is negative.
    pivots = np.argmax(np.abs(V), axis=0)
    flip = V[pivots, np.arange(V.shape[1])] < 0
    V[:, flip] *= -1.0
    return V


def smallest_eigenvectors(
    M,
    d: int,
    *,
    B=None,
    solver: str = "auto",
    sparse_threshold: int = 2000,
):
    """Eigenvectors of the ``d`` smallest eigenvalues of a symmetric matrix.

    Parameters
    ----------
    M:
        Symmetric (dense or sparse) matrix of shape ``(k, k)``.
    d:
        Number of eigenpairs, ``1 <= d <= k``.
    B:
        Optional symmetric positive-definite matrix for the *generalized*
        problem ``M v = λ B v`` (used by PFR's ``ZZᵀ = I`` constraint mode,
        where ``B = Xᵀ X``). Forces the dense solver. Eigenvectors are
        B-orthonormal (``VᵀBV = I``).
    solver:
        ``"dense"`` — LAPACK ``eigh`` with eigenvalue-index subsetting (the
        paper's choice); ``"sparse"`` — Lanczos ``eigsh`` with shift to make
        the PSD spectrum definite; ``"auto"`` picks sparse for large sparse
        inputs, dense otherwise.
    sparse_threshold:
        Matrix size above which ``"auto"`` prefers the Lanczos path for
        sparse inputs.

    Returns
    -------
    eigenvalues : ndarray of shape (d,)
        Ascending eigenvalues.
    eigenvectors : ndarray of shape (k, d)
        Orthonormal (B-orthonormal in the generalized case), sign-normalized
        eigenvectors (columns).
    """
    k = M.shape[0]
    if M.shape[0] != M.shape[1]:
        raise ValidationError(f"M must be square; got shape {M.shape}")
    if not 1 <= d <= k:
        raise ValidationError(f"d must be in [1, {k}]; got {d}")
    if solver not in ("auto", "dense", "sparse"):
        raise ValidationError(f"unknown solver {solver!r}")

    if B is not None:
        dense_m = M.toarray() if sp.issparse(M) else np.asarray(M, dtype=np.float64)
        dense_b = B.toarray() if sp.issparse(B) else np.asarray(B, dtype=np.float64)
        if dense_b.shape != dense_m.shape:
            raise ValidationError(
                f"B must match M's shape {dense_m.shape}; got {dense_b.shape}"
            )
        dense_m = 0.5 * (dense_m + dense_m.T)
        dense_b = 0.5 * (dense_b + dense_b.T)
        eigenvalues, eigenvectors = scipy.linalg.eigh(
            dense_m, dense_b, subset_by_index=(0, d - 1)
        )
        return eigenvalues, sign_normalize(eigenvectors)

    if solver == "auto":
        use_sparse = sp.issparse(M) and k > sparse_threshold and d < k // 2
        solver = "sparse" if use_sparse else "dense"

    if solver == "dense":
        dense = M.toarray() if sp.issparse(M) else np.asarray(M, dtype=np.float64)
        dense = check_symmetric(0.5 * (dense + dense.T), name="M")
        eigenvalues, eigenvectors = scipy.linalg.eigh(
            dense, subset_by_index=(0, d - 1)
        )
    else:
        if d >= k - 1:
            # Lanczos cannot return nearly-all eigenpairs; fall back to dense.
            return smallest_eigenvectors(M, d, solver="dense")
        if sp.issparse(M):
            matrix = M.tocsr()
            shift = float(abs(matrix).sum()) / k + 1.0
        else:
            matrix = np.asarray(M, dtype=np.float64)
            shift = float(np.abs(matrix).sum()) / k + 1.0
        # Shift the PSD spectrum so smallest-magnitude = smallest-algebraic
        # and the operator is well-conditioned for Lanczos. The shift is
        # applied implicitly through a LinearOperator: materializing
        # ``matrix + shift·I`` would copy the whole operator (and, before
        # this, coerced dense inputs through an extra sparse conversion) —
        # at landmark/serving scale the matvec view keeps memory at the
        # operator's own footprint.
        operator = spla.LinearOperator(
            (k, k),
            matvec=lambda v: matrix @ v + shift * v,
            matmat=lambda V: matrix @ V + shift * V,
            rmatvec=lambda v: matrix.T @ v + shift * v,
            dtype=np.float64,
        )
        eigenvalues, eigenvectors = spla.eigsh(operator, k=d, which="SA")
        eigenvalues = eigenvalues - shift
        order = np.argsort(eigenvalues)
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]

    return eigenvalues, sign_normalize(eigenvectors)


def objective_matrix(X, L) -> np.ndarray:
    """Assemble the PFR objective matrix ``Xᵀ L X`` (row-sample convention).

    ``X`` has shape ``(n, m)`` and ``L`` shape ``(n, n)``; the result is the
    dense symmetric ``(m, m)`` matrix of Equation 7.
    """
    X = check_array(X, name="X")
    if L.shape[0] != X.shape[0]:
        raise ValidationError(
            f"L has {L.shape[0]} nodes but X has {X.shape[0]} samples"
        )
    L = sp.csr_matrix(L)
    M = X.T @ (L @ X)
    return 0.5 * (M + M.T)


def pairwise_loss(Z, W) -> float:
    """Pairwise embedding loss ``Σ_ij ||z_i - z_j||² W_ij`` (Equations 3–4).

    Evaluated through the Laplacian identity ``2·Tr(Zᵀ L Z)``, which is
    O(nnz·d) instead of O(n²·d).
    """
    Z = np.asarray(Z, dtype=np.float64)
    if Z.ndim == 1:
        Z = Z[:, None]
    W = sp.csr_matrix(W)
    if W.shape[0] != Z.shape[0]:
        raise ValidationError(
            f"W has {W.shape[0]} nodes but Z has {Z.shape[0]} rows"
        )
    degrees = np.asarray(W.sum(axis=0)).ravel()
    # Tr(Zᵀ L Z) = Σ_i d_i ||z_i||² - Σ_ij W_ij z_i·z_j
    sq_norms = np.sum(Z * Z, axis=1)
    cross = float(np.sum((W @ Z) * Z))
    return float(2.0 * (degrees @ sq_norms - cross))
