"""Workload datasets: the synthetic admissions scenario, COMPAS, and
Crime & Communities (simulators calibrated to the paper's Table 1, plus
loaders for the real files when available)."""

from .base import Dataset
from .compas import COMPAS_FEATURES, load_compas, simulate_compas
from .crime import CRIME_FEATURES, load_crime, simulate_crime
from .ratings import rating_equivalence_classes, simulate_star_ratings
from .split import train_test_split
from .synthetic import ADMISSIONS_FEATURES, simulate_admissions, simulate_blobs

__all__ = [
    "Dataset",
    "COMPAS_FEATURES",
    "load_compas",
    "simulate_compas",
    "CRIME_FEATURES",
    "load_crime",
    "simulate_crime",
    "rating_equivalence_classes",
    "simulate_star_ratings",
    "ADMISSIONS_FEATURES",
    "simulate_admissions",
    "simulate_blobs",
    "train_test_split",
]
