"""Dataset container shared by all experiment workloads.

A :class:`Dataset` bundles everything the paper's protocol needs for one
workload: the numeric feature matrix (protected attribute included as a
column so baselines can mask or exclude it), binary labels, the protected
attribute, and the fairness *side information* (star ratings, decile
scores, within-group ranking scores) from which ``WF`` is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import check_binary_labels, check_consistent_length
from ..exceptions import DatasetError

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """One workload: features, labels, protected attribute, side information.

    Attributes
    ----------
    name:
        Workload identifier (``"synthetic"``, ``"crime"``, ``"compas"``).
    X:
        Feature matrix ``(n, m)`` of floats; includes the protected
        attribute column(s) so that methods choose how to treat them.
    y:
        Binary classification target in {0, 1}.
    s:
        Protected-group membership per individual (integers; 1 = protected).
    feature_names:
        Length-``m`` column names for ``X``.
    protected_columns:
        Indices of the columns of ``X`` that encode the protected attribute.
    side_information:
        Per-individual fairness side information (e.g. mean star rating or
        decile score); NaN marks individuals without elicited judgments.
        ``None`` when the workload derives scores on the fly (synthetic).
    side_information_name:
        Human-readable description of the side information.
    metadata:
        Free-form extras (generator parameters, provenance).
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    s: np.ndarray
    feature_names: tuple
    protected_columns: tuple
    side_information: np.ndarray | None = None
    side_information_name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        X = np.asarray(self.X, dtype=np.float64)
        if X.ndim != 2:
            raise DatasetError(f"X must be 2-D; got shape {X.shape}")
        y = check_binary_labels(self.y, name="y")
        s = np.asarray(self.s)
        check_consistent_length(X, y, s)
        if len(self.feature_names) != X.shape[1]:
            raise DatasetError(
                f"{len(self.feature_names)} feature names for {X.shape[1]} columns"
            )
        for column in self.protected_columns:
            if not 0 <= column < X.shape[1]:
                raise DatasetError(f"protected column {column} out of range")
        if self.side_information is not None:
            side = np.asarray(self.side_information, dtype=np.float64)
            if side.shape[0] != X.shape[0]:
                raise DatasetError(
                    f"side information has {side.shape[0]} rows; X has {X.shape[0]}"
                )
            object.__setattr__(self, "side_information", side)
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "feature_names", tuple(self.feature_names))
        object.__setattr__(self, "protected_columns", tuple(self.protected_columns))

    @property
    def n_samples(self) -> int:
        """Number of individuals."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of feature columns (protected attribute included)."""
        return self.X.shape[1]

    def group_sizes(self) -> dict:
        """Group value → count."""
        values, counts = np.unique(self.s, return_counts=True)
        return dict(zip(values.tolist(), counts.tolist()))

    def base_rates(self) -> dict:
        """Group value → P(y = 1 | s), the paper's Table 1 statistic."""
        return {
            value: float(np.mean(self.y[self.s == value]))
            for value in np.unique(self.s)
        }

    def table1_row(self) -> dict:
        """The dataset's row of the paper's Table 1."""
        sizes = self.group_sizes()
        rates = self.base_rates()
        return {
            "dataset": self.name,
            "n": self.n_samples,
            "n_s0": sizes.get(0, 0),
            "n_s1": sizes.get(1, 0),
            "base_rate_s0": round(rates.get(0, float("nan")), 2),
            "base_rate_s1": round(rates.get(1, float("nan")), 2),
        }

    def subset(self, indices) -> "Dataset":
        """Row-indexed sub-dataset (used for train/test splits)."""
        indices = np.asarray(indices, dtype=np.int64)
        side = (
            self.side_information[indices]
            if self.side_information is not None
            else None
        )
        return replace(
            self,
            X=self.X[indices],
            y=self.y[indices],
            s=self.s[indices],
            side_information=side,
        )

    def nonprotected_view(self) -> np.ndarray:
        """Feature matrix with the protected columns removed."""
        keep = np.setdiff1d(np.arange(self.n_features), np.asarray(self.protected_columns))
        return self.X[:, keep]
