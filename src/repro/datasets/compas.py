"""COMPAS recidivism workload (paper §4.3).

The paper uses ProPublica's COMPAS dataset (8,803 offenders after standard
preprocessing; Table 1) with race — African-American (s=1) vs. others
(s=0) — as the protected attribute, two-year rearrest as the label, and
Northpointe's *within-group* decile scores as the side information behind
the between-group quantile fairness graph (§4.3.1).

This environment has no network access, so :func:`simulate_compas`
generates a synthetic population over the ProPublica schema, calibrated to
the paper's Table 1 statistics (group sizes 4218 / 4585, base rates 0.41 /
0.55). The generative model implements the paper's anti-subordination
premise explicitly (the same structure as its SAT-score example, §1.1):

* every offender has a **latent behaviour score** ``b`` whose distribution
  is *identical across groups* — the groups are equally deserving;
* recorded criminal history measures ``b`` through an **enforcement
  channel** that is inflated and noisier for the protected group
  (over-policing), so features are a *worse* predictor of behaviour for
  s=1;
* rearrest depends on behaviour *and* enforcement intensity, producing the
  higher observed base rate for the protected group;
* Northpointe's decile score observes ``b`` through an independent
  questionnaire channel and is normed **within group** — it carries
  information the features do not have, which is why the paper's
  fairness graph can *help* the protected group (Figure 10c).

:func:`load_compas` ingests the real ``compas-scores-two-years.csv`` with
ProPublica's standard filters whenever the file is available, producing an
identically-shaped :class:`~repro.datasets.base.Dataset` (same derived
feature schema).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .._validation import check_random_state
from ..exceptions import DatasetError
from ..graphs.quantiles import within_group_quantiles
from ..ml.linear import sigmoid
from .base import Dataset

__all__ = ["simulate_compas", "load_compas", "COMPAS_FEATURES"]

COMPAS_FEATURES = (
    "sex_male",
    "age",
    "log1p_juv_total",
    "log1p_priors",
    "charge_degree_felony",
    "log1p_length_of_stay",
    "race_african_american",
)

_TABLE1_N_S0 = 4218
_TABLE1_N_S1 = 4585
_TABLE1_BASE_RATE_S0 = 0.41
_TABLE1_BASE_RATE_S1 = 0.55


def _calibrate_intercept(risk: np.ndarray, target_rate: float) -> float:
    """Bisection for q such that mean(sigmoid(risk - q)) == target_rate."""
    low, high = -30.0, 30.0
    for _ in range(100):
        mid = 0.5 * (low + high)
        if float(np.mean(sigmoid(risk - mid))) > target_rate:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def simulate_compas(
    n_nonprotected: int = _TABLE1_N_S0,
    n_protected: int = _TABLE1_N_S1,
    *,
    seed=0,
    shuffle: bool = True,
    enforcement_bias: float = 0.9,
    coupling_loss_protected: float = 0.6,
    measurement_noise_protected: float = 0.8,
    questionnaire_noise: float = 0.8,
) -> Dataset:
    """Generate a synthetic COMPAS population calibrated to Table 1.

    Parameters
    ----------
    n_nonprotected, n_protected:
        Group sizes; the paper's values are 4218 and 4585. Smaller values
        produce statistically consistent scaled-down populations for tests.
    seed:
        Generator seed; the dataset is a pure function of it.
    shuffle:
        Interleave groups.
    enforcement_bias:
        Log-rate inflation of recorded counts (and rearrest propensity) for
        the protected group — the over-policing distortion.
    coupling_loss_protected:
        Fractional loss of behaviour-to-record coupling for the protected
        group: indiscriminate policing makes recorded history track actual
        behaviour less faithfully, so features predict s=1 outcomes worse
        (the paper's Figure 10c premise).
    measurement_noise_protected:
        Extra noise (sd) in the protected group's feature channel.
    questionnaire_noise:
        Noise (sd) of the decile score's independent view of behaviour.

    Returns
    -------
    Dataset
        Features per :data:`COMPAS_FEATURES` (``race_african_american`` is
        the protected column), label = two-year rearrest, side information =
        Northpointe-style within-group decile score in 1..10.
    """
    if min(n_nonprotected, n_protected) < 10:
        raise DatasetError("each group needs at least 10 individuals")
    rng = check_random_state(seed)

    n = n_nonprotected + n_protected
    s = np.concatenate(
        [
            np.zeros(n_nonprotected, dtype=np.int64),
            np.ones(n_protected, dtype=np.int64),
        ]
    )
    protected = s == 1

    # Latent behaviour: identical distribution in both groups (the paper's
    # equal-deservingness premise).
    behaviour = rng.normal(0.0, 1.0, size=n)

    # Demographics correlate with behaviour the same way in both groups.
    age = np.clip(
        38.0 - 6.0 * behaviour + rng.normal(0.0, 9.0, size=n), 18.0, 70.0
    )
    sex_male = (rng.random(n) < sigmoid(0.4 * behaviour + 1.2)).astype(np.float64)
    felony = (rng.random(n) < sigmoid(0.3 * behaviour + 0.4)).astype(np.float64)

    # Recorded criminal history: enforcement channel. The protected group's
    # records are inflated (higher log-rate) and noisier (weaker coupling
    # between behaviour and what is recorded). Counts are rounded
    # log-normals: count-like marginals with a smooth log-scale relation to
    # behaviour, matching the heavy-tailed but locally coherent structure
    # of real criminal histories.
    channel_noise = rng.normal(0.0, 0.4, size=n)
    channel_noise[protected] += rng.normal(
        0.0, measurement_noise_protected, size=int(protected.sum())
    )
    coupling = 1.0 - coupling_loss_protected * protected
    log_rate = 0.5 + 0.9 * coupling * behaviour + enforcement_bias * protected
    priors = np.floor(np.exp(np.clip(log_rate + channel_noise, None, 3.5)))
    juv_total = np.floor(
        np.exp(
            np.clip(
                -0.9
                + 0.6 * coupling * behaviour
                + enforcement_bias * protected
                + rng.normal(0.0, 0.5, size=n),
                None,
                2.0,
            )
        )
    )
    length_of_stay = np.clip(
        np.exp(
            1.2 + 0.5 * felony + 0.4 * coupling * behaviour
            + rng.normal(0.0, 0.9, size=n)
        ),
        0.0,
        800.0,
    )

    # Rearrest: true behaviour plus enforcement intensity (being watched
    # more makes rearrest more likely at the same behaviour). Per-group
    # intercepts calibrate the Table 1 base rates.
    rearrest_propensity = 1.4 * behaviour + 0.8 * enforcement_bias * protected
    y = np.zeros(n, dtype=np.int64)
    for value, rate in ((0, _TABLE1_BASE_RATE_S0), (1, _TABLE1_BASE_RATE_S1)):
        members = s == value
        intercept = _calibrate_intercept(rearrest_propensity[members], rate)
        y[members] = (
            rng.random(int(members.sum()))
            < sigmoid(rearrest_propensity[members] - intercept)
        ).astype(np.int64)

    # Northpointe's questionnaire sees behaviour through its own channel,
    # then norms the score within each group (deciles 1..10).
    questionnaire = behaviour + rng.normal(0.0, questionnaire_noise, size=n)
    deciles = within_group_quantiles(questionnaire, s, n_quantiles=10) + 1

    X = np.column_stack(
        [
            sex_male,
            age,
            np.log1p(juv_total),
            np.log1p(priors),
            felony,
            np.log1p(length_of_stay),
            s.astype(np.float64),
        ]
    )

    if shuffle:
        order = rng.permutation(n)
        X, y, s, deciles = X[order], y[order], s[order], deciles[order]

    return Dataset(
        name="compas",
        X=X,
        y=y,
        s=s,
        feature_names=COMPAS_FEATURES,
        protected_columns=(6,),
        side_information=deciles.astype(np.float64),
        side_information_name="Northpointe-style within-group decile score (1-10)",
        metadata={
            "seed": seed,
            "generator": "simulate_compas",
            "substitution": (
                "synthetic population over the ProPublica schema calibrated "
                "to Table 1; see DESIGN.md"
            ),
        },
    )


# --- loader for the real ProPublica file --------------------------------

_REQUIRED_COLUMNS = (
    "sex",
    "age",
    "race",
    "juv_fel_count",
    "juv_misd_count",
    "juv_other_count",
    "priors_count",
    "c_charge_degree",
    "days_b_screening_arrest",
    "is_recid",
    "decile_score",
    "two_year_recid",
)


def load_compas(path) -> Dataset:
    """Load ProPublica's ``compas-scores-two-years.csv`` with standard filters.

    Filters (as in ProPublica's analysis and the paper's preprocessing):
    screening within ±30 days of arrest, ``is_recid != -1``, and ordinary
    traffic offenses (``c_charge_degree == 'O'``) removed. The derived
    feature schema matches :func:`simulate_compas` (juvenile counts
    aggregated, counts log-transformed).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"COMPAS file not found: {path}")

    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DatasetError(f"{path} has no header row")
        missing = [c for c in _REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise DatasetError(f"{path} is missing columns: {missing}")
        rows = list(reader)
    if not rows:
        raise DatasetError(f"{path} contains no data rows")

    records = []
    for row in rows:
        try:
            days = float(row["days_b_screening_arrest"])
        except (TypeError, ValueError):
            continue
        if not -30.0 <= days <= 30.0:
            continue
        if row["is_recid"] == "-1":
            continue
        if row["c_charge_degree"] == "O":
            continue
        try:
            juv_total = (
                float(row["juv_fel_count"])
                + float(row["juv_misd_count"])
                + float(row["juv_other_count"])
            )
            records.append(
                (
                    1.0 if row["sex"] == "Male" else 0.0,
                    float(row["age"]),
                    np.log1p(juv_total),
                    np.log1p(float(row["priors_count"])),
                    1.0 if row["c_charge_degree"] == "F" else 0.0,
                    np.log1p(_length_of_stay_days(row)),
                    1.0 if row["race"] == "African-American" else 0.0,
                    int(row["two_year_recid"]),
                    float(row["decile_score"]),
                )
            )
        except (TypeError, ValueError) as exc:
            raise DatasetError(f"malformed row in {path}: {exc}") from exc

    if len(records) < 10:
        raise DatasetError(f"{path}: too few rows survive the filters ({len(records)})")

    data = np.asarray(records, dtype=np.float64)
    X = data[:, :7]
    y = data[:, 7].astype(np.int64)
    s = X[:, 6].astype(np.int64)
    deciles = data[:, 8]
    return Dataset(
        name="compas",
        X=X,
        y=y,
        s=s,
        feature_names=COMPAS_FEATURES,
        protected_columns=(6,),
        side_information=deciles,
        side_information_name="Northpointe COMPAS decile score (1-10)",
        metadata={"source": str(path), "generator": "load_compas"},
    )


def _length_of_stay_days(row) -> float:
    """Days between ``c_jail_in`` and ``c_jail_out``; 0 when unavailable."""
    from datetime import datetime

    jail_in = row.get("c_jail_in", "") or ""
    jail_out = row.get("c_jail_out", "") or ""
    if not jail_in.strip() or not jail_out.strip():
        return 0.0
    try:
        start = datetime.fromisoformat(jail_in.strip())
        end = datetime.fromisoformat(jail_out.strip())
    except ValueError:
        return 0.0
    return max((end - start).total_seconds() / 86400.0, 0.0)
