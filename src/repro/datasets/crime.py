"""Crime & Communities workload (paper §4.3, UCI "Communities and Crime").

The paper predicts whether a US community is violent (``isViolent``) from
socio-economic, demographic, and policing attributes; communities with a
majority non-white population form the protected group (570 of 1993;
base rates 0.35 / 0.86 — Table 1). Side information for the fairness graph
comes from niche.com resident safety ratings (§4.3.1), modeled here by
:mod:`repro.datasets.ratings`.

:func:`simulate_crime` generates a synthetic population from a single
latent socio-economic factor: community wealth drives income, poverty,
education, housing, and policing attributes, and (inversely) the violence
level — reproducing the real dataset's correlation structure, the extreme
base-rate gap, and the race-proxy effect (``pct_white`` is a *regular*
feature correlated with the protected attribute, exactly the redlining
structure that makes the original data hard).

:func:`load_crime` ingests the real UCI ``communities.data`` file when
available.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .._validation import check_random_state
from ..exceptions import DatasetError
from ..ml.linear import sigmoid
from .base import Dataset
from .compas import _calibrate_intercept
from .ratings import simulate_star_ratings

__all__ = ["simulate_crime", "load_crime", "CRIME_FEATURES"]

_TABLE1_N_S0 = 1423
_TABLE1_N_S1 = 570
_TABLE1_BASE_RATE_S0 = 0.35
_TABLE1_BASE_RATE_S1 = 0.86

# (name, loading on the socio-economic factor z, idiosyncratic noise sd).
# Positive loading = higher in wealthy communities.
_FACTOR_SPEC = (
    ("med_income", 0.80, 0.45),
    ("med_rent", 0.75, 0.45),
    ("pct_home_owners", 0.60, 0.55),
    ("pct_college_grad", 0.70, 0.50),
    ("pct_high_school", 0.55, 0.55),
    ("pct_employed_prof", 0.65, 0.55),
    ("pct_same_house_5y", 0.40, 0.70),
    ("pct_two_parent_hh", 0.65, 0.50),
    ("med_home_value", 0.78, 0.45),
    ("pct_poverty", -0.75, 0.45),
    ("pct_unemployed", -0.60, 0.55),
    ("pct_vacant_housing", -0.50, 0.60),
    ("pct_single_parent", -0.65, 0.50),
    ("pct_public_assist", -0.70, 0.50),
    ("pct_crowded_housing", -0.55, 0.60),
    ("pop_density", -0.30, 0.80),
    ("pct_young_males", -0.20, 0.85),
    ("police_per_pop", -0.40, 0.70),
    ("police_budget_pc", -0.35, 0.75),
    ("pct_recent_movers", -0.35, 0.75),
    ("pct_large_families", -0.25, 0.80),
    ("med_age", 0.25, 0.85),
    ("pct_urban", -0.20, 0.90),
    ("land_area", 0.05, 1.00),
)

CRIME_FEATURES = tuple(name for name, _, _ in _FACTOR_SPEC) + (
    "pct_white",
    "majority_nonwhite",
)


def simulate_crime(
    n_nonprotected: int = _TABLE1_N_S0,
    n_protected: int = _TABLE1_N_S1,
    *,
    seed=0,
    shuffle: bool = True,
    rating_coverage: float = 0.75,
    measurement_noise_protected: float = 0.5,
) -> Dataset:
    """Generate a synthetic Crime & Communities population (Table 1 calibrated).

    Parameters
    ----------
    n_nonprotected, n_protected:
        Community counts per group (paper: 1423 / 570).
    seed:
        Generator seed; the dataset is a pure function of it.
    shuffle:
        Interleave groups.
    rating_coverage:
        Fraction of communities with simulated niche.com reviews (the paper
        covered ~1500 of ~2000).
    measurement_noise_protected:
        Multiplier on the protected communities' idiosyncratic feature
        noise: official statistics for minority neighborhoods are less
        reliable, so the recorded attributes track the latent
        socio-economic factor more loosely — which is why the resident
        ratings (an independent channel) can *help* the protected group
        (the paper's Figure 7c).

    Returns
    -------
    Dataset
        Features per :data:`CRIME_FEATURES`, label = ``isViolent``, side
        information = mean star rating (NaN where no reviews).
    """
    if min(n_nonprotected, n_protected) < 10:
        raise DatasetError("each group needs at least 10 communities")
    rng = check_random_state(seed)

    n = n_nonprotected + n_protected
    s = np.concatenate(
        [
            np.zeros(n_nonprotected, dtype=np.int64),
            np.ones(n_protected, dtype=np.int64),
        ]
    )
    # Historical disadvantage: the protected group sits lower on the
    # socio-economic factor.
    z = rng.normal(0.0, 1.0, size=n) - 1.1 * s

    # Features observe the socio-economic factor through recorded
    # statistics. For protected communities the records carry a shared
    # (per-community) measurement error — unreliable official statistics —
    # so *all* their attributes drift coherently away from the truth. A
    # per-column error would average out across ~24 attributes; a shared
    # error does not.
    z_observed = z + rng.normal(0.0, 1.0, size=n) * measurement_noise_protected * s
    columns = []
    for _, loading, noise_sd in _FACTOR_SPEC:
        columns.append(loading * z_observed + rng.normal(0.0, noise_sd, size=n))
    # pct_white: a strong race proxy that is a *regular* feature (redlining
    # structure); clipped to [0, 1].
    pct_white = np.clip(0.82 - 0.55 * s + rng.normal(0.0, 0.12, size=n), 0.0, 1.0)
    columns.append(pct_white)
    columns.append(s.astype(np.float64))
    X = np.column_stack(columns)

    # Violence tracks (inverse) wealth with idiosyncratic noise.
    violence = -0.85 * z + rng.normal(0.0, 0.5, size=n)
    y = np.zeros(n, dtype=np.int64)
    for value, rate in ((0, _TABLE1_BASE_RATE_S0), (1, _TABLE1_BASE_RATE_S1)):
        members = s == value
        intercept = _calibrate_intercept(violence[members], rate)
        y[members] = (
            rng.random(members.sum()) < sigmoid(violence[members] - intercept)
        ).astype(np.int64)

    mean_ratings, n_reviews = simulate_star_ratings(
        violence, s, coverage=rating_coverage, seed=rng
    )

    if shuffle:
        order = rng.permutation(n)
        X, y, s = X[order], y[order], s[order]
        violence = violence[order]
        mean_ratings, n_reviews = mean_ratings[order], n_reviews[order]

    return Dataset(
        name="crime",
        X=X,
        y=y,
        s=s,
        feature_names=CRIME_FEATURES,
        protected_columns=(len(CRIME_FEATURES) - 1,),
        side_information=mean_ratings,
        side_information_name="niche.com-style mean safety rating (1-5 stars)",
        metadata={
            "seed": seed,
            "generator": "simulate_crime",
            "violence_score": violence,
            "n_reviews": n_reviews,
            "substitution": (
                "latent-factor synthetic population calibrated to Table 1; "
                "see DESIGN.md"
            ),
        },
    )


def load_crime(path, *, names_path=None) -> Dataset:
    """Load the UCI ``communities.data`` file.

    The file has 128 comma-separated columns without a header: 5
    non-predictive identifiers, 122 normalized predictive attributes, and
    the continuous target ``ViolentCrimesPerPop``. Missing values are
    ``'?'`` and are imputed with column means. Following the paper,
    ``isViolent`` is the median split of the target and the protected group
    is "majority population non-white" (``racePctWhite < 0.5``, attribute
    index 3 among the predictive columns).

    Parameters
    ----------
    path:
        Path to ``communities.data``.
    names_path:
        Optional ``communities.names`` file; when given, feature names are
        parsed from it, otherwise generic names are used.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"Crime & Communities file not found: {path}")

    rows = []
    with path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            if len(parts) != 128:
                raise DatasetError(
                    f"{path}:{line_number}: expected 128 fields, got {len(parts)}"
                )
            rows.append(parts)
    if len(rows) < 10:
        raise DatasetError(f"{path}: too few rows ({len(rows)})")

    raw = np.full((len(rows), 123), np.nan)
    for i, parts in enumerate(rows):
        for j, token in enumerate(parts[5:]):
            if token != "?":
                raw[i, j] = float(token)

    target = raw[:, -1]
    if np.isnan(target).any():
        raise DatasetError(f"{path}: target column contains missing values")
    features = raw[:, :-1]
    column_means = np.nanmean(features, axis=0)
    missing = np.isnan(features)
    features[missing] = np.take(column_means, np.nonzero(missing)[1])

    # Predictive attribute 3 (0-based) is racePctWhite.
    s = (features[:, 3] < 0.5).astype(np.int64)
    y = (target >= np.median(target)).astype(np.int64)

    feature_names = _crime_feature_names(names_path, features.shape[1])
    X = np.column_stack([features, s.astype(np.float64)])
    return Dataset(
        name="crime",
        X=X,
        y=y,
        s=s,
        feature_names=tuple(feature_names) + ("majority_nonwhite",),
        protected_columns=(features.shape[1],),
        side_information=None,
        side_information_name=(
            "none in the raw UCI file; attach ratings via "
            "repro.datasets.ratings.simulate_star_ratings"
        ),
        metadata={"source": str(path), "generator": "load_crime"},
    )


def _crime_feature_names(names_path, n_features: int) -> list[str]:
    if names_path is None:
        return [f"attr_{j}" for j in range(n_features)]
    names = []
    with Path(names_path).open(encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("@attribute"):
                names.append(line.split()[1])
    predictive = names[5 : 5 + n_features]
    if len(predictive) != n_features:
        raise DatasetError(
            f"{names_path}: expected {n_features} predictive attribute names, "
            f"found {len(predictive)}"
        )
    return predictive
