"""Simulated niche.com-style star ratings (paper §4.3.1, Crime workload).

The paper elicits equivalence-class judgments for neighborhoods from
1-to-5-star "crime & safety" reviews by residents, collected from
niche.com for ~1500 of ~2000 communities. That scrape is not reproducible
offline, so :func:`simulate_star_ratings` generates review sets with the
properties the paper describes and relies on:

* many subjective reviews per community, aggregated to a mean rating;
* ratings anti-correlated with true violence (safe places rate higher);
* a positivity bias for protected communities — "the fairness graph may be
  biased in favor of the African-American neighbourhoods, since residents
  tend to have positive perception of their neighborhood's safety";
* partial coverage (≈75 % of communities have reviews), which keeps the
  fairness graph sparse.

:func:`rating_equivalence_classes` then rounds mean ratings into discrete
classes — the equivalence classes of Definition 1.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_random_state, column_or_1d
from ..exceptions import DatasetError

__all__ = ["simulate_star_ratings", "rating_equivalence_classes"]


def simulate_star_ratings(
    violence_score,
    protected,
    *,
    coverage: float = 0.75,
    mean_reviews: float = 8.0,
    protected_bias: float = 0.35,
    noise: float = 0.45,
    seed=0,
):
    """Simulate aggregated 1-5 star safety ratings per community.

    Parameters
    ----------
    violence_score:
        Latent violence intensity per community (higher = more violent);
        any real-valued array, internally rank-normalized.
    protected:
        Boolean/0-1 array marking protected communities.
    coverage:
        Fraction of communities with at least one review.
    mean_reviews:
        Poisson mean of the per-community review count.
    protected_bias:
        Additive positivity bias (in stars) for protected communities.
    noise:
        Reviewer disagreement (standard deviation, in stars).
    seed:
        Generator seed.

    Returns
    -------
    mean_ratings : ndarray
        Mean star rating per community; NaN where no reviews exist.
    n_reviews : ndarray of int
        Review counts (0 where uncovered).
    """
    violence = column_or_1d(violence_score, name="violence_score", dtype=np.float64)
    protected = column_or_1d(protected, name="protected").astype(bool)
    if len(violence) != len(protected):
        raise DatasetError("violence_score and protected must align")
    if not 0.0 < coverage <= 1.0:
        raise DatasetError(f"coverage must be in (0, 1]; got {coverage}")
    if mean_reviews <= 0:
        raise DatasetError(f"mean_reviews must be positive; got {mean_reviews}")

    rng = check_random_state(seed)
    n = len(violence)

    # Rank-normalize violence to [0, 1] so the mapping to stars is robust
    # to the scale of the latent score.
    order = np.argsort(np.argsort(violence))
    violence_unit = order / max(n - 1, 1)

    # Safety perception: 4.5 stars for the safest, 1.5 for the most violent,
    # plus the resident positivity bias for protected communities.
    true_mean = 4.5 - 3.0 * violence_unit + protected_bias * protected
    covered = rng.random(n) < coverage
    n_reviews = np.where(covered, rng.poisson(mean_reviews, size=n) + 1, 0)

    mean_ratings = np.full(n, np.nan)
    for i in np.flatnonzero(covered):
        reviews = true_mean[i] + rng.normal(0.0, noise, size=n_reviews[i])
        reviews = np.clip(np.round(reviews), 1, 5)
        mean_ratings[i] = float(reviews.mean())
    return mean_ratings, n_reviews


def rating_equivalence_classes(mean_ratings, *, resolution: float = 1.0) -> np.ndarray:
    """Discretize mean ratings into equivalence classes (Definition 1).

    Parameters
    ----------
    mean_ratings:
        Mean star ratings; NaN = no judgment (no equivalence class).
    resolution:
        Class width in stars (1.0 = whole stars, 0.5 = half stars).

    Returns
    -------
    ndarray of int64
        Class index per community; -1 marks communities without reviews.
    """
    ratings = column_or_1d(mean_ratings, name="mean_ratings", dtype=np.float64)
    if resolution <= 0:
        raise DatasetError(f"resolution must be positive; got {resolution}")
    classes = np.full(len(ratings), -1, dtype=np.int64)
    observed = ~np.isnan(ratings)
    classes[observed] = np.round(ratings[observed] / resolution).astype(np.int64)
    return classes
