"""Stratified train/test splitting for :class:`~repro.datasets.Dataset`.

The paper's evaluation protocol (§4.1) holds out a test set whose label
and protected-group composition matches the full workload — a plain
shuffled split drifts both proportions, which skews every group-rate
metric downstream. :func:`train_test_split` stratifies on the *joint*
distribution of any combination of the label, the protected attribute,
and arbitrary feature columns, allocating per-stratum test counts by the
largest-remainder method so the overall test size is hit exactly while
every stratum contributes proportionally.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from .base import Dataset

__all__ = ["train_test_split"]


def _stratum_column(dataset: Dataset, key) -> np.ndarray:
    """Resolve one ``stratify_on`` entry to a length-n value array."""
    if isinstance(key, str):
        if key == "y":
            return dataset.y
        if key == "s":
            return dataset.s
        if key in dataset.feature_names:
            return dataset.X[:, dataset.feature_names.index(key)]
        raise DatasetError(
            f"unknown stratification key {key!r}: expected 'y', 's' or one "
            f"of the feature names {list(dataset.feature_names)}"
        )
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        if not 0 <= key < dataset.n_features:
            raise DatasetError(
                f"stratification column {key} out of range for "
                f"{dataset.n_features} features"
            )
        return dataset.X[:, int(key)]
    raise DatasetError(
        f"stratification keys must be 'y', 's', a feature name or a column "
        f"index; got {key!r}"
    )


def train_test_split(
    dataset: Dataset,
    *,
    test_size: float | int = 0.25,
    seed: int = 0,
    stratify_on=("y", "s"),
) -> tuple[Dataset, Dataset]:
    """Split ``dataset`` into (train, test), stratified on a joint key.

    Parameters
    ----------
    dataset:
        The workload to split.
    test_size:
        Test fraction in ``(0, 1)``, or an absolute row count in
        ``[1, n-1]``. The returned test set hits this size exactly.
    seed:
        Shuffling seed; splits are deterministic given (seed, inputs).
    stratify_on:
        Keys whose *joint* value defines the strata: ``"y"`` (label),
        ``"s"`` (protected group), any entry of ``feature_names``, or an
        integer column index of ``X``. The default ``("y", "s")`` is the
        paper's protocol — label and group composition both preserved.
        Pass ``()`` for a plain shuffled split.

    Returns
    -------
    (train, test):
        Two :class:`Dataset` views built via :meth:`Dataset.subset`, rows
        in original order within each side. Per-stratum test counts are
        assigned by largest remainder, so each stratum's share of the
        test set is within one row of exactly proportional — strata too
        small to earn a row stay entirely in train.
    """
    n = dataset.n_samples
    if isinstance(test_size, (int, np.integer)) and not isinstance(test_size, bool):
        n_test = int(test_size)
        if not 1 <= n_test <= n - 1:
            raise DatasetError(
                f"test_size={test_size} rows must be in [1, {n - 1}] for a "
                f"{n}-row dataset"
            )
    else:
        fraction = float(test_size)
        if not 0.0 < fraction < 1.0:
            raise DatasetError(
                f"test_size must be a fraction in (0, 1) or an absolute row "
                f"count; got {test_size!r}"
            )
        n_test = int(round(fraction * n))
        if not 1 <= n_test <= n - 1:
            raise DatasetError(
                f"test_size={fraction} leaves an empty side of a {n}-row "
                "dataset; pass an absolute count instead"
            )

    keys = tuple(stratify_on) if stratify_on is not None else ()
    if keys:
        columns = np.column_stack(
            [np.asarray(_stratum_column(dataset, key)) for key in keys]
        )
        _, strata = np.unique(columns, axis=0, return_inverse=True)
    else:
        strata = np.zeros(n, dtype=np.int64)
    n_strata = int(strata.max()) + 1
    counts = np.bincount(strata, minlength=n_strata)

    # Largest-remainder allocation: every stratum gets the floor of its
    # exact proportional share, and the leftover rows go to the largest
    # fractional remainders (ties broken by stratum index, so the split
    # is deterministic across numpy versions).
    exact = counts * (n_test / n)
    base = np.floor(exact).astype(np.int64)
    remainder = exact - base
    leftover = n_test - int(base.sum())
    if leftover > 0:
        order = np.lexsort((np.arange(n_strata), -remainder))
        for stratum in order[:leftover]:
            base[stratum] += 1
    # floor(share) <= count always, and each +1 goes to a stratum whose
    # remainder is positive (share was fractional), so base <= counts.

    rng = np.random.default_rng(seed)
    test_mask = np.zeros(n, dtype=bool)
    for stratum in range(n_strata):
        members = np.flatnonzero(strata == stratum)
        take = int(base[stratum])
        if take == 0:
            continue
        test_mask[rng.permutation(members)[:take]] = True

    test_indices = np.flatnonzero(test_mask)
    train_indices = np.flatnonzero(~test_mask)
    return dataset.subset(train_indices), dataset.subset(test_indices)
