"""Synthetic US-graduate-admissions workload (paper §4.2.1).

Two equal groups of candidates with identical GPA distributions but a
shifted SAT distribution for the non-protected group (who can afford to
retake the test):

    group s=0:  (GPA, SAT) ~ N([100, 110], [[25, -5], [-5, 25]])
    group s=1:  (GPA, SAT) ~ N([100, 100], [[25, -5], [-5, 25]])

Both groups are equally deserving after adjusting SAT: the true label is

    s=0: positive iff GPA + SAT >= 210
    s=1: positive iff GPA + SAT >= 200

With GPA+SAT ~ N(210, 40) and N(200, 40) respectively, both base rates are
0.5 in expectation — matching Table 1's 0.51 / 0.48 up to sampling noise.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_random_state
from ..exceptions import DatasetError
from .base import Dataset

__all__ = ["simulate_admissions", "ADMISSIONS_FEATURES"]

ADMISSIONS_FEATURES = ("gpa", "sat", "race")

_MEAN_S0 = np.array([100.0, 110.0])
_MEAN_S1 = np.array([100.0, 100.0])
_COV = np.array([[25.0, -5.0], [-5.0, 25.0]])
_THRESHOLD_S0 = 210.0
_THRESHOLD_S1 = 200.0


def simulate_admissions(
    n_per_group: int = 300,
    *,
    seed=0,
    shuffle: bool = True,
) -> Dataset:
    """Generate the paper's synthetic admissions dataset.

    Parameters
    ----------
    n_per_group:
        Individuals per group (the paper uses 300 + 300 = 600).
    seed:
        Generator seed — the dataset is a pure function of it.
    shuffle:
        Interleave the two groups (otherwise rows are grouped by ``s``).

    Returns
    -------
    Dataset
        Features ``(gpa, sat, race)`` with ``race`` the protected column,
        binary label "is successful".
    """
    if n_per_group < 2:
        raise DatasetError(f"n_per_group must be >= 2; got {n_per_group}")
    rng = check_random_state(seed)

    features_s0 = rng.multivariate_normal(_MEAN_S0, _COV, size=n_per_group)
    features_s1 = rng.multivariate_normal(_MEAN_S1, _COV, size=n_per_group)

    y_s0 = (features_s0.sum(axis=1) >= _THRESHOLD_S0).astype(np.int64)
    y_s1 = (features_s1.sum(axis=1) >= _THRESHOLD_S1).astype(np.int64)

    X = np.vstack([features_s0, features_s1])
    y = np.concatenate([y_s0, y_s1])
    s = np.concatenate(
        [np.zeros(n_per_group, dtype=np.int64), np.ones(n_per_group, dtype=np.int64)]
    )

    if shuffle:
        order = rng.permutation(len(y))
        X, y, s = X[order], y[order], s[order]

    X = np.column_stack([X, s.astype(np.float64)])
    return Dataset(
        name="synthetic",
        X=X,
        y=y,
        s=s,
        feature_names=ADMISSIONS_FEATURES,
        protected_columns=(2,),
        side_information=None,
        side_information_name=(
            "within-group logistic-regression ranking (derived at runtime, §4.2.1)"
        ),
        metadata={
            "seed": seed,
            "thresholds": {"s0": _THRESHOLD_S0, "s1": _THRESHOLD_S1},
            "generator": "simulate_admissions",
        },
    )
