"""Synthetic US-graduate-admissions workload (paper §4.2.1).

Two equal groups of candidates with identical GPA distributions but a
shifted SAT distribution for the non-protected group (who can afford to
retake the test):

    group s=0:  (GPA, SAT) ~ N([100, 110], [[25, -5], [-5, 25]])
    group s=1:  (GPA, SAT) ~ N([100, 100], [[25, -5], [-5, 25]])

Both groups are equally deserving after adjusting SAT: the true label is

    s=0: positive iff GPA + SAT >= 210
    s=1: positive iff GPA + SAT >= 200

With GPA+SAT ~ N(210, 40) and N(200, 40) respectively, both base rates are
0.5 in expectation — matching Table 1's 0.51 / 0.48 up to sampling noise.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_random_state
from ..exceptions import DatasetError
from .base import Dataset

__all__ = ["simulate_admissions", "simulate_blobs", "ADMISSIONS_FEATURES"]

ADMISSIONS_FEATURES = ("gpa", "sat", "race")

_MEAN_S0 = np.array([100.0, 110.0])
_MEAN_S1 = np.array([100.0, 100.0])
_COV = np.array([[25.0, -5.0], [-5.0, 25.0]])
_THRESHOLD_S0 = 210.0
_THRESHOLD_S1 = 200.0


def simulate_admissions(
    n_per_group: int = 300,
    *,
    seed=0,
    shuffle: bool = True,
) -> Dataset:
    """Generate the paper's synthetic admissions dataset.

    Parameters
    ----------
    n_per_group:
        Individuals per group (the paper uses 300 + 300 = 600).
    seed:
        Generator seed — the dataset is a pure function of it.
    shuffle:
        Interleave the two groups (otherwise rows are grouped by ``s``).

    Returns
    -------
    Dataset
        Features ``(gpa, sat, race)`` with ``race`` the protected column,
        binary label "is successful".
    """
    if n_per_group < 2:
        raise DatasetError(f"n_per_group must be >= 2; got {n_per_group}")
    rng = check_random_state(seed)

    features_s0 = rng.multivariate_normal(_MEAN_S0, _COV, size=n_per_group)
    features_s1 = rng.multivariate_normal(_MEAN_S1, _COV, size=n_per_group)

    y_s0 = (features_s0.sum(axis=1) >= _THRESHOLD_S0).astype(np.int64)
    y_s1 = (features_s1.sum(axis=1) >= _THRESHOLD_S1).astype(np.int64)

    X = np.vstack([features_s0, features_s1])
    y = np.concatenate([y_s0, y_s1])
    s = np.concatenate(
        [np.zeros(n_per_group, dtype=np.int64), np.ones(n_per_group, dtype=np.int64)]
    )

    if shuffle:
        order = rng.permutation(len(y))
        X, y, s = X[order], y[order], s[order]

    X = np.column_stack([X, s.astype(np.float64)])
    return Dataset(
        name="synthetic",
        X=X,
        y=y,
        s=s,
        feature_names=ADMISSIONS_FEATURES,
        protected_columns=(2,),
        side_information=None,
        side_information_name=(
            "within-group logistic-regression ranking (derived at runtime, §4.2.1)"
        ),
        metadata={
            "seed": seed,
            "thresholds": {"s0": _THRESHOLD_S0, "s1": _THRESHOLD_S1},
            "generator": "simulate_admissions",
        },
    )


def simulate_blobs(
    n_samples: int = 10_000,
    *,
    n_features: int = 8,
    n_clusters: int = 6,
    cluster_std: float = 1.0,
    group_shift: float = 1.0,
    seed=0,
) -> Dataset:
    """Large-n Gaussian-blob workload for the landmark-Nyström scaling path.

    The paper's workloads top out at COMPAS scale (n ≈ 9k); the ROADMAP's
    "millions of users" target needs something that generates 100k+ rows in
    milliseconds with enough cluster structure that landmark selection
    (:func:`repro.core.select_landmarks`) has geometry to exploit. Each
    individual is drawn from one of ``n_clusters`` isotropic Gaussians; a
    binary protected group shifts the first feature by ``group_shift``
    (the protected signal every fair representation must suppress), and
    the fairness side information is a within-group merit score — a fixed
    linear projection of the non-protected features — so quantile fairness
    graphs behave exactly as on the paper's workloads.

    Parameters
    ----------
    n_samples:
        Total rows; the generator is O(n · n_features) and comfortably
        produces 100k+ rows.
    n_features:
        Non-protected feature count (the protected indicator is appended
        as the last column).
    n_clusters:
        Number of Gaussian blobs.
    cluster_std:
        Isotropic standard deviation within each blob.
    group_shift:
        Mean shift of the first feature for the protected group.
    seed:
        Generator seed — the dataset is a pure function of it.

    Returns
    -------
    Dataset
        ``name="blobs"``, features ``(f0..f{k-1}, group)`` with ``group``
        protected, binary label "above own group's median merit", and the
        merit score as side information.
    """
    if n_samples < 4:
        raise DatasetError(f"n_samples must be >= 4; got {n_samples}")
    if n_features < 2:
        raise DatasetError(f"n_features must be >= 2; got {n_features}")
    if n_clusters < 1:
        raise DatasetError(f"n_clusters must be >= 1; got {n_clusters}")
    rng = check_random_state(seed)

    centers = rng.normal(scale=4.0, size=(n_clusters, n_features))
    assignment = rng.integers(0, n_clusters, size=n_samples)
    features = centers[assignment] + rng.normal(
        scale=cluster_std, size=(n_samples, n_features)
    )
    s = rng.integers(0, 2, size=n_samples).astype(np.int64)
    features[:, 0] += group_shift * s

    # Within-group merit: one fixed projection of the non-protected
    # features plus noise; labels compare against the own group's median so
    # both base rates are 0.5 by construction (comparable to Table 1).
    direction = rng.normal(size=n_features)
    direction /= np.linalg.norm(direction)
    merit = features @ direction + rng.normal(scale=0.25, size=n_samples)
    y = np.zeros(n_samples, dtype=np.int64)
    for value in (0, 1):
        members = s == value
        if members.any():
            y[members] = (merit[members] >= np.median(merit[members])).astype(
                np.int64
            )

    X = np.column_stack([features, s.astype(np.float64)])
    feature_names = tuple(f"f{i}" for i in range(n_features)) + ("group",)
    return Dataset(
        name="blobs",
        X=X,
        y=y,
        s=s,
        feature_names=feature_names,
        protected_columns=(n_features,),
        side_information=merit,
        side_information_name="within-group merit score (fixed projection)",
        metadata={
            "seed": seed,
            "n_clusters": n_clusters,
            "cluster_std": cluster_std,
            "group_shift": group_shift,
            "generator": "simulate_blobs",
        },
    )
