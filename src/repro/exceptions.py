"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "ValidationError",
    "ConvergenceError",
    "DatasetError",
    "GraphConstructionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NotFittedError(ReproError):
    """An estimator method requiring a fitted model was called before ``fit``."""


class ValidationError(ReproError, ValueError):
    """An input array or argument failed validation.

    Inherits from :class:`ValueError` so generic callers that guard with
    ``except ValueError`` keep working.
    """


class ConvergenceError(ReproError):
    """An iterative optimization failed to converge within its budget."""


class DatasetError(ReproError):
    """A dataset could not be loaded, generated, or is internally inconsistent."""


class GraphConstructionError(ReproError):
    """A similarity or fairness graph could not be constructed from the inputs."""
