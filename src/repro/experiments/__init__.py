"""Experiment harness and per-figure reproduction drivers (paper §4)."""

from .builders import build_fairness_graph, build_fit_plan, fairness_side_scores
from .config import EXPERIMENTS, ExperimentSpec, get_experiment
from .figures import (
    DEFAULT_GAMMAS,
    REAL_METHODS,
    SYNTHETIC_METHODS,
    FigureResult,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
)
from .harness import ExperimentHarness, MethodResult, within_group_ranking_scores
from .pareto import pareto_front, tradeoff_frontier
from .repetition import (
    AggregateResult,
    repeat_gamma_sweep,
    repeat_method,
    repeat_methods,
)
from .tuning import apply_tuned, default_grid, tune_methods
from .report import (
    render_bars,
    render_decision_field,
    render_grouped_bars,
    render_scatter,
    render_series,
    render_table,
)

__all__ = [
    "build_fairness_graph",
    "build_fit_plan",
    "fairness_side_scores",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "DEFAULT_GAMMAS",
    "REAL_METHODS",
    "SYNTHETIC_METHODS",
    "FigureResult",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "table1",
    "ExperimentHarness",
    "MethodResult",
    "within_group_ranking_scores",
    "apply_tuned",
    "default_grid",
    "tune_methods",
    "pareto_front",
    "tradeoff_frontier",
    "AggregateResult",
    "repeat_gamma_sweep",
    "repeat_method",
    "repeat_methods",
    "render_bars",
    "render_decision_field",
    "render_grouped_bars",
    "render_scatter",
    "render_series",
    "render_table",
]
