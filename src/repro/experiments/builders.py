"""Public fairness-graph construction for the three workloads.

The experiment harness needs a ``WF`` per workload; downstream users need
exactly the same logic without instantiating a harness. This module is that
shared, documented entry point:

* **synthetic** — within-group logistic-regression rankings pooled into
  quantiles (§4.2.1);
* **compas** — Northpointe-style decile scores pooled into within-group
  quantiles (§4.3.1, incomparable groups);
* **crime** — resident star ratings rounded into equivalence classes
  (§4.3.1, comparable individuals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..datasets.base import Dataset
from ..datasets.ratings import rating_equivalence_classes
from ..exceptions import ValidationError
from ..graphs import between_group_quantile_graph, equivalence_class_graph
from ..ml import LogisticRegression, StandardScaler

__all__ = [
    "build_fairness_graph",
    "build_fit_plan",
    "fairness_side_scores",
    "make_workload",
    "WorkloadFactory",
]

# Paper (Table 1) sizes per workload: one count for the synthetic
# admissions draw, (negative, positive)-style pair for the two-group
# simulations.
_WORKLOAD_SIZES = {
    "synthetic": (300,),
    "crime": (1423, 570),
    "compas": (4218, 4585),
}


def _scaled(count: int, scale: float) -> int:
    if not 0.0 < scale <= 1.0:
        raise ValidationError(f"scale must be in (0, 1]; got {scale}")
    return max(20, int(round(count * scale)))


def make_workload(name: str, *, seed: int = 0, scale: float = 1.0) -> Dataset:
    """Instantiate one of the paper's three workloads at a size fraction.

    ``name`` is ``"synthetic"``, ``"crime"`` or ``"compas"``; ``scale``
    shrinks the Table 1 sizes for quick runs (floor 20 rows per count).
    The figure drivers, the workload reports, and the CLI's
    ``experiments`` commands all build their datasets here.
    """
    from ..datasets import simulate_admissions, simulate_compas, simulate_crime

    if name not in _WORKLOAD_SIZES:
        raise ValidationError(f"unknown dataset {name!r}")
    sizes = tuple(_scaled(count, scale) for count in _WORKLOAD_SIZES[name])
    if name == "synthetic":
        dataset = simulate_admissions(*sizes, seed=seed)
    elif name == "crime":
        dataset = simulate_crime(*sizes, seed=seed)
    else:
        dataset = simulate_compas(*sizes, seed=seed)
    # Human-readable provenance for run-ledger task descriptors: the
    # ledger keys on the dataset *content* (repro.store.dataset_fingerprint
    # hashes the arrays), but `repro store ls` readers want to know which
    # workload draw a digest came from without reversing a hash.
    dataset.metadata.setdefault(
        "provenance",
        {"workload": name, "seed": int(seed), "scale": float(scale)},
    )
    return dataset


@dataclass(frozen=True)
class WorkloadFactory:
    """Picklable ``f(seed) -> Dataset`` for a named workload.

    The ``repeat_*`` functions take a per-seed dataset factory; a lambda
    works, but this frozen dataclass is a declarative, picklable
    equivalent that survives process boundaries and round-trips through
    configuration — the CLI's ``experiments repeat`` builds one from its
    arguments.
    """

    name: str
    scale: float = 1.0

    def __post_init__(self):
        if self.name not in _WORKLOAD_SIZES:
            raise ValidationError(f"unknown dataset {self.name!r}")

    def __call__(self, seed: int) -> Dataset:
        return make_workload(self.name, seed=seed, scale=self.scale)


def fairness_side_scores(dataset: Dataset, *, train_indices=None) -> np.ndarray:
    """Per-individual side information behind the workload's fairness graph.

    For workloads that ship side information (COMPAS decile scores, Crime
    mean ratings) this simply returns it. For the synthetic workload the
    paper derives scores at runtime: a logistic-regression ranker is fitted
    *per group* — on the ``train_indices`` rows when given, to keep test
    labels out of the judgments — and every individual is scored by their
    within-group model.
    """
    if dataset.side_information is not None:
        return np.asarray(dataset.side_information, dtype=np.float64)

    X_plain = dataset.nonprotected_view()
    fit_rows = (
        np.asarray(train_indices, dtype=np.int64)
        if train_indices is not None
        else np.arange(dataset.n_samples)
    )
    scaler = StandardScaler().fit(X_plain[fit_rows])
    X_scaled = scaler.transform(X_plain)
    scores = np.empty(dataset.n_samples, dtype=np.float64)
    for value in np.unique(dataset.s):
        members = np.flatnonzero(dataset.s == value)
        train_members = np.intersect1d(members, fit_rows)
        if len(train_members) < 2:
            raise ValidationError(
                f"group {value!r} has fewer than 2 training individuals"
            )
        model = LogisticRegression().fit(
            X_scaled[train_members], dataset.y[train_members]
        )
        scores[members] = model.predict_proba(X_scaled[members])[:, 1]
    return scores


def build_fairness_graph(
    dataset: Dataset,
    *,
    n_quantiles: int = 10,
    rating_resolution: float = 1.0,
    train_indices=None,
    scores=None,
) -> sp.csr_matrix:
    """Workload-appropriate fairness graph ``WF`` over the full population.

    Parameters
    ----------
    dataset:
        One of the three workloads (dispatches on ``dataset.name``:
        ``"crime"`` uses the equivalence-class construction, everything
        else the between-group quantile construction).
    n_quantiles:
        Quantile count for the quantile graph.
    rating_resolution:
        Star-class width for the Crime equivalence classes.
    train_indices:
        Rows allowed to influence runtime-derived scores (synthetic).
    scores:
        Precomputed side scores (skips :func:`fairness_side_scores`).

    Returns
    -------
    scipy.sparse.csr_matrix
        Binary symmetric adjacency; individuals without side information
        are isolated.
    """
    if scores is None:
        scores = fairness_side_scores(dataset, train_indices=train_indices)
    scores = np.asarray(scores, dtype=np.float64)
    observed = ~np.isnan(scores)
    if dataset.name == "crime":
        classes = rating_equivalence_classes(scores, resolution=rating_resolution)
        return equivalence_class_graph(classes, mask=observed)
    return between_group_quantile_graph(
        scores, dataset.s, n_quantiles=n_quantiles, mask=observed
    )


def build_fit_plan(
    dataset: Dataset,
    *,
    estimator=None,
    n_quantiles: int = 10,
    rating_resolution: float = 1.0,
    train_indices=None,
    scores=None,
    w_x=None,
    landmarks: int | None = None,
    landmark_strategy: str = "kmeans++",
    landmark_seed: int = 0,
):
    """Sweep-ready fit plan for one workload.

    Builds the workload's fairness graph (:func:`build_fairness_graph`) and
    stages the whole PFR precomputation over ``dataset.X`` in one call, so
    downstream code can run γ/d sweeps without an
    :class:`~repro.experiments.ExperimentHarness`::

        plan = build_fit_plan(simulate_crime(498, 200, seed=0))
        evals, V = plan.solve(gamma=0.9, d=4)

    Returns an exact :class:`~repro.core.SpectralFitPlan` by default and a
    :class:`~repro.core.LandmarkPlan` when ``landmarks`` (or an estimator
    with ``extension="nystrom"``) asks for the Nyström scaling path —
    that's how γ-sweeps run on workloads far beyond the paper's n.

    Parameters
    ----------
    dataset:
        One of the workloads (including :func:`~repro.datasets.simulate_blobs`
        for large-n exercises).
    estimator:
        Template :class:`~repro.core.PFR` / :class:`~repro.core.KernelPFR`
        supplying the structural hyper-parameters; defaults to a
        ``PFR`` whose k-NN distances exclude the dataset's protected
        columns (the paper's ``WX`` definition, §3.1).
    n_quantiles, rating_resolution, train_indices, scores:
        Forwarded to :func:`build_fairness_graph`.
    w_x:
        Optional precomputed data graph, bypassing the plan's k-NN stage.
    landmarks, landmark_strategy, landmark_seed:
        Landmark-Nyström knobs applied to the default template (ignored
        when an explicit ``estimator`` is passed — configure it directly).
    """
    from ..core import PFR, plan_for_estimator

    w_fair = build_fairness_graph(
        dataset,
        n_quantiles=n_quantiles,
        rating_resolution=rating_resolution,
        train_indices=train_indices,
        scores=scores,
    )
    if estimator is None:
        approx = {}
        if landmarks is not None:
            approx = dict(
                extension="nystrom",
                landmarks=int(landmarks),
                landmark_strategy=landmark_strategy,
                landmark_seed=landmark_seed,
            )
        estimator = PFR(
            exclude_columns=list(dataset.protected_columns), **approx
        )
    return plan_for_estimator(estimator, dataset.X, w_fair, w_x=w_x)
