"""Registry of the paper's experiments (the per-experiment index of DESIGN.md).

Each entry ties a table/figure of the paper to the driver that regenerates
it, the workload it runs on, and the qualitative claims ("shapes") the
reproduction is expected to exhibit. Benchmarks and EXPERIMENTS.md are both
generated from this registry so the three stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import figures

__all__ = ["PaperExperiment", "ExperimentSpec", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class PaperExperiment:
    """One reproducible paper experiment (a table or figure of §4).

    Renamed from ``ExperimentSpec`` so the name cannot be confused with
    the declarative :class:`~repro.experiments.RunSpec` scenario matrix;
    ``ExperimentSpec`` remains as a deprecated alias.

    Attributes
    ----------
    experiment_id:
        Paper identifier (``table1``, ``figure2``, ...).
    title:
        What the paper shows.
    dataset:
        Workload name (``synthetic``, ``crime``, ``compas`` or ``all``).
    driver:
        Zero-argument-friendly callable ``f(*, seed, scale, ...)`` from
        :mod:`repro.experiments.figures`.
    expected_shapes:
        The qualitative claims the reproduction should reproduce (checked
        by the integration tests and recorded in EXPERIMENTS.md).
    bench_module:
        The benchmark file that regenerates the experiment.
    """

    experiment_id: str
    title: str
    dataset: str
    driver: object
    expected_shapes: tuple
    bench_module: str


#: Deprecated alias (pre-PR-5 name); prefer :class:`PaperExperiment`.
ExperimentSpec = PaperExperiment


EXPERIMENTS = {
    "table1": PaperExperiment(
        "table1",
        "Experimental setting and statistics of the datasets",
        "all",
        figures.table1,
        (
            "synthetic: 600 individuals, 300/300, base rates ≈ 0.51/0.48",
            "crime: 1993 communities, 1423/570, base rates ≈ 0.35/0.86",
            "compas: 8803 offenders, 4218/4585, base rates ≈ 0.41/0.55",
        ),
        "benchmarks/bench_table1_datasets.py",
    ),
    "figure1": PaperExperiment(
        "figure1",
        "Learned 2-D representations on the synthetic dataset",
        "synthetic",
        figures.figure1,
        (
            "original: groups separated (cross-group distance ratio > 1)",
            "ifair/lfr/pfr: groups well-mixed (ratio ≈ 1)",
            "pfr only: deserving individuals of both groups aligned",
        ),
        "benchmarks/bench_fig1_representations.py",
    ),
    "figure2": PaperExperiment(
        "figure2",
        "Synthetic: utility vs. individual fairness per method",
        "synthetic",
        figures.figure2,
        (
            "PFR wins Consistency(WF) by a wide margin",
            "PFR AUC >= other learned representations",
            "all methods reach high Consistency(WX)",
        ),
        "benchmarks/bench_fig2_synthetic_tradeoff.py",
    ),
    "figure3": PaperExperiment(
        "figure3",
        "Synthetic: per-group positive-prediction and error rates",
        "synthetic",
        figures.figure3,
        (
            "original: substantial parity and error-rate gaps",
            "pfr: near-equal positive rates and error rates, comparable to hardt",
        ),
        "benchmarks/bench_fig3_synthetic_group_fairness.py",
    ),
    "figure4": PaperExperiment(
        "figure4",
        "Synthetic: influence of gamma",
        "synthetic",
        figures.figure4,
        (
            "gamma ↑ ⇒ Consistency(WF) ↑",
            "gamma ↑ ⇒ Consistency(WX) ↓",
            "gamma ↑ ⇒ AUC ↑ (fairness graph aligned with ground truth)",
        ),
        "benchmarks/bench_fig4_synthetic_gamma.py",
    ),
    "figure5": PaperExperiment(
        "figure5",
        "Crime: utility vs. individual fairness (augmented baselines)",
        "crime",
        figures.figure5,
        (
            "PFR wins Consistency(WF)",
            "PFR pays some AUC and Consistency(WX) relative to Original+",
        ),
        "benchmarks/bench_fig5_crime_tradeoff.py",
    ),
    "figure6": PaperExperiment(
        "figure6",
        "Crime: group fairness (incl. Hardt+)",
        "crime",
        figures.figure6,
        (
            "PFR: near-equal positive rates across groups",
            "PFR error-rate balance comparable to Hardt+",
        ),
        "benchmarks/bench_fig6_crime_group_fairness.py",
    ),
    "figure7": PaperExperiment(
        "figure7",
        "Crime: influence of gamma",
        "crime",
        figures.figure7,
        (
            "gamma ↑ ⇒ Consistency(WF) ↑, Consistency(WX) ↓",
            "gamma ↑ ⇒ overall AUC ↓ while the group AUC gap narrows",
        ),
        "benchmarks/bench_fig7_crime_gamma.py",
    ),
    "figure8": PaperExperiment(
        "figure8",
        "COMPAS: utility vs. individual fairness (augmented baselines)",
        "compas",
        figures.figure8,
        (
            "PFR comparable to other learned representations on AUC and "
            "individual fairness (§4.3.3: 'performs similarly')",
            "PFR beats the unconstrained baselines on Consistency(WF)",
        ),
        "benchmarks/bench_fig8_compas_tradeoff.py",
    ),
    "figure9": PaperExperiment(
        "figure9",
        "COMPAS: group fairness (incl. Hardt+)",
        "compas",
        figures.figure9,
        (
            "PFR: near-equal positive rates and error rates, as good as Hardt+",
        ),
        "benchmarks/bench_fig9_compas_group_fairness.py",
    ),
    "figure10": PaperExperiment(
        "figure10",
        "COMPAS: influence of gamma",
        "compas",
        figures.figure10,
        (
            "gamma ↑ ⇒ Consistency(WF) ↑, Consistency(WX) ↓",
            "gamma ↑ ⇒ overall AUC ↓, protected-group AUC gap narrows",
        ),
        "benchmarks/bench_fig10_compas_gamma.py",
    ),
}


def get_experiment(experiment_id: str) -> PaperExperiment:
    """Look up an experiment by its paper identifier."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]
