"""Drivers that regenerate every table and figure of the paper (§4).

Each ``figure*``/``table1`` function runs the corresponding experiment and
returns a :class:`FigureResult` whose ``data`` holds the exact series the
paper plots and whose ``text`` is an ASCII rendering. Dataset sizes default
to the paper's (Table 1) and can be scaled down with ``scale`` for quick
runs; all functions are deterministic in ``seed``.

Figure → experiment map (see DESIGN.md §4 for the full index):

* ``table1``  — dataset statistics.
* ``figure1`` — learned 2-D representations on the synthetic workload.
* ``figure2`` — synthetic utility vs. individual fairness bars.
* ``figure3`` — synthetic group fairness (positive rates, error rates).
* ``figure4`` — synthetic γ sweep.
* ``figure5``–``figure7`` — Crime & Communities counterparts.
* ``figure8``–``figure10`` — COMPAS counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from .builders import make_workload
from .harness import ExperimentHarness
from .report import (
    render_bars,
    render_decision_field,
    render_grouped_bars,
    render_series,
    render_table,
)

__all__ = [
    "FigureResult",
    "workload_harness",
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "SYNTHETIC_METHODS",
    "REAL_METHODS",
    "DEFAULT_GAMMAS",
]

SYNTHETIC_METHODS = ("original", "ifair", "lfr", "pfr")
REAL_METHODS = ("original+", "ifair+", "lfr+", "pfr")
DEFAULT_GAMMAS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


@dataclass
class FigureResult:
    """One regenerated table/figure: structured series + ASCII rendering."""

    figure_id: str
    description: str
    data: dict = field(repr=False)
    text: str = field(repr=False)

    def render(self) -> str:
        """Human-readable reproduction of the figure."""
        header = f"== {self.figure_id}: {self.description} =="
        return f"{header}\n{self.text}"


def workload_harness(
    name: str, *, seed: int = 0, scale: float = 1.0, **kwargs
) -> ExperimentHarness:
    """An :class:`ExperimentHarness` at a workload's tuned operating point.

    Operating points found by the tuning protocol (``harness.tune``) on
    the default seeds; the γ-sweep figures override gamma explicitly. The
    LFR parity weight is lowered on the real workloads — the library
    default (Zemel et al.'s a_z=50) collapses its predictions there,
    producing trivially-high consistency with near-random AUC. Extra
    keyword arguments override the defaults (e.g. ``landmarks=...`` for
    the Nyström path).
    """
    defaults = {
        "synthetic": {"n_components": 2},
        "crime": {
            "n_components": 2,
            "method_overrides": {"lfr": {"a_z": 1.0, "a_x": 0.1}},
        },
        "compas": {"n_components": 3, "method_overrides": {"lfr": {"a_z": 1.0}}},
    }
    if name not in defaults:
        raise ValidationError(f"unknown dataset {name!r}")
    merged = {**defaults[name], **kwargs}
    return ExperimentHarness(make_workload(name, seed=seed, scale=scale),
                             seed=seed, **merged)


# Internal alias kept for the figure drivers below.
_harness = workload_harness


_DATASET_GAMMA = {"synthetic": 0.9, "crime": 1.0, "compas": 1.0}


# ---------------------------------------------------------------------------
# Table 1 — dataset statistics
# ---------------------------------------------------------------------------

def table1(*, seed: int = 0, scale: float = 1.0) -> FigureResult:
    """Regenerate Table 1: per-dataset sizes and base rates."""
    rows = []
    for name in ("synthetic", "crime", "compas"):
        row = make_workload(name, seed=seed, scale=scale).table1_row()
        rows.append(
            [
                row["dataset"],
                row["n"],
                row["n_s0"],
                row["n_s1"],
                row["base_rate_s0"],
                row["base_rate_s1"],
            ]
        )
    text = render_table(
        ["Dataset", "|X|", "|X_s=0|", "|X_s=1|", "Base-rate s=0", "Base-rate s=1"],
        rows,
        float_format="{:.2f}",
    )
    return FigureResult(
        figure_id="table1",
        description="Experimental setting and statistics of the datasets",
        data={"rows": rows},
        text=text,
    )


# ---------------------------------------------------------------------------
# Figure 1 — learned representations on the synthetic dataset
# ---------------------------------------------------------------------------

def _representation_geometry(Z, y, s) -> dict:
    """Summary statistics of a 2-D representation (Figure 1's visual claims).

    * ``cross_group_distance``: mean distance between groups, normalized by
      the mean within-group distance — 1.0 means groups are fully mixed.
    * ``deserving_alignment``: same ratio computed only over positive-class
      ("deserving") individuals — PFR's distinguishing property is a value
      near 1.0 here.
    """
    Z = np.asarray(Z, dtype=np.float64)
    spread = Z.std(axis=0)
    spread[spread == 0] = 1.0
    Zn = Z / spread

    def mean_cross(a, b):
        if len(a) == 0 or len(b) == 0:
            return float("nan")
        diff = a[:, None, :] - b[None, :, :]
        return float(np.sqrt((diff**2).sum(axis=2)).mean())

    g0, g1 = Zn[s == 0], Zn[s == 1]
    within = 0.5 * (mean_cross(g0, g0) + mean_cross(g1, g1))
    cross = mean_cross(g0, g1)
    d0, d1 = Zn[(s == 0) & (y == 1)], Zn[(s == 1) & (y == 1)]
    within_deserving = 0.5 * (mean_cross(d0, d0) + mean_cross(d1, d1))
    cross_deserving = mean_cross(d0, d1)
    return {
        "cross_group_distance": cross / within,
        "deserving_alignment": cross_deserving / within_deserving,
    }


def figure1(*, seed: int = 0, scale: float = 1.0) -> FigureResult:
    """Regenerate Figure 1: 2-D representations of the synthetic data.

    Returns per-method 2-D embeddings, the geometry statistics that encode
    the paper's three visual observations, and ASCII plots of the test
    points over each representation's logistic-regression decision field
    (the contours of the paper's panels b-d).
    """
    from ..ml import LogisticRegression, StandardScaler

    harness = _harness(
        "synthetic", seed=seed, scale=scale, n_components=2
    ).prepare()

    representations, geometry, plots = {}, {}, {}
    y, s = harness.y_test, harness.s_test
    categories = np.array(
        [f"s{int(g)}{'+' if label == 1 else 'o'}" for g, label in zip(s, y)]
    )
    for method in SYNTHETIC_METHODS:
        Z_train, Z_test = harness._representation(
            method, gamma=_DATASET_GAMMA["synthetic"], method_params={}
        )
        scaler = StandardScaler().fit(Z_train[:, :2])
        Z2_train = scaler.transform(Z_train[:, :2])
        Z2 = scaler.transform(Z_test[:, :2])
        classifier = LogisticRegression().fit(Z2_train, harness.y_train)
        representations[method] = Z2
        geometry[method] = _representation_geometry(Z2, y, s)
        plots[method] = render_decision_field(
            Z2, categories, lambda grid, c=classifier: c.predict_proba(grid)[:, 1]
        )

    rows = [
        [
            method,
            geometry[method]["cross_group_distance"],
            geometry[method]["deserving_alignment"],
        ]
        for method in SYNTHETIC_METHODS
    ]
    table = render_table(
        ["Method", "cross-group dist (↓1=mixed)", "deserving alignment (↓1=aligned)"],
        rows,
    )
    text = table + "\n\n" + "\n\n".join(
        f"[{method}]\n{plots[method]}" for method in SYNTHETIC_METHODS
    )
    return FigureResult(
        figure_id="figure1",
        description="Learned representations on the synthetic dataset (d=2)",
        data={
            "representations": representations,
            "geometry": geometry,
            "y": y,
            "s": s,
        },
        text=text,
    )


# ---------------------------------------------------------------------------
# Shared drivers for the bar/grouped-bar/sweep figure families
# ---------------------------------------------------------------------------

def _tradeoff_figure(
    figure_id: str,
    dataset: str,
    methods,
    *,
    seed: int,
    scale: float,
    gamma: float | None = None,
    store=None,
) -> FigureResult:
    """Utility-vs-individual-fairness bars (Figures 2, 5, 8).

    ``store`` routes every method cell through the run ledger
    (:mod:`repro.store`): the figure's result dict is rebuilt from ledger
    queries, so regenerating a figure over a populated ledger costs
    decode time, not refits.
    """
    gamma = _DATASET_GAMMA[dataset] if gamma is None else gamma
    harness = _harness(dataset, seed=seed, scale=scale, store=store)
    results = harness.run_methods(methods, gamma=gamma)

    rows = [
        [m, r.auc, r.consistency_wx, r.consistency_wf]
        for m, r in results.items()
    ]
    table = render_table(
        ["Method", "AUC", "Consistency(WX)", "Consistency(WF)"], rows
    )
    bars = "\n\n".join(
        f"[{title}]\n"
        + render_bars(list(results), [getattr(r, attr) for r in results.values()],
                      vmax=1.0)
        for title, attr in (
            ("AUC", "auc"),
            ("Consistency(WX)", "consistency_wx"),
            ("Consistency(WF)", "consistency_wf"),
        )
    )
    return FigureResult(
        figure_id=figure_id,
        description=f"{dataset}: utility vs. individual fairness",
        data={"results": results, "gamma": gamma},
        text=table + "\n\n" + bars,
    )


def _group_fairness_figure(
    figure_id: str,
    dataset: str,
    methods,
    *,
    seed: int,
    scale: float,
    gamma: float | None = None,
    store=None,
) -> FigureResult:
    """Per-group positive rates and error rates (Figures 3, 6, 9)."""
    gamma = _DATASET_GAMMA[dataset] if gamma is None else gamma
    harness = _harness(dataset, seed=seed, scale=scale, store=store)
    results = harness.run_methods(methods, gamma=gamma)

    rows = []
    for method, r in results.items():
        rows.append(
            [
                method,
                r.rates.positive_rate[0],
                r.rates.positive_rate[1],
                r.rates.fpr[0],
                r.rates.fpr[1],
                r.rates.fnr[0],
                r.rates.fnr[1],
            ]
        )
    table = render_table(
        ["Method", "P(ŷ=1)|s=0", "P(ŷ=1)|s=1", "FPR|s=0", "FPR|s=1",
         "FNR|s=0", "FNR|s=1"],
        rows,
    )
    blocks = []
    for method, r in results.items():
        block = render_grouped_bars(
            ["P(ŷ=1)", "FPR", "FNR"],
            {
                "s=0": [r.rates.positive_rate[0], r.rates.fpr[0], r.rates.fnr[0]],
                "s=1": [r.rates.positive_rate[1], r.rates.fpr[1], r.rates.fnr[1]],
            },
            vmax=1.0,
        )
        blocks.append(f"[{method}]\n{block}")
    return FigureResult(
        figure_id=figure_id,
        description=f"{dataset}: group fairness (positive rates and error rates)",
        data={"results": results, "gamma": gamma},
        text=table + "\n\n" + "\n\n".join(blocks),
    )


def _gamma_sweep_figure(
    figure_id: str,
    dataset: str,
    *,
    seed: int,
    scale: float,
    gammas,
    store=None,
) -> FigureResult:
    """γ-sweep of PFR (Figures 4, 7, 10).

    With a ``store``, completed γ points are decoded from the run ledger
    instead of recomputed — extending the sweep's grid re-pays only the
    new points.
    """
    harness = _harness(dataset, seed=seed, scale=scale, store=store)
    sweep = harness.gamma_sweep(gammas, method="pfr")

    series = {
        "consistency_wf": [r.consistency_wf for r in sweep],
        "consistency_wx": [r.consistency_wx for r in sweep],
        "auc_any": [r.auc_by_group["any"] for r in sweep],
        "auc_s0": [r.auc_by_group.get(0, float("nan")) for r in sweep],
        "auc_s1": [r.auc_by_group.get(1, float("nan")) for r in sweep],
    }
    rows = [
        [g, cwf, cwx, a_any, a0, a1]
        for g, cwf, cwx, a_any, a0, a1 in zip(
            gammas,
            series["consistency_wf"],
            series["consistency_wx"],
            series["auc_any"],
            series["auc_s0"],
            series["auc_s1"],
        )
    ]
    table = render_table(
        ["gamma", "Consistency(WF)", "Consistency(WX)", "AUC any", "AUC s=0",
         "AUC s=1"],
        rows,
    )
    charts = "\n\n".join(
        render_series(list(gammas), {name: series[name]}, x_label="gamma")
        for name in ("consistency_wf", "consistency_wx")
    )
    auc_chart = render_series(
        list(gammas),
        {k: series[k] for k in ("auc_any", "auc_s0", "auc_s1")},
        x_label="gamma",
    )
    return FigureResult(
        figure_id=figure_id,
        description=f"{dataset}: influence of gamma on fairness and utility",
        data={"gammas": list(gammas), "series": series, "sweep": sweep},
        text=table + "\n\n" + charts + "\n\n" + auc_chart,
    )


# ---------------------------------------------------------------------------
# The paper's figures
# ---------------------------------------------------------------------------

def figure2(*, seed: int = 0, scale: float = 1.0, store=None) -> FigureResult:
    """Synthetic: AUC / Consistency(WX) / Consistency(WF) per method."""
    return _tradeoff_figure("figure2", "synthetic", SYNTHETIC_METHODS,
                            seed=seed, scale=scale, store=store)


def figure3(*, seed: int = 0, scale: float = 1.0, store=None) -> FigureResult:
    """Synthetic: per-group positive-prediction and error rates (incl. Hardt)."""
    return _group_fairness_figure(
        "figure3", "synthetic", SYNTHETIC_METHODS + ("hardt",),
        seed=seed, scale=scale, store=store,
    )


def figure4(*, seed: int = 0, scale: float = 1.0,
            gammas=DEFAULT_GAMMAS, store=None) -> FigureResult:
    """Synthetic: γ sweep."""
    return _gamma_sweep_figure("figure4", "synthetic", seed=seed, scale=scale,
                               gammas=gammas, store=store)


def figure5(*, seed: int = 0, scale: float = 1.0, store=None) -> FigureResult:
    """Crime & Communities: utility vs. individual fairness (augmented baselines)."""
    return _tradeoff_figure("figure5", "crime", REAL_METHODS,
                            seed=seed, scale=scale, store=store)


def figure6(*, seed: int = 0, scale: float = 1.0, store=None) -> FigureResult:
    """Crime & Communities: group fairness (incl. Hardt+)."""
    return _group_fairness_figure(
        "figure6", "crime", REAL_METHODS + ("hardt+",), seed=seed, scale=scale,
        store=store,
    )


def figure7(*, seed: int = 0, scale: float = 1.0,
            gammas=DEFAULT_GAMMAS, store=None) -> FigureResult:
    """Crime & Communities: γ sweep."""
    return _gamma_sweep_figure("figure7", "crime", seed=seed, scale=scale,
                               gammas=gammas, store=store)


def figure8(*, seed: int = 0, scale: float = 1.0, store=None) -> FigureResult:
    """COMPAS: utility vs. individual fairness (augmented baselines)."""
    return _tradeoff_figure("figure8", "compas", REAL_METHODS,
                            seed=seed, scale=scale, store=store)


def figure9(*, seed: int = 0, scale: float = 1.0, store=None) -> FigureResult:
    """COMPAS: group fairness (incl. Hardt+)."""
    return _group_fairness_figure(
        "figure9", "compas", REAL_METHODS + ("hardt+",), seed=seed, scale=scale,
        store=store,
    )


def figure10(*, seed: int = 0, scale: float = 1.0,
             gammas=DEFAULT_GAMMAS, store=None) -> FigureResult:
    """COMPAS: γ sweep."""
    return _gamma_sweep_figure("figure10", "compas", seed=seed, scale=scale,
                               gammas=gammas, store=store)
