"""Experiment harness implementing the paper's protocol (§4.1).

For every workload the harness:

1. splits the data into train and test (stratified on the label),
2. standardizes features on the training statistics,
3. builds the fairness graph ``WF`` from the workload's side information —
   quantile graph for synthetic/COMPAS, equivalence-class graph for Crime,
4. learns each representation on the *training* rows only,
5. trains an out-of-the-box logistic regression on the representation,
6. evaluates on the untouched test set: AUC, Consistency(``WX``),
   Consistency(``WF``), and per-group positive/error rates.

The paper tunes hyper-parameters with 5-fold grid search on the training
set; :meth:`ExperimentHarness.tune` exposes that machinery, while the
figure drivers use the paper's reported operating points by default to
keep regeneration fast and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    EqualizedOddsPostProcessor,
    IFair,
    LFR,
    MaskedRepresentation,
    SideInformationAugmenter,
)
from ..core import PFR, plan_for_estimator
from ..datasets.base import Dataset
from ..exceptions import ValidationError
from ..graphs import knn_graph
from ..metrics import consistency, group_auc, group_rates, restrict_graph
from ..metrics.group import GroupRates
from ..ml import (
    LogisticRegression,
    StandardScaler,
    roc_auc_score,
    train_test_split,
)
from ..ml.model_selection import ParameterGrid, StratifiedKFold
from .parallel import get_executor

__all__ = [
    "MethodResult",
    "ExperimentHarness",
    "cell_task",
    "within_group_ranking_scores",
]


def cell_task(
    harness_fingerprint: dict, method: str, gamma, C, method_params: dict
) -> dict:
    """Canonical run-ledger task descriptor of one ``run_method`` cell.

    The single definition of a cell's identity, shared by the harness
    (read/write-through) and the spec runner (pre-dispatch skip) — the
    two must agree byte-for-byte or cache hits silently stop happening.
    """
    return {
        "kind": "method_result",
        "harness": harness_fingerprint,
        "method": str(method),
        "gamma": float(gamma),
        "C": float(C),
        "params": method_params,
    }


def _ledger_fetch(ledger, digest: str):
    """A ledger entry that must exist after dispatch; raise clearly if not.

    The only way it can be missing is external interference (a concurrent
    ``repro store gc``, manual deletion) between the worker's write-through
    and the parent's read-back.
    """
    entry = ledger.get(digest)
    if entry is None:
        raise ValidationError(
            f"ledger entry {digest[:12]}… vanished from {ledger.root} "
            "between computation and read-back (concurrent gc or external "
            "deletion?); re-run to recompute the missing cells"
        )
    return entry


# -- executor task functions (module-level so process backends can pickle
#    them by reference; each is a pure function of (state, task)) ----------

def _run_method_task(state, method):
    harness, gamma, kwargs = state
    return harness.run_method(method, gamma=gamma, **kwargs)


def _gamma_sweep_task(state, gamma):
    harness, method, kwargs = state
    return harness.run_method(method, gamma=gamma, **kwargs)


def _tune_grid_task(state, params):
    harness, method, n_splits, scoring = state
    return harness._score_grid_point(
        method, params, n_splits=n_splits, scoring=scoring
    )


def within_group_ranking_scores(X, y, s, *, C: float = 1.0) -> np.ndarray:
    """Within-group ranking via per-group logistic regression (§4.2.1).

    The paper simulates human within-group rankings by fitting "a standard
    logistic regression model" and ranking each group by its predicted
    probability. Fitting one model *per group* keeps the ranking a purely
    within-group judgment, immune to between-group score shifts.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    s = np.asarray(s)
    scores = np.empty(len(y), dtype=np.float64)
    for value in np.unique(s):
        members = np.flatnonzero(s == value)
        model = LogisticRegression(C=C).fit(X[members], y[members])
        scores[members] = model.predict_proba(X[members])[:, 1]
    return scores


@dataclass
class MethodResult:
    """Test-set evaluation of one method on one workload.

    Attributes mirror the quantities the paper plots: utility (AUC),
    individual fairness (consistency against ``WX`` and ``WF``), and group
    fairness (per-group positive-prediction and error rates, per-group AUC).
    """

    method: str
    dataset: str
    auc: float
    consistency_wx: float
    consistency_wf: float
    rates: GroupRates
    auc_by_group: dict
    extras: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """Flat dict for tables/benchmarks."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "auc": round(self.auc, 4),
            "consistency_wx": round(self.consistency_wx, 4),
            "consistency_wf": round(self.consistency_wf, 4),
            "parity_gap": round(self.rates.gap("positive_rate"), 4),
            "fpr_gap": round(self.rates.gap("fpr"), 4),
            "fnr_gap": round(self.rates.gap("fnr"), 4),
        }


class ExperimentHarness:
    """Runs the paper's evaluation protocol on one workload.

    Parameters
    ----------
    dataset:
        A :class:`repro.datasets.Dataset` (synthetic, compas, or crime).
    test_size:
        Held-out fraction (stratified on the label).
    seed:
        Split / method seed; the whole run is a function of it.
    n_quantiles:
        Quantile count for the between-group quantile graph.
    rating_resolution:
        Star-class width for the Crime equivalence-class graph.
    n_neighbors:
        ``p`` of the k-NN data graph ``WX``.
    n_components:
        Latent dimensionality for the representation learners; ``None``
        uses ``max(2, m // 3)`` where ``m`` counts non-protected features.
    landmarks:
        When set, PFR-family methods fit with the landmark-Nyström
        extension on this many landmarks
        (:class:`repro.core.LandmarkPlan`) instead of the exact all-n
        eigenproblem — the switch that lets γ-sweeps run on 100k+-row
        workloads. ``None`` (default) keeps the paper's exact solve.
    landmark_strategy:
        Landmark selection strategy (``"uniform"``, ``"kmeans++"``,
        ``"farthest"``); the harness ``seed`` seeds the selection.
    method_overrides:
        Optional per-method hyper-parameter overrides, e.g.
        ``{"lfr": {"a_z": 1.0}}`` — the stand-in for the per-dataset grid
        search the paper runs (``tune()`` reproduces the search itself).
    store:
        A run-ledger directory or :class:`~repro.store.RunLedger`. When
        set, every ``run_method`` cell and every tuned grid point is
        read-through/written-through the content-addressed ledger: a cell
        whose task digest is already on disk is decoded instead of
        recomputed, so interrupted sweeps resume and extended grids pay
        only their new cells. Results are bitwise identical with or
        without a store, serial or parallel. ``None`` (default) keeps
        everything in memory, as before.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        test_size: float = 0.3,
        seed: int = 0,
        n_quantiles: int = 10,
        rating_resolution: float = 1.0,
        n_neighbors: int = 10,
        n_components: int | None = None,
        landmarks: int | None = None,
        landmark_strategy: str = "kmeans++",
        method_overrides: dict | None = None,
        store=None,
    ):
        self.dataset = dataset
        self.test_size = test_size
        self.seed = seed
        self.n_quantiles = n_quantiles
        self.rating_resolution = rating_resolution
        self.n_neighbors = n_neighbors
        self.n_components = n_components
        self.landmarks = landmarks
        self.landmark_strategy = landmark_strategy
        self.method_overrides = method_overrides or {}
        self.store = store
        self._prepared = False
        # Staged-fit reuse (repro.core.plan / repro.core.approx): γ-sweeps
        # and repeated run_method calls share one fit plan (Spectral- or
        # LandmarkPlan) per structural configuration, so only the γ-mix +
        # eigensolve re-run per point.
        self._plan_cache: dict = {}
        self._tune_plan_cache: dict = {}

    def __getstate__(self):
        """Pickle without the staged-fit plan caches.

        The caches are pure derived state (rebuildable from the training
        matrix + structural hyper-parameters) and can hold n×n kernel
        matrices, so shipping them to worker processes would dominate the
        fan-out cost. Each worker rebuilds its plans lazily — once per
        (fold, structural-params) key — and then reuses them for every
        task it handles, preserving the sweep amortization per process.
        The ``store`` attribute itself ships (a ledger is just a root
        path), so workers write through to the same on-disk ledger.
        """
        state = self.__dict__.copy()
        state["_plan_cache"] = {}
        state["_tune_plan_cache"] = {}
        return state

    # -- run-ledger plumbing (repro.store) ---------------------------------

    def _ledger(self):
        """The :class:`~repro.store.RunLedger` behind ``store`` (or None)."""
        from ..store import coerce_ledger

        return coerce_ledger(self.store)

    def task_fingerprint(self) -> dict:
        """Canonical descriptor of everything a cell result depends on.

        Covers the dataset *content* (array hashes, not generator
        arguments) and every harness knob that shapes a result. Two
        harnesses with equal fingerprints produce bitwise-identical cells,
        which is what lets the ledger treat the digest as the cache key.
        """
        from ..store import dataset_fingerprint

        return {
            "dataset": dataset_fingerprint(self.dataset),
            "test_size": float(self.test_size),
            "seed": int(self.seed),
            "n_quantiles": int(self.n_quantiles),
            "rating_resolution": float(self.rating_resolution),
            "n_neighbors": int(self.n_neighbors),
            "n_components": self.n_components,
            "landmarks": self.landmarks,
            "landmark_strategy": str(self.landmark_strategy),
            "method_overrides": self.method_overrides,
        }

    def _cell_task(self, method: str, gamma, C, method_params: dict) -> dict:
        return cell_task(
            self.task_fingerprint(), method, gamma, C, method_params
        )

    def _cell_digest(self, method: str, kwargs: dict) -> str:
        """Digest of one ``run_method`` call expressed as sweep kwargs."""
        from ..store import task_digest

        kwargs = dict(kwargs)
        gamma = kwargs.pop("gamma", 0.5)
        C = kwargs.pop("C", 1.0)
        return task_digest(self._cell_task(method, gamma, C, kwargs))

    # -- data preparation --------------------------------------------------

    def prepare(self) -> "ExperimentHarness":
        """Split, scale, and build every graph the protocol needs."""
        if self._prepared:
            return self
        data = self.dataset
        indices = np.arange(data.n_samples)
        train_idx, test_idx = train_test_split(
            indices, test_size=self.test_size, stratify=data.y, seed=self.seed
        )
        self.train_idx, self.test_idx = train_idx, test_idx

        self.scaler = StandardScaler().fit(data.X[train_idx])
        self.X_train = self.scaler.transform(data.X[train_idx])
        self.X_test = self.scaler.transform(data.X[test_idx])
        self.y_train, self.y_test = data.y[train_idx], data.y[test_idx]
        self.s_train, self.s_test = data.s[train_idx], data.s[test_idx]
        self.protected = list(data.protected_columns)

        self.side_values = self._side_information_scores()
        self.W_fair_full = self._build_fairness_graph()
        self.W_fair_train = restrict_graph(self.W_fair_full, train_idx)
        self.W_fair_test = restrict_graph(self.W_fair_full, test_idx)

        nonprotected = np.setdiff1d(
            np.arange(data.n_features), np.asarray(self.protected)
        )
        self.W_x_test = knn_graph(
            self.X_test[:, nonprotected],
            n_neighbors=min(self.n_neighbors, len(test_idx) - 1),
        )

        m_effective = len(nonprotected)
        if self.n_components is None:
            # Meaningful compression is required for the fairness graph to
            # shape the representation; a third of the feature count (at
            # least 2) matches the regime the paper's grid search lands in.
            self.n_components_ = max(2, m_effective // 3)
        else:
            self.n_components_ = self.n_components
        self._prepared = True
        return self

    def _side_information_scores(self) -> np.ndarray:
        """Per-individual side information (the input behind ``WF``)."""
        from .builders import fairness_side_scores

        return fairness_side_scores(self.dataset, train_indices=self.train_idx)

    def _build_fairness_graph(self):
        """Workload-appropriate ``WF`` over the full population (§4.3.1)."""
        from .builders import build_fairness_graph

        return build_fairness_graph(
            self.dataset,
            n_quantiles=self.n_quantiles,
            rating_resolution=self.rating_resolution,
            scores=self.side_values,
        )

    # -- representations ---------------------------------------------------

    def _augmented(self, X_train, X_test):
        """Apply the "+" augmentation: side values at train, means at test."""
        side_train = self.side_values[self.train_idx]
        augmenter = SideInformationAugmenter(side_information=side_train)
        return (
            augmenter.fit_transform(X_train),
            augmenter.transform(X_test),
        )

    def _representation(self, method: str, *, gamma: float, method_params: dict):
        """Train-representation + test-representation for a method name."""
        augment = method.endswith("+")
        base = method.rstrip("+")
        method_params = {**self.method_overrides.get(base, {}), **method_params}
        X_train, X_test = self.X_train, self.X_test

        if base == "original":
            masker = self._fit_base_estimator(
                base, X_train, gamma=gamma, augment=augment,
                method_params=method_params,
            )
            Z_train = masker.transform(X_train)
            Z_test = masker.transform(X_test)
            if augment:
                Z_train, Z_test = self._augmented(Z_train, Z_test)
            return Z_train, Z_test

        if augment:
            X_train, X_test = self._augmented(X_train, X_test)

        model = self._fit_base_estimator(
            base, X_train, gamma=gamma, augment=augment,
            method_params=method_params,
        )
        return model.transform(X_train), model.transform(X_test)

    def _fit_base_estimator(
        self, base: str, X_train, *, gamma: float, method_params: dict,
        augment: bool = False,
    ):
        """Construct and fit the representation estimator for a base method.

        ``X_train`` is the (possibly augmented) training matrix the
        estimator should see; ``method_params`` must already include the
        harness ``method_overrides``. Shared by :meth:`_representation`
        (which then transforms train/test) and :meth:`export_model` (which
        persists the fitted estimator into a run ledger).
        """
        if base == "original":
            masker = MaskedRepresentation(protected_columns=self.protected)
            return masker.fit(X_train)

        if base == "pfr":
            # PFR sees the full attribute vector (like iFair/LFR it must
            # *learn* to suppress the protected signal); only the k-NN
            # distances exclude the protected columns, per the paper's
            # definition of WX (§3.1).
            model = PFR(
                n_components=min(self.n_components_, X_train.shape[1]),
                gamma=gamma,
                n_neighbors=self.n_neighbors,
                exclude_columns=self.protected,
                **{**self._landmark_params(len(self.train_idx)), **method_params},
            )
            self._plan_fit(model, X_train, base, augment, method_params)
            return model

        if base == "kpfr":
            # Kernelized PFR (§3.3.4) — the paper's future-work extension.
            from ..core import KernelPFR

            params = {"kernel": "rbf", "n_neighbors": self.n_neighbors}
            params.update(self._landmark_params(len(self.train_idx)))
            params.update(method_params)
            capacity = (
                min(int(params["landmarks"]), X_train.shape[0])
                if params.get("extension") == "nystrom"
                else X_train.shape[0]
            )
            model = KernelPFR(
                n_components=min(self.n_components_, capacity - 1),
                gamma=gamma,
                exclude_columns=self.protected,
                **params,
            )
            self._plan_fit(model, X_train, base, augment, method_params)
            return model

        if base == "ifair":
            params = {"n_prototypes": 10, "max_iter": 100, "seed": self.seed}
            params.update(method_params)
            model = IFair(protected_columns=self.protected, **params)
            return model.fit(X_train)

        if base == "lfr":
            params = {"n_prototypes": 10, "max_iter": 150, "seed": self.seed}
            params.update(method_params)
            model = LFR(**params)
            return model.fit(X_train, self.y_train, s=self.s_train)

        raise ValidationError(
            f"unknown method {base!r}; use original/ifair/lfr/pfr/kpfr "
            "(+ optional '+') or hardt"
        )

    def export_model(self, method: str, *, gamma: float = 0.5, **method_params):
        """Fit a base method's estimator and persist it into the run ledger.

        Returns the :class:`~repro.store.LedgerEntry` whose model blob a
        :meth:`~repro.serving.ModelRegistry.register_from_ledger` call can
        promote straight into serving — the experiment → serving handoff
        is those two calls. Requires a ``store``; only base methods
        (``original``/``pfr``/``kpfr``/``ifair``/``lfr``) are exportable —
        augmented ("+") variants and ``hardt`` are pipelines, not a single
        estimator artifact.
        """
        ledger = self._ledger()
        if ledger is None:
            raise ValidationError(
                "export_model needs a run ledger; construct the harness "
                "with store=..."
            )
        if method.endswith("+") or method.rstrip("+") == "hardt":
            raise ValidationError(
                f"cannot export {method!r}: only base representation methods "
                "(original/pfr/kpfr/ifair/lfr) map to a single estimator "
                "artifact"
            )
        self.prepare()
        merged = {**self.method_overrides.get(method, {}), **method_params}
        task = {
            "kind": "model",
            "harness": self.task_fingerprint(),
            "method": method,
            "gamma": float(gamma),
            "params": merged,
        }
        from ..store import task_digest

        cached = ledger.get(task_digest(task))
        if cached is not None and cached.has_model:
            return cached
        model = self._fit_base_estimator(
            method, self.X_train, gamma=gamma, method_params=merged
        )
        digests = getattr(model, "plan_digests_", None)
        payload = {
            "model_type": type(model).__name__,
            "method": method,
            "gamma": float(gamma),
            "stage_digests": (
                {str(k): str(v) for k, v in digests.items()}
                if isinstance(digests, dict) else {}
            ),
        }
        return ledger.put(task, payload, model=model)

    def _landmark_params(self, n_train: int) -> dict:
        """Landmark-Nyström kwargs for PFR-family models (empty = exact)."""
        if self.landmarks is None:
            return {}
        return {
            "extension": "nystrom",
            "landmarks": min(int(self.landmarks), n_train),
            "landmark_strategy": self.landmark_strategy,
            "landmark_seed": self.seed,
        }

    def _plan_fit(self, model, X_train, base, augment, method_params) -> None:
        """Fit a PFR-family model through a cached fit plan.

        The plan (graphs, Laplacians, projected objective matrices — and,
        for ``extension="nystrom"`` models, the landmark selection) depends
        only on the training matrix and the structural hyper-parameters, so
        γ-sweeps and repeated ``run_method`` calls on one harness reuse it;
        only the γ-mix and the eigensolve run per call. Exact models get a
        :class:`~repro.core.SpectralFitPlan`, landmark models a
        :class:`~repro.core.LandmarkPlan` (chosen by
        :func:`~repro.core.plan_for_estimator`).
        """
        key = (
            base,
            augment,
            repr(sorted(method_params.items())),
            getattr(model, "extension", "exact"),
            getattr(model, "landmarks", None),
        )
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = plan_for_estimator(model, X_train, self.W_fair_train)
            self._plan_cache[key] = plan
        plan.fit(model)

    # -- evaluation --------------------------------------------------------

    def _evaluate(self, method, y_score, y_pred) -> MethodResult:
        return MethodResult(
            method=method,
            dataset=self.dataset.name,
            auc=roc_auc_score(self.y_test, y_score),
            consistency_wx=consistency(y_pred, self.W_x_test),
            consistency_wf=consistency(y_pred, self.W_fair_test),
            rates=group_rates(self.y_test, y_pred, self.s_test),
            auc_by_group=group_auc(self.y_test, y_score, self.s_test),
        )

    def run_method(
        self, method: str, *, gamma: float = 0.5, C: float = 1.0, **method_params
    ) -> MethodResult:
        """Run one method end-to-end and evaluate on the test set.

        Method names: ``original``, ``ifair``, ``lfr``, ``pfr`` (suffix
        ``+`` adds the side-information augmentation), and ``hardt`` /
        ``hardt+`` (equalized-odds post-processing on the original
        representation).

        With a ``store`` configured, the cell is read-through/written-
        through the run ledger: a digest hit decodes the persisted result
        instead of recomputing, and a miss is persisted the moment it
        completes — so a killed sweep loses at most the cell in flight.
        """
        self.prepare()
        ledger = self._ledger()
        if ledger is None:
            return self._run_method_direct(
                method, gamma=gamma, C=C, method_params=method_params
            )
        from ..store import decode_method_result, encode_method_result

        task = self._cell_task(method, gamma, C, method_params)
        entry = ledger.get_task(task)
        if entry is None:
            result = self._run_method_direct(
                method, gamma=gamma, C=C, method_params=method_params
            )
            entry = ledger.put(task, encode_method_result(result))
        # Decode even freshly-computed cells so every path — cold, warm,
        # resumed, parallel — returns the identical round-tripped object.
        return decode_method_result(entry.payload)

    def _run_method_direct(
        self, method: str, *, gamma: float, C: float, method_params: dict
    ) -> MethodResult:
        """The ledger-free evaluation path (reference semantics)."""
        if method.rstrip("+") == "hardt":
            return self._run_hardt(augment=method.endswith("+"), C=C)

        Z_train, Z_test = self._representation(
            method, gamma=gamma, method_params=method_params
        )
        # Representations come out on arbitrary scales (PFR's embedding
        # columns are unit-norm, i.e. tiny per-sample); standardize so the
        # downstream classifier's regularization and 0.5 threshold behave
        # the same for every method.
        scaler = StandardScaler().fit(Z_train)
        Z_train, Z_test = scaler.transform(Z_train), scaler.transform(Z_test)
        classifier = LogisticRegression(C=C).fit(Z_train, self.y_train)
        y_score = classifier.predict_proba(Z_test)[:, 1]
        y_pred = classifier.predict(Z_test)
        return self._evaluate(method, y_score, y_pred)

    def _run_hardt(self, *, augment: bool, C: float) -> MethodResult:
        """Hardt post-processing on top of the (masked) original predictor."""
        base_name = "original+" if augment else "original"
        Z_train, Z_test = self._representation(
            base_name, gamma=0.0, method_params={}
        )
        classifier = LogisticRegression(C=C).fit(Z_train, self.y_train)
        train_pred = classifier.predict(Z_train)
        post = EqualizedOddsPostProcessor(seed=self.seed).fit(
            self.y_train, train_pred, self.s_train
        )
        test_base = classifier.predict(Z_test)
        y_pred = post.predict(test_base, self.s_test)
        # The derandomized positive-probability is the natural score.
        y_score = post.predict_proba_positive(test_base, self.s_test)
        name = "hardt+" if augment else "hardt"
        result = self._evaluate(name, y_score, y_pred)
        result.extras["expected_error"] = post.expected_error_
        return result

    def run_methods(
        self, methods, *, gamma: float = 0.5, workers=None, **kwargs
    ) -> dict:
        """Run several methods; returns ``{name: MethodResult}``.

        ``workers`` fans the (independent) methods out across processes —
        ``None`` runs serially, an int / ``"auto"`` / an
        :class:`~repro.experiments.parallel.Executor` parallelizes.
        Results are bitwise identical either way. With a ``store``,
        already-ledgered methods are skipped before dispatch and the
        returned dict is rebuilt from ledger queries.
        """
        self.prepare()
        methods = list(methods)
        ledger = self._ledger()
        if ledger is None:
            results = get_executor(workers).map(
                _run_method_task, methods, state=(self, gamma, kwargs)
            )
            return dict(zip(methods, results))
        from ..store import decode_method_result

        digests = [
            self._cell_digest(m, {**kwargs, "gamma": gamma}) for m in methods
        ]
        missing = [
            m for m, d in zip(methods, digests) if not ledger.contains(d)
        ]
        get_executor(workers).map(
            _run_method_task, missing, state=(self, gamma, kwargs)
        )
        return {
            m: decode_method_result(_ledger_fetch(ledger, d).payload)
            for m, d in zip(methods, digests)
        }

    def gamma_sweep(
        self, gammas, *, method: str = "pfr", workers=None, **kwargs
    ) -> list:
        """Evaluate a method across γ values (Figures 4, 7, 10).

        For the PFR family every sweep point reuses a cached
        :class:`~repro.core.SpectralFitPlan` — graphs, Laplacians and
        projected objective matrices are built once, and each γ costs one
        mix + eigensolve (plus the downstream classifier). With
        ``workers`` set, γ points fan out across processes; each worker
        rebuilds the plan once and sweeps its share of the points against
        it, and the results are bitwise identical to a serial sweep.

        With a ``store``, completed γ points are skipped before dispatch —
        an interrupted sweep resumes at the missing cells, and widening
        the grid re-pays only the new γ values.
        """
        self.prepare()
        gammas = [float(g) for g in gammas]
        ledger = self._ledger()
        if ledger is None:
            return get_executor(workers).map(
                _gamma_sweep_task, gammas, state=(self, method, kwargs)
            )
        from ..store import decode_method_result

        digests = [
            self._cell_digest(method, {**kwargs, "gamma": g}) for g in gammas
        ]
        missing = [
            g for g, d in zip(gammas, digests) if not ledger.contains(d)
        ]
        get_executor(workers).map(
            _gamma_sweep_task, missing, state=(self, method, kwargs)
        )
        return [
            decode_method_result(_ledger_fetch(ledger, d).payload)
            for d in digests
        ]

    # -- hyper-parameter tuning (the paper's 5-fold grid search) -----------

    def tune(
        self,
        method: str,
        param_grid,
        *,
        n_splits: int = 5,
        scoring: str = "roc_auc",
        workers=None,
    ) -> dict:
        """5-fold grid search over representation + classifier parameters.

        The grid may contain representation parameters (``gamma``, method
        keyword arguments) and the downstream classifier's ``C``. Returns
        ``{"best_params", "best_score", "results"}``.

        ``workers`` fans the grid points out across processes; every
        point's fold scores are a pure function of the harness data, the
        point and the harness seed, so the search result is bitwise
        identical to a serial search. Each worker keeps its own fold-plan
        cache, so the γ axis of the grid stays nearly free per process.
        """
        self.prepare()
        # Fresh staged-fit cache per search: fold plans are keyed by (fold
        # rows, structural params), so the γ axis of the grid — usually its
        # largest — reuses each fold's graphs/Laplacians/projections.
        self._tune_plan_cache = {}
        grid_points = [dict(params) for params in ParameterGrid(param_grid)]
        ledger = self._ledger()
        if ledger is None:
            mean_scores = get_executor(workers).map(
                _tune_grid_task, grid_points,
                state=(self, method, n_splits, scoring),
            )
        else:
            # Skip already-ledgered grid points before dispatch, then
            # rebuild the score vector from ledger queries — a re-run of a
            # finished (or widened) grid pays only the new points.
            from ..store import task_digest

            digests = [
                task_digest(self._grid_point_task(method, p, n_splits, scoring))
                for p in grid_points
            ]
            missing = [
                p for p, d in zip(grid_points, digests)
                if not ledger.contains(d)
            ]
            get_executor(workers).map(
                _tune_grid_task, missing, state=(self, method, n_splits, scoring)
            )
            mean_scores = [
                float(_ledger_fetch(ledger, d).payload["mean_score"])
                for d in digests
            ]
        results = []
        best = {"best_params": None, "best_score": -np.inf}
        for params, mean_score in zip(grid_points, mean_scores):
            params = dict(params)
            C = params.pop("C", 1.0)
            gamma = params.pop("gamma", 0.5)
            results.append({"params": {**params, "C": C, "gamma": gamma},
                            "mean_score": mean_score})
            if mean_score > best["best_score"]:
                best = {
                    "best_params": {**params, "C": C, "gamma": gamma},
                    "best_score": mean_score,
                }
        best["results"] = results
        return best

    def _grid_point_task(
        self, method: str, params: dict, n_splits: int, scoring: str
    ) -> dict:
        return {
            "kind": "tuned_point",
            "harness": self.task_fingerprint(),
            "method": str(method),
            "params": dict(params),
            "n_splits": int(n_splits),
            "scoring": str(scoring),
        }

    def _score_grid_point(
        self, method: str, params: dict, *, n_splits: int, scoring: str
    ) -> float:
        """Mean cross-validation score of one grid point (all folds).

        Read-through/write-through the run ledger when a ``store`` is
        configured, at grid-point granularity (a point's fold scores are
        one unit of work).
        """
        ledger = self._ledger()
        task = None
        if ledger is not None:
            task = self._grid_point_task(method, params, n_splits, scoring)
            entry = ledger.get_task(task)
            if entry is not None:
                return float(entry.payload["mean_score"])
        score = self._score_grid_point_direct(
            method, params, n_splits=n_splits, scoring=scoring
        )
        if ledger is not None:
            ledger.put(task, {"mean_score": score})
        return score

    def _score_grid_point_direct(
        self, method: str, params: dict, *, n_splits: int, scoring: str
    ) -> float:
        params = dict(params)
        C = params.pop("C", 1.0)
        gamma = params.pop("gamma", 0.5)
        fold_scores = []
        cv = StratifiedKFold(n_splits=n_splits, shuffle=True, seed=self.seed)
        for fit_rows, val_rows in cv.split(self.X_train, self.y_train):
            fold_scores.append(
                self._tune_fold(
                    method, params, gamma, C, fit_rows, val_rows, scoring
                )
            )
        return float(np.mean(fold_scores))

    def _tune_fold(self, method, params, gamma, C, fit_rows, val_rows, scoring):
        """Score one CV fold: representation and classifier trained on the
        fit part, scored on the validation part."""
        base = method.rstrip("+")
        X_fit, X_val = self.X_train[fit_rows], self.X_train[val_rows]
        y_fit, y_val = self.y_train[fit_rows], self.y_train[val_rows]
        s_fit = self.s_train[fit_rows]

        if base == "original":
            masker = MaskedRepresentation(protected_columns=self.protected)
            Z_fit, Z_val = masker.fit_transform(X_fit), None
            Z_val = masker.transform(X_val)
        elif base == "pfr":
            model = PFR(
                n_components=min(self.n_components_, X_fit.shape[1]),
                gamma=gamma,
                n_neighbors=min(self.n_neighbors, len(fit_rows) - 1),
                exclude_columns=self.protected,
                **{**self._landmark_params(len(fit_rows)), **params},
            )
            key = (
                np.asarray(fit_rows).tobytes(),
                repr(sorted(params.items())),
                model.extension,
                model.landmarks,
            )
            plan = self._tune_plan_cache.get(key)
            if plan is None:
                W_fit = restrict_graph(self.W_fair_train, fit_rows)
                plan = plan_for_estimator(model, X_fit, W_fit)
                self._tune_plan_cache[key] = plan
            plan.fit(model)
            Z_fit, Z_val = model.transform(X_fit), model.transform(X_val)
        elif base == "ifair":
            defaults = {"n_prototypes": 10, "max_iter": 100, "seed": self.seed}
            defaults.update(params)
            model = IFair(protected_columns=self.protected, **defaults)
            Z_fit = model.fit_transform(X_fit)
            Z_val = model.transform(X_val)
        elif base == "lfr":
            defaults = {"n_prototypes": 10, "max_iter": 150, "seed": self.seed}
            defaults.update(params)
            model = LFR(**defaults)
            model.fit(X_fit, y_fit, s=s_fit)
            Z_fit, Z_val = model.transform(X_fit), model.transform(X_val)
        else:
            raise ValidationError(f"tune() does not support method {method!r}")

        scaler = StandardScaler().fit(Z_fit)
        Z_fit, Z_val = scaler.transform(Z_fit), scaler.transform(Z_val)
        classifier = LogisticRegression(C=C).fit(Z_fit, y_fit)
        if scoring == "roc_auc":
            return roc_auc_score(y_val, classifier.predict_proba(Z_val)[:, 1])
        if scoring == "accuracy":
            return float(np.mean(classifier.predict(Z_val) == y_val))
        raise ValidationError(f"unknown scoring {scoring!r}")
