"""Deterministic parallel execution for the experiments layer.

The paper's experiments (§4) are embarrassingly parallel: every γ-sweep
point, every grid-search fold, every cross-seed repetition is an
independent fit. This module provides the one execution primitive they all
share — :class:`Executor` — with two backends:

* ``serial`` — a plain in-process loop (the reference semantics);
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor` fan-out
  with per-worker state shipped once through the pool initializer.

**Parallelism changes wall-clock only, never numbers.** Every task is a
pure function ``fn(state, task)`` of the shipped state and its own task
descriptor; results are collected in task order regardless of completion
order, and no task may depend on another task's side effects. The parity
suite (``tests/test_experiments_parallel.py``) holds the two backends to
bitwise-identical results.

Two design points make that guarantee cheap to keep:

* **Per-task seeds are derived, not drawn.** :func:`spawn_seeds` maps a
  root seed to *n* child seeds through ``np.random.SeedSequence.spawn`` —
  a deterministic function of ``(root, index)`` alone, so the same task
  always sees the same seed whether it runs first in the parent or last
  in the fourth worker.
* **Caches are rebuilt, not shipped.** :class:`ExperimentHarness` drops
  its staged-fit plan caches when pickled (they are pure derived state and
  can hold n×n kernel matrices); each worker rebuilds the
  :class:`~repro.core.SpectralFitPlan` lazily, once per (fold,
  structural-params) key, so the PR 2 sweep amortization survives the
  fork — every worker pays one plan build and then solves its whole chunk
  of γ points against it.

The :func:`get_executor` helper is the single entry point call sites use
to interpret their ``workers`` argument: ``None`` → serial, an int or
``"auto"`` → process fan-out, an :class:`Executor` → used as-is.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..exceptions import ValidationError
from ..obs.trace import (
    attach_worker_sinks,
    emit_metrics,
    jsonl_paths,
    span,
    trace_enabled,
)

__all__ = ["Executor", "get_executor", "spawn_seeds", "available_workers"]

_BACKENDS = ("auto", "serial", "process")


def available_workers() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def spawn_seeds(base_seed: int, n: int) -> tuple[int, ...]:
    """Derive ``n`` independent child seeds from one root seed.

    Uses ``np.random.SeedSequence.spawn``, so child ``i`` is a
    deterministic function of ``(base_seed, i)`` alone — the same task
    index gets the same seed no matter which worker runs it, in what
    order, or whether the run is serial at all. The children are
    collision-resistant by construction (each carries a distinct spawn
    key), unlike ``base_seed + i`` arithmetic which collides across
    overlapping ranges.
    """
    if n < 0:
        raise ValidationError(f"cannot spawn {n} seeds; n must be >= 0")
    children = np.random.SeedSequence(int(base_seed)).spawn(int(n))
    return tuple(
        int(child.generate_state(1, dtype=np.uint32)[0]) for child in children
    )


# -- per-worker state plumbing ---------------------------------------------
#
# ProcessPoolExecutor pickles the submitted callable and its arguments for
# every task. Shipping the (potentially large) shared state — a prepared
# harness, a dataset — per task would drown the fan-out in serialization,
# so the state travels exactly once per worker through the pool
# initializer and lands in a module global the task trampoline reads back.

_WORKER_STATE: dict = {}


def _init_worker(state, trace_paths=()) -> None:
    _WORKER_STATE["state"] = state
    # Tracing config travels with the state: workers append to the same
    # JSONL files as the parent (O_APPEND single-line writes cannot
    # interleave), and an empty config keeps tracing off in the worker.
    # Ring-buffer sinks stay behind — they cannot cross a process
    # boundary. Re-attaching also drops any fork-inherited sinks so a
    # record is never written twice through two copies of one descriptor.
    attach_worker_sinks(trace_paths)


def _run_task(fn, task):
    state = _WORKER_STATE["state"]
    if not trace_enabled():
        return fn(state, task)
    with span("parallel.task", worker=os.getpid()):
        result = fn(state, task)
    # Snapshot this worker's counters after every task; trace consumers
    # keep the last metrics record per pid, so the final task's snapshot
    # is the worker's contribution — pools have no orderly-exit hook to
    # emit from instead.
    emit_metrics()
    return result


class Executor:
    """Deterministic task-mapping executor with serial and process backends.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"process"``, or ``"auto"`` (the default): process
        fan-out whenever more than one worker *and* more than one task are
        in play, serial otherwise — so degenerate fan-outs never pay pool
        startup.
    workers:
        Worker-process count, or ``"auto"`` for the CPUs available to this
        process. The effective count is additionally capped by the number
        of tasks.
    start_method:
        Multiprocessing start method; defaults to ``"fork"`` where
        available (workers inherit the imported numpy/scipy for free) and
        ``"spawn"`` elsewhere. Override via the
        ``REPRO_PARALLEL_START_METHOD`` environment variable or this
        parameter.
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        workers: int | str = "auto",
        start_method: str | None = None,
    ):
        if backend not in _BACKENDS:
            raise ValidationError(
                f"backend must be one of {_BACKENDS}; got {backend!r}"
            )
        if workers != "auto":
            try:
                workers = int(workers)
            except (TypeError, ValueError):
                raise ValidationError(
                    f"workers must be a positive int or 'auto'; got {workers!r}"
                ) from None
            if workers < 1:
                raise ValidationError(
                    f"workers must be a positive int or 'auto'; got {workers}"
                )
        self.backend = backend
        self.workers = workers
        self.start_method = (
            start_method
            if start_method is not None
            else os.environ.get("REPRO_PARALLEL_START_METHOD") or None
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(backend={self.backend!r}, "
            f"workers={self.workers!r})"
        )

    # ---------------------------------------------------------- resolution
    def resolve_workers(self, n_tasks: int | None = None) -> int:
        """Concrete worker count for a fan-out of ``n_tasks`` tasks."""
        workers = (
            available_workers() if self.workers == "auto" else self.workers
        )
        if n_tasks is not None:
            workers = max(1, min(workers, n_tasks))
        return workers

    def resolve_backend(self, n_tasks: int) -> str:
        """Concrete backend for a fan-out of ``n_tasks`` tasks."""
        if self.backend != "auto":
            return self.backend
        return "process" if self.resolve_workers(n_tasks) > 1 and n_tasks > 1 else "serial"

    def _context(self):
        method = self.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        return multiprocessing.get_context(method)

    # ----------------------------------------------------------- execution
    def map(self, fn, tasks, *, state=None) -> list:
        """Apply ``fn(state, task)`` to every task; results in task order.

        ``fn`` must be a module-level (picklable) function and a pure
        function of its arguments — the determinism guarantee rests on
        that. ``state`` is shipped to each worker exactly once. Exceptions
        raised by any task propagate to the caller.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        backend = self.resolve_backend(len(tasks))
        if backend == "serial" or self.resolve_workers(len(tasks)) <= 1:
            return [fn(state, task) for task in tasks]
        with ProcessPoolExecutor(
            max_workers=self.resolve_workers(len(tasks)),
            mp_context=self._context(),
            initializer=_init_worker,
            initargs=(state, jsonl_paths()),
        ) as pool:
            # chunksize=1 keeps scheduling dynamic (stragglers don't pin a
            # whole pre-dealt chunk to one worker); map() preserves task
            # order in its results regardless.
            return list(pool.map(functools.partial(_run_task, fn), tasks))


def get_executor(workers=None) -> Executor:
    """Interpret a call site's ``workers`` argument.

    * ``None`` → the serial reference executor;
    * an :class:`Executor` → returned unchanged;
    * an int or ``"auto"`` → an auto-backend executor with that many
      workers (``1`` degenerates to serial execution).
    """
    if workers is None:
        return Executor(backend="serial")
    if isinstance(workers, Executor):
        return workers
    return Executor(backend="auto", workers=workers)
