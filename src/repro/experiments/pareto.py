"""Best-achievable trade-offs (the lens of Figures 2/5/8).

The paper reports "the best achievable trade-off between utility and the
two notions of individual fairness" — i.e. points on the Pareto frontier
of (AUC, Consistency). This module computes frontiers from any collection
of :class:`~repro.experiments.harness.MethodResult` objects and sweeps a
method's hyper-parameters to trace its frontier explicitly.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..ml.model_selection import ParameterGrid
from .harness import ExperimentHarness, MethodResult

__all__ = ["pareto_front", "tradeoff_frontier"]


def pareto_front(points, *, maximize=(True, True)) -> list:
    """Indices of the Pareto-optimal points.

    Parameters
    ----------
    points:
        Iterable of equal-length numeric tuples (one objective per slot).
    maximize:
        Per-objective direction; ``True`` = larger is better.

    Returns
    -------
    list of int
        Indices of non-dominated points, in input order. A point is
        dominated if some other point is at least as good in every
        objective and strictly better in one.
    """
    array = np.asarray(list(points), dtype=np.float64)
    if array.ndim != 2:
        raise ValidationError(f"points must be 2-D; got shape {array.shape}")
    if array.shape[1] != len(maximize):
        raise ValidationError(
            f"{array.shape[1]} objectives but {len(maximize)} directions"
        )
    if not np.all(np.isfinite(array)):
        raise ValidationError("points contain NaN or infinity")

    signs = np.where(np.asarray(maximize, dtype=bool), 1.0, -1.0)
    oriented = array * signs

    keep = []
    for i in range(len(oriented)):
        dominated = False
        for j in range(len(oriented)):
            if i == j:
                continue
            if np.all(oriented[j] >= oriented[i]) and np.any(
                oriented[j] > oriented[i]
            ):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return keep


def tradeoff_frontier(
    harness: ExperimentHarness,
    method: str = "pfr",
    *,
    grid=None,
    objectives=("auc", "consistency_wf"),
) -> dict:
    """Sweep a method's hyper-parameters and extract its Pareto frontier.

    Parameters
    ----------
    harness:
        Prepared (or preparable) workload harness.
    method:
        Harness method name.
    grid:
        Parameter grid (``gamma`` and method kwargs); defaults to a γ grid.
    objectives:
        Two or more :class:`MethodResult` attribute names, all maximized.

    Returns
    -------
    dict
        ``"results"`` — every evaluated (params, MethodResult) pair;
        ``"frontier"`` — the non-dominated subset, sorted by the first
        objective.
    """
    harness.prepare()
    if grid is None:
        grid = {"gamma": [0.0, 0.25, 0.5, 0.75, 1.0]}
    for objective in objectives:
        if not hasattr(MethodResult, "__dataclass_fields__") or (
            objective not in MethodResult.__dataclass_fields__
        ):
            raise ValidationError(
                f"unknown objective {objective!r}; use MethodResult fields"
            )

    evaluated = []
    for params in ParameterGrid(grid):
        params = dict(params)
        gamma = params.pop("gamma", 0.5)
        result = harness.run_method(method, gamma=gamma, **params)
        evaluated.append(({"gamma": gamma, **params}, result))

    points = [
        tuple(getattr(result, objective) for objective in objectives)
        for _, result in evaluated
    ]
    frontier_idx = pareto_front(points, maximize=(True,) * len(objectives))
    frontier = sorted(
        (evaluated[i] for i in frontier_idx),
        key=lambda pair: getattr(pair[1], objectives[0]),
    )
    return {"results": evaluated, "frontier": frontier}
