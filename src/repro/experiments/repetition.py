"""Cross-seed repetition: error bars for any experiment.

Single-seed results can flatter or slander a method; this module re-runs a
method (or a whole method set) across seeds — fresh data draw *and* fresh
split per seed — and aggregates every scalar metric into mean ± std, the
form reviewers expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from .harness import ExperimentHarness

__all__ = ["AggregateResult", "repeat_method", "repeat_methods"]

_METRICS = (
    "auc",
    "consistency_wx",
    "consistency_wf",
    "parity_gap",
    "fpr_gap",
    "fnr_gap",
)


@dataclass(frozen=True)
class AggregateResult:
    """Mean ± std of every scalar metric across seeds."""

    method: str
    dataset: str
    n_runs: int
    mean: dict = field(repr=False)
    std: dict = field(repr=False)

    def format(self, metric: str) -> str:
        """``"0.712 ± 0.013"`` for one metric."""
        if metric not in self.mean:
            raise ValidationError(
                f"unknown metric {metric!r}; available: {sorted(self.mean)}"
            )
        return f"{self.mean[metric]:.3f} ± {self.std[metric]:.3f}"


def _collect(results) -> AggregateResult:
    rows = [r.summary() for r in results]
    mean = {m: float(np.mean([row[m] for row in rows])) for m in _METRICS}
    std = {m: float(np.std([row[m] for row in rows])) for m in _METRICS}
    return AggregateResult(
        method=results[0].method,
        dataset=results[0].dataset,
        n_runs=len(results),
        mean=mean,
        std=std,
    )


def repeat_method(
    dataset_factory,
    method: str,
    *,
    seeds=(0, 1, 2),
    gamma: float = 0.5,
    harness_kwargs: dict | None = None,
    **method_params,
) -> AggregateResult:
    """Run one method across seeds and aggregate.

    Parameters
    ----------
    dataset_factory:
        ``f(seed) -> Dataset`` — a fresh data draw per seed (e.g.
        ``lambda s: simulate_crime(498, 200, seed=s)``).
    method:
        Harness method name.
    seeds:
        Seeds; each seeds both the dataset and the harness split.
    gamma, **method_params:
        Forwarded to :meth:`ExperimentHarness.run_method`.
    harness_kwargs:
        Extra :class:`ExperimentHarness` constructor arguments.
    """
    if len(seeds) < 2:
        raise ValidationError("repetition needs at least two seeds")
    results = []
    for seed in seeds:
        harness = ExperimentHarness(
            dataset_factory(seed), seed=seed, **(harness_kwargs or {})
        )
        results.append(harness.run_method(method, gamma=gamma, **method_params))
    return _collect(results)


def repeat_methods(
    dataset_factory,
    methods,
    *,
    seeds=(0, 1, 2),
    gamma: float = 0.5,
    harness_kwargs: dict | None = None,
) -> dict:
    """Aggregate several methods on the same per-seed datasets and splits."""
    if len(seeds) < 2:
        raise ValidationError("repetition needs at least two seeds")
    per_method = {method: [] for method in methods}
    for seed in seeds:
        harness = ExperimentHarness(
            dataset_factory(seed), seed=seed, **(harness_kwargs or {})
        )
        for method in methods:
            per_method[method].append(harness.run_method(method, gamma=gamma))
    return {method: _collect(results) for method, results in per_method.items()}
