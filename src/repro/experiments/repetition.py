"""Cross-seed repetition: error bars for any experiment.

Single-seed results can flatter or slander a method; this module re-runs a
method (or a whole method set) across seeds — fresh data draw *and* fresh
split per seed — and aggregates every scalar metric into mean ± std, the
form reviewers expect.

Seeds are the natural parallel axis: every seed's pipeline (data draw,
split, graphs, fits, evaluation) is independent of every other's. All
``repeat_*`` functions accept ``workers`` and fan seeds out across
processes through :class:`~repro.experiments.parallel.Executor`; each
worker runs whole seeds, so the per-seed staged-fit reuse (one
:class:`~repro.core.SpectralFitPlan` per γ-sweep) is preserved, and the
aggregates are bitwise identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from .harness import ExperimentHarness
from .parallel import get_executor, spawn_seeds

__all__ = [
    "AggregateResult",
    "repeat_method",
    "repeat_methods",
    "repeat_gamma_sweep",
]

_METRICS = (
    "auc",
    "consistency_wx",
    "consistency_wf",
    "parity_gap",
    "fpr_gap",
    "fnr_gap",
)


@dataclass(frozen=True)
class AggregateResult:
    """Mean ± std of every scalar metric across seeds."""

    method: str
    dataset: str
    n_runs: int
    mean: dict = field(repr=False)
    std: dict = field(repr=False)

    def format(self, metric: str) -> str:
        """``"0.712 ± 0.013"`` for one metric."""
        if metric not in self.mean:
            raise ValidationError(
                f"unknown metric {metric!r}; available: {sorted(self.mean)}"
            )
        return f"{self.mean[metric]:.3f} ± {self.std[metric]:.3f}"


def _collect(results) -> AggregateResult:
    results = list(results)
    if not results:
        raise ValidationError("cannot aggregate an empty result list")
    rows = [r.summary() for r in results]
    mean = {m: float(np.mean([row[m] for row in rows])) for m in _METRICS}
    # Sample std (ddof=1): the error bars describe seed-to-seed
    # variability estimated from the seeds actually run, the convention of
    # the mean ± std tables in the paper's lineage (population std
    # understates the bars by ~22% at the default 3 seeds). A single run
    # has no spread to estimate — report 0.0, not NaN.
    if len(rows) > 1:
        std = {
            m: float(np.std([row[m] for row in rows], ddof=1)) for m in _METRICS
        }
    else:
        std = {m: 0.0 for m in _METRICS}
    return AggregateResult(
        method=results[0].method,
        dataset=results[0].dataset,
        n_runs=len(results),
        mean=mean,
        std=std,
    )


def _normalize_seeds(seeds) -> tuple[int, ...]:
    """Validate and materialize the ``seeds`` argument.

    Accepts an explicit sequence of seeds, or an int ``n`` which derives
    ``n`` independent seeds deterministically via
    :func:`~repro.experiments.parallel.spawn_seeds` (root 0). Rejects
    empty sequences up front — downstream aggregation would otherwise die
    with an inscrutable ``IndexError``.
    """
    if isinstance(seeds, (int, np.integer)):
        count = int(seeds)
        if count < 2:
            raise ValidationError(
                f"repetition needs at least two seeds; got seeds={count}"
            )
        return spawn_seeds(0, count)
    seeds = tuple(int(seed) for seed in seeds)
    if len(seeds) < 2:
        raise ValidationError(
            "repetition needs at least two seeds; got "
            + (f"{len(seeds)}" if seeds else "an empty seeds sequence")
        )
    return seeds


# -- executor task functions (module-level for process-backend pickling) ---

def _repeat_method_task(state, task):
    method, gamma, harness_kwargs, method_params = state
    seed, dataset = task
    harness = ExperimentHarness(dataset, seed=seed, **harness_kwargs)
    return harness.run_method(method, gamma=gamma, **method_params)


def _repeat_methods_task(state, task):
    methods, gamma, harness_kwargs = state
    seed, dataset = task
    harness = ExperimentHarness(dataset, seed=seed, **harness_kwargs)
    return [
        harness.run_method(method, gamma=gamma) for method in methods
    ]


def _repeat_sweep_task(state, task):
    gammas, method, harness_kwargs, method_params = state
    seed, dataset = task
    harness = ExperimentHarness(dataset, seed=seed, **harness_kwargs)
    return harness.gamma_sweep(gammas, method=method, **method_params)


def _harness_kwargs(harness_kwargs: dict | None, store) -> dict:
    """Merge an explicit ``store`` into the per-seed harness kwargs.

    A ledger is just a root path, so it pickles with the executor state
    and every worker's harness writes through to the same on-disk store —
    which is what makes a killed multi-seed run resumable at cell
    granularity.
    """
    kwargs = dict(harness_kwargs or {})
    if store is not None:
        kwargs["store"] = store
    return kwargs


def _seed_tasks(dataset_factory, seeds) -> list:
    """Materialize per-seed datasets in the parent, in seed order.

    The factory is the one argument users routinely pass as a lambda, which
    a process backend could not pickle; calling it up front keeps the
    workers' inputs plain data (seed, Dataset) and keeps the draw order
    identical to a serial run.
    """
    return [(seed, dataset_factory(seed)) for seed in seeds]


def repeat_method(
    dataset_factory,
    method: str,
    *,
    seeds=(0, 1, 2),
    gamma: float = 0.5,
    harness_kwargs: dict | None = None,
    workers=None,
    store=None,
    **method_params,
) -> AggregateResult:
    """Run one method across seeds and aggregate.

    Parameters
    ----------
    dataset_factory:
        ``f(seed) -> Dataset`` — a fresh data draw per seed (e.g.
        ``lambda s: simulate_crime(498, 200, seed=s)``). Called in the
        parent process, so lambdas are fine even with process workers.
    method:
        Harness method name.
    seeds:
        Seeds; each seeds both the dataset and the harness split. An int
        ``n`` derives ``n`` seeds via ``np.random.SeedSequence.spawn``.
    gamma, **method_params:
        Forwarded to :meth:`ExperimentHarness.run_method`.
    harness_kwargs:
        Extra :class:`ExperimentHarness` constructor arguments.
    workers:
        Fan seeds out across processes (``None`` = serial); results are
        bitwise identical either way.
    store:
        Run-ledger directory or :class:`~repro.store.RunLedger`; every
        per-seed cell is read-through/written-through the ledger, so a
        killed repetition resumes at the missing seeds' cells.
    """
    seeds = _normalize_seeds(seeds)
    state = (method, gamma, _harness_kwargs(harness_kwargs, store), method_params)
    results = get_executor(workers).map(
        _repeat_method_task, _seed_tasks(dataset_factory, seeds), state=state
    )
    return _collect(results)


def repeat_gamma_sweep(
    dataset_factory,
    gammas,
    *,
    method: str = "pfr",
    seeds=(0, 1, 2),
    harness_kwargs: dict | None = None,
    workers=None,
    store=None,
    **method_params,
) -> dict:
    """Error-barred γ-sweep: Figures 4/7/10 with mean ± std per γ.

    One harness per seed runs the whole sweep, so the staged fit pipeline
    (:class:`~repro.core.SpectralFitPlan`) builds each seed's graphs,
    Laplacians and projected objective matrices once and reuses them across
    every γ — the per-point cost is a mix + eigensolve, not a refit. With
    ``workers`` set, seeds fan out across processes and each worker keeps
    that per-seed reuse intact.

    Returns ``{gamma: AggregateResult}`` in the input γ order.
    """
    seeds = _normalize_seeds(seeds)
    gammas = [float(g) for g in gammas]
    if not gammas:
        raise ValidationError("repeat_gamma_sweep needs at least one gamma")
    if len(set(gammas)) != len(gammas):
        # per-γ aggregation keys on the value; duplicates would silently
        # merge and double-count n_runs.
        raise ValidationError(f"gammas contains duplicates: {gammas}")
    state = (
        tuple(gammas), method, _harness_kwargs(harness_kwargs, store),
        method_params,
    )
    sweeps = get_executor(workers).map(
        _repeat_sweep_task, _seed_tasks(dataset_factory, seeds), state=state
    )
    return {
        gamma: _collect([sweep[i] for sweep in sweeps])
        for i, gamma in enumerate(gammas)
    }


def repeat_methods(
    dataset_factory,
    methods,
    *,
    seeds=(0, 1, 2),
    gamma: float = 0.5,
    harness_kwargs: dict | None = None,
    workers=None,
    store=None,
) -> dict:
    """Aggregate several methods on the same per-seed datasets and splits."""
    seeds = _normalize_seeds(seeds)
    methods = tuple(methods)
    state = (methods, gamma, _harness_kwargs(harness_kwargs, store))
    per_seed = get_executor(workers).map(
        _repeat_methods_task, _seed_tasks(dataset_factory, seeds), state=state
    )
    return {
        method: _collect([row[i] for row in per_seed])
        for i, method in enumerate(methods)
    }
