"""Cross-seed repetition: error bars for any experiment.

Single-seed results can flatter or slander a method; this module re-runs a
method (or a whole method set) across seeds — fresh data draw *and* fresh
split per seed — and aggregates every scalar metric into mean ± std, the
form reviewers expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from .harness import ExperimentHarness

__all__ = [
    "AggregateResult",
    "repeat_method",
    "repeat_methods",
    "repeat_gamma_sweep",
]

_METRICS = (
    "auc",
    "consistency_wx",
    "consistency_wf",
    "parity_gap",
    "fpr_gap",
    "fnr_gap",
)


@dataclass(frozen=True)
class AggregateResult:
    """Mean ± std of every scalar metric across seeds."""

    method: str
    dataset: str
    n_runs: int
    mean: dict = field(repr=False)
    std: dict = field(repr=False)

    def format(self, metric: str) -> str:
        """``"0.712 ± 0.013"`` for one metric."""
        if metric not in self.mean:
            raise ValidationError(
                f"unknown metric {metric!r}; available: {sorted(self.mean)}"
            )
        return f"{self.mean[metric]:.3f} ± {self.std[metric]:.3f}"


def _collect(results) -> AggregateResult:
    rows = [r.summary() for r in results]
    mean = {m: float(np.mean([row[m] for row in rows])) for m in _METRICS}
    std = {m: float(np.std([row[m] for row in rows])) for m in _METRICS}
    return AggregateResult(
        method=results[0].method,
        dataset=results[0].dataset,
        n_runs=len(results),
        mean=mean,
        std=std,
    )


def repeat_method(
    dataset_factory,
    method: str,
    *,
    seeds=(0, 1, 2),
    gamma: float = 0.5,
    harness_kwargs: dict | None = None,
    **method_params,
) -> AggregateResult:
    """Run one method across seeds and aggregate.

    Parameters
    ----------
    dataset_factory:
        ``f(seed) -> Dataset`` — a fresh data draw per seed (e.g.
        ``lambda s: simulate_crime(498, 200, seed=s)``).
    method:
        Harness method name.
    seeds:
        Seeds; each seeds both the dataset and the harness split.
    gamma, **method_params:
        Forwarded to :meth:`ExperimentHarness.run_method`.
    harness_kwargs:
        Extra :class:`ExperimentHarness` constructor arguments.
    """
    if len(seeds) < 2:
        raise ValidationError("repetition needs at least two seeds")
    results = []
    for seed in seeds:
        harness = ExperimentHarness(
            dataset_factory(seed), seed=seed, **(harness_kwargs or {})
        )
        results.append(harness.run_method(method, gamma=gamma, **method_params))
    return _collect(results)


def repeat_gamma_sweep(
    dataset_factory,
    gammas,
    *,
    method: str = "pfr",
    seeds=(0, 1, 2),
    harness_kwargs: dict | None = None,
    **method_params,
) -> dict:
    """Error-barred γ-sweep: Figures 4/7/10 with mean ± std per γ.

    One harness per seed runs the whole sweep, so the staged fit pipeline
    (:class:`~repro.core.SpectralFitPlan`) builds each seed's graphs,
    Laplacians and projected objective matrices once and reuses them across
    every γ — the per-point cost is a mix + eigensolve, not a refit.

    Returns ``{gamma: AggregateResult}`` in the input γ order.
    """
    if len(seeds) < 2:
        raise ValidationError("repetition needs at least two seeds")
    gammas = [float(g) for g in gammas]
    if not gammas:
        raise ValidationError("repeat_gamma_sweep needs at least one gamma")
    if len(set(gammas)) != len(gammas):
        # per-γ aggregation keys on the value; duplicates would silently
        # merge and double-count n_runs.
        raise ValidationError(f"gammas contains duplicates: {gammas}")
    per_gamma = {gamma: [] for gamma in gammas}
    for seed in seeds:
        harness = ExperimentHarness(
            dataset_factory(seed), seed=seed, **(harness_kwargs or {})
        )
        sweep = harness.gamma_sweep(gammas, method=method, **method_params)
        for gamma, result in zip(gammas, sweep):
            per_gamma[gamma].append(result)
    return {gamma: _collect(results) for gamma, results in per_gamma.items()}


def repeat_methods(
    dataset_factory,
    methods,
    *,
    seeds=(0, 1, 2),
    gamma: float = 0.5,
    harness_kwargs: dict | None = None,
) -> dict:
    """Aggregate several methods on the same per-seed datasets and splits."""
    if len(seeds) < 2:
        raise ValidationError("repetition needs at least two seeds")
    per_method = {method: [] for method in methods}
    for seed in seeds:
        harness = ExperimentHarness(
            dataset_factory(seed), seed=seed, **(harness_kwargs or {})
        )
        for method in methods:
            per_method[method].append(harness.run_method(method, gamma=gamma))
    return {method: _collect(results) for method, results in per_method.items()}
