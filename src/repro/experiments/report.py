"""Text rendering of tables and figure series (matplotlib substitute).

The execution environment has no plotting stack, so every figure is
reproduced as its underlying *data series* plus an ASCII rendering good
enough to eyeball the paper's qualitative claims (who wins, where the
curves cross). Benchmarks print these renderings; EXPERIMENTS.md records
the numbers.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "render_table",
    "render_bars",
    "render_grouped_bars",
    "render_series",
    "render_scatter",
    "render_decision_field",
]


def render_table(headers, rows, *, float_format: str = "{:.3f}") -> str:
    """Fixed-width table. ``rows`` is a list of sequences matching ``headers``."""
    headers = [str(h) for h in headers]

    def fmt(value):
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in text_rows)) if text_rows else len(headers[j])
        for j in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in text_rows
    ]
    return "\n".join([line, rule, *body])


def render_bars(labels, values, *, width: int = 40, vmax: float | None = None) -> str:
    """Horizontal bar chart: one label/value per line."""
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValidationError("labels and values must align")
    if not values:
        return "(no data)"
    top = vmax if vmax is not None else max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * max(value, 0.0) / top))
        bar = "█" * filled
        lines.append(f"{str(label).ljust(label_width)} |{bar.ljust(width)}| {value:.3f}")
    return "\n".join(lines)


def render_grouped_bars(
    group_labels, series: dict, *, width: int = 30, vmax: float | None = None
) -> str:
    """Bars grouped by label; ``series`` maps series name → list of values.

    Used for the per-group fairness figures (3, 6, 9): the groups are the
    measures (P(ŷ=1), FNR, FPR) and the series are the protected-group
    values.
    """
    names = list(series)
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return "(no data)"
    top = vmax if vmax is not None else max(max(all_values), 1e-12)
    name_width = max(len(str(n)) for n in names)
    blocks = []
    for g, label in enumerate(group_labels):
        lines = [f"{label}:"]
        for name in names:
            value = float(series[name][g])
            filled = int(round(width * max(value, 0.0) / top))
            lines.append(
                f"  {str(name).ljust(name_width)} |{('█' * filled).ljust(width)}| {value:.3f}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_series(
    x, series: dict, *, width: int = 60, height: int = 14, x_label: str = "x"
) -> str:
    """ASCII line chart of one or more named series over a shared x grid."""
    x = [float(v) for v in x]
    if not series:
        return "(no data)"
    markers = "ox+*#@%&"
    all_y = [float(v) for values in series.values() for v in values if not math.isnan(float(v))]
    if not all_y:
        return "(no data)"
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1e-9
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        x_max = x_min + 1e-9

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for xv, yv in zip(x, values):
            yv = float(yv)
            if math.isnan(yv):
                continue
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y_max - yv) / (y_max - y_min) * (height - 1)))
            grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:.3f} "
        elif row_index == height - 1:
            label = f"{y_min:.3f} "
        else:
            label = " " * len(f"{y_max:.3f} ")
        lines.append(label + "|" + "".join(row))
    pad = " " * len(f"{y_max:.3f} ")
    lines.append(pad + "+" + "-" * width)
    lines.append(pad + f" {x_min:g}{' ' * max(width - 12, 1)}{x_max:g}  ({x_label})")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def render_decision_field(
    points,
    categories,
    probability,
    *,
    width: int = 64,
    height: int = 24,
    markers: str = "o+x*",
) -> str:
    """Scatter plot over a classifier's probability field (Figure 1's look).

    ``probability(grid)`` is evaluated on a ``height × width`` grid spanning
    the data's bounding box; cells are shaded by P(ŷ=1) (``' '`` < 0.2,
    ``'·'`` < 0.4, ``':'`` < 0.6, ``'▒'`` < 0.8, ``'█'`` ≥ 0.8), with the
    data points drawn on top using per-category markers.
    """
    points = np.asarray(points, dtype=np.float64)
    categories = np.asarray(categories)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValidationError(f"points must have shape (n, 2); got {points.shape}")
    if len(categories) != len(points):
        raise ValidationError("categories must align with points")

    x, y = points[:, 0], points[:, 1]
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = (x_max - x_min) or 1e-9
    y_span = (y_max - y_min) or 1e-9

    columns = np.linspace(x_min, x_max, width)
    rows = np.linspace(y_max, y_min, height)
    grid = np.column_stack(
        [np.tile(columns, height), np.repeat(rows, width)]
    )
    p = np.asarray(probability(grid), dtype=np.float64).reshape(height, width)
    if np.any(p < -1e-9) or np.any(p > 1 + 1e-9):
        raise ValidationError("probability() must return values in [0, 1]")

    shades = " ·:▒█"
    field = [
        [shades[min(int(value * len(shades)), len(shades) - 1)] for value in row]
        for row in p
    ]
    unique = list(dict.fromkeys(categories.tolist()))
    for point, category in zip(points, categories):
        marker = markers[unique.index(category) % len(markers)]
        col = int(round((point[0] - x_min) / x_span * (width - 1)))
        row = int(round((y_max - point[1]) / y_span * (height - 1)))
        field[row][col] = marker

    lines = ["".join(row) for row in field]
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {category}" for i, category in enumerate(unique)
    )
    lines.append("-" * width)
    lines.append(legend + "   (shading = P(ŷ=1): ' '<0.2 … '█'≥0.8)")
    return "\n".join(lines)


def render_scatter(
    points,
    categories,
    *,
    width: int = 64,
    height: int = 24,
    markers: str = "o+x*",
) -> str:
    """ASCII scatter plot of 2-D ``points`` colored by ``categories``.

    Used to render the Figure 1 representations: categories encode
    (group, label) combinations.
    """
    points = np.asarray(points, dtype=np.float64)
    categories = np.asarray(categories)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValidationError(f"points must have shape (n, 2); got {points.shape}")
    if len(categories) != len(points):
        raise ValidationError("categories must align with points")

    x, y = points[:, 0], points[:, 1]
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = (x_max - x_min) or 1e-9
    y_span = (y_max - y_min) or 1e-9

    grid = [[" "] * width for _ in range(height)]
    unique = list(dict.fromkeys(categories.tolist()))
    for point, category in zip(points, categories):
        marker = markers[unique.index(category) % len(markers)]
        col = int(round((point[0] - x_min) / x_span * (width - 1)))
        row = int(round((y_max - point[1]) / y_span * (height - 1)))
        grid[row][col] = marker

    lines = ["".join(row) for row in grid]
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {category}" for i, category in enumerate(unique)
    )
    lines.append("-" * width)
    lines.append(legend)
    return "\n".join(lines)
