"""Declarative run specs: a whole scenario matrix as one document.

A :class:`RunSpec` expresses the paper's experiment grids — datasets ×
methods × γ values × seeds — as data (a dataclass, loadable from YAML or
JSON), and :func:`run_spec` compiles it into the flat cell list the
PR-4 :class:`~repro.experiments.parallel.Executor` fans out. Every cell is
keyed by its content-addressed task digest in a
:class:`~repro.store.RunLedger`, and completed digests are skipped
*before* dispatch, which buys three properties for free:

* **resume** — re-running the spec after an interruption recomputes only
  the cells the crash lost;
* **incremental extension** — widening the γ grid, adding a seed or a
  method re-pays only the new cells;
* **deduplication** — two specs sharing cells (same dataset content, same
  parameters) share ledger entries.

Aggregates (mean ± std across seeds) are rebuilt from ledger queries, so
an interrupted-and-resumed run is bitwise identical to an uninterrupted
one, serial or parallel.

Example spec (YAML)::

    name: compas-gamma-sweep
    datasets:
      - {name: compas, scale: 0.25}
    methods: [original, pfr]
    gammas: [0.0, 0.5, 1.0]
    seeds: [0, 1, 2]
    harness: {n_components: 3}
    method_params:
      pfr: {C: 1.0}

Run it with ``repro experiments run spec.yaml --store DIR`` or
:func:`run_spec`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ValidationError
from ..obs.metrics import get_registry
from ..obs.trace import emit_metrics, span, trace_enabled
from ..store import RunLedger, coerce_ledger, decode_method_result, task_digest
from .builders import WorkloadFactory
from .harness import ExperimentHarness, cell_task
from .parallel import get_executor, spawn_seeds
from .repetition import _collect

__all__ = [
    "RunSpec",
    "RunReport",
    "load_run_spec",
    "run_spec",
    "compile_cells",
    "parse_shard",
    "shard_of",
]

#: Harness constructor knobs a spec may set (the split/graph/representation
#: configuration). ``seed`` is excluded — it comes from the spec's seed
#: axis — and ``store``/``workers`` are runtime arguments, not scenario
#: parameters.
_HARNESS_KEYS = frozenset(
    {
        "test_size",
        "n_quantiles",
        "rating_resolution",
        "n_neighbors",
        "n_components",
        "landmarks",
        "landmark_strategy",
        "method_overrides",
    }
)


@dataclass(frozen=True)
class RunSpec:
    """One declarative scenario matrix: datasets × methods × γ × seeds.

    Attributes
    ----------
    name:
        Human-readable identifier, recorded in the report.
    datasets:
        Tuple of ``(workload_name, scale)`` pairs.
    methods:
        Harness method names (``pfr``, ``original+``, ...).
    gammas:
        γ grid applied to every method (methods that ignore γ simply key
        their cells on it).
    seeds:
        Explicit seed tuple; each seeds the dataset draw *and* the
        harness split, exactly like :func:`~repro.experiments.repeat_methods`.
    harness:
        Extra :class:`~repro.experiments.ExperimentHarness` constructor
        arguments applied to every cell (validated against the known
        knobs).
    method_params:
        Per-method keyword arguments (may include the classifier ``C``),
        e.g. ``{"pfr": {"C": 10.0}}``.
    """

    name: str
    datasets: tuple
    methods: tuple
    gammas: tuple
    seeds: tuple
    harness: dict = field(default_factory=dict)
    method_params: dict = field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        """Total cells in the matrix."""
        return (
            len(self.datasets) * len(self.methods)
            * len(self.gammas) * len(self.seeds)
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Validate and normalize a plain-dict (YAML/JSON) spec."""
        if not isinstance(data, dict):
            raise ValidationError(
                f"a run spec must be a mapping; got {type(data).__name__}"
            )
        known = {
            "name", "datasets", "methods", "gammas", "seeds", "harness",
            "method_params",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(
                f"unknown run-spec fields {unknown}; known: {sorted(known)}"
            )

        name = str(data.get("name", "run"))

        raw_datasets = data.get("datasets")
        if not raw_datasets:
            raise ValidationError("run spec needs a non-empty 'datasets' list")
        datasets = []
        for item in raw_datasets:
            if isinstance(item, str):
                item = {"name": item}
            if not isinstance(item, dict) or "name" not in item:
                raise ValidationError(
                    "each dataset must be a workload name or a "
                    "{name, scale} mapping"
                )
            extra = sorted(set(item) - {"name", "scale"})
            if extra:
                raise ValidationError(
                    f"unknown dataset fields {extra}; known: ['name', 'scale']"
                )
            scale = float(item.get("scale", 1.0))
            # WorkloadFactory validates the name (and pins the scale range
            # check to one place).
            WorkloadFactory(str(item["name"]), scale=scale)
            datasets.append((str(item["name"]), scale))
        names = [name for name, _scale in datasets]
        if len(set(names)) != len(names):
            # The report keys results by dataset *name*; two entries for
            # one workload (e.g. two scales) would silently collapse into
            # a single row. Express that as two specs instead.
            raise ValidationError(f"datasets contains duplicates: {names}")

        methods = tuple(str(m) for m in data.get("methods") or ())
        if not methods:
            raise ValidationError("run spec needs a non-empty 'methods' list")
        if len(set(methods)) != len(methods):
            raise ValidationError(f"methods contains duplicates: {list(methods)}")

        gammas = tuple(float(g) for g in data.get("gammas", (0.5,)))
        if not gammas:
            raise ValidationError("run spec needs at least one gamma")
        if len(set(gammas)) != len(gammas):
            raise ValidationError(f"gammas contains duplicates: {list(gammas)}")

        raw_seeds = data.get("seeds", (0,))
        if isinstance(raw_seeds, int):
            if raw_seeds < 1:
                raise ValidationError(
                    f"seeds count must be >= 1; got {raw_seeds}"
                )
            seeds = spawn_seeds(0, raw_seeds)
        elif isinstance(raw_seeds, dict):
            extra = sorted(set(raw_seeds) - {"count", "root"})
            if extra:
                raise ValidationError(
                    f"unknown seeds fields {extra}; known: ['count', 'root']"
                )
            count = int(raw_seeds.get("count", 0))
            if count < 1:
                raise ValidationError(f"seeds count must be >= 1; got {count}")
            seeds = spawn_seeds(int(raw_seeds.get("root", 0)), count)
        else:
            seeds = tuple(int(s) for s in raw_seeds)
        if not seeds:
            raise ValidationError("run spec needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ValidationError(f"seeds contains duplicates: {list(seeds)}")

        harness = dict(data.get("harness") or {})
        bad = sorted(set(harness) - _HARNESS_KEYS)
        if bad:
            raise ValidationError(
                f"unknown harness fields {bad}; known: {sorted(_HARNESS_KEYS)}"
            )

        method_params = {
            str(method): dict(params)
            for method, params in (data.get("method_params") or {}).items()
        }
        for method, params in method_params.items():
            if method not in methods:
                raise ValidationError(
                    f"method_params names {method!r} which is not in methods "
                    f"{list(methods)}"
                )
            # γ is a spec axis, not a per-method parameter; letting it
            # through would explode deep in a worker with a confusing
            # "multiple values for keyword argument" TypeError.
            reserved = sorted({"gamma", "workers", "store"} & set(params))
            if reserved:
                raise ValidationError(
                    f"method_params[{method!r}] may not set {reserved}; "
                    "gamma is the spec's 'gammas' axis and workers/store "
                    "are runtime arguments"
                )

        return cls(
            name=name,
            datasets=tuple(datasets),
            methods=methods,
            gammas=gammas,
            seeds=seeds,
            harness=harness,
            method_params=method_params,
        )

    def to_dict(self) -> dict:
        """Plain-dict view (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "datasets": [
                {"name": name, "scale": scale} for name, scale in self.datasets
            ],
            "methods": list(self.methods),
            "gammas": list(self.gammas),
            "seeds": list(self.seeds),
            "harness": dict(self.harness),
            "method_params": {
                method: dict(params)
                for method, params in self.method_params.items()
            },
        }


def load_run_spec(path) -> RunSpec:
    """Load a :class:`RunSpec` from a YAML or JSON file.

    ``.json`` files parse with the stdlib; anything else goes through
    PyYAML when available (YAML is a superset of JSON, so a JSON document
    under a ``.yaml`` name still loads). Without PyYAML, non-JSON files
    fall back to a JSON parse and fail with a clear message.
    """
    path = Path(path)
    if not path.is_file():
        raise ValidationError(f"run spec not found: {path}")
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid JSON in {path}: {exc}") from exc
        return RunSpec.from_dict(data)
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is in the base image
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"cannot parse {path}: PyYAML is not installed and the file "
                f"is not valid JSON ({exc})"
            ) from exc
        return RunSpec.from_dict(data)
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ValidationError(f"invalid YAML in {path}: {exc}") from exc
    return RunSpec.from_dict(data)


@dataclass(frozen=True)
class RunReport:
    """What one :func:`run_spec` invocation did, rebuilt from the ledger.

    Attributes
    ----------
    spec:
        The spec that ran.
    cells:
        One dict per cell — ``dataset``, ``scale``, ``seed``, ``method``,
        ``gamma``, ``digest``, and ``cached`` (True when the cell was
        already in the ledger before this run) — in deterministic matrix
        order. A sharded run lists only its shard's cells and adds each
        cell's ``shard`` index.
    results:
        ``{(dataset, method, gamma, seed): MethodResult}`` decoded from
        the ledger.
    aggregates:
        ``{(dataset, method, gamma): AggregateResult}`` across seeds
        (present when the spec has ≥ 2 seeds).
    telemetry:
        Observability sidecar (:mod:`repro.obs`): wall-clock, cell
        counts, and the parent process's ledger hit/miss deltas for this
        run. Purely informational — never part of any digest, and absent
        keys must not be relied on.
    """

    spec: RunSpec
    cells: list
    results: dict = field(repr=False)
    aggregates: dict = field(repr=False)
    telemetry: dict = field(default_factory=dict, repr=False)

    @property
    def n_total(self) -> int:
        return len(self.cells)

    @property
    def n_cached(self) -> int:
        return sum(1 for cell in self.cells if cell["cached"])

    @property
    def n_computed(self) -> int:
        return self.n_total - self.n_cached

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the ledger (0.0 on an empty spec)."""
        return self.n_cached / self.n_total if self.cells else 0.0

    def to_json(self) -> dict:
        """Machine-readable summary (what ``--json`` prints)."""
        aggregates = {}
        for (dataset, method, gamma), agg in self.aggregates.items():
            key = f"{dataset}/{method}/gamma={gamma:g}"
            aggregates[key] = {
                "n_runs": agg.n_runs,
                "mean": agg.mean,
                "std": agg.std,
            }
        return {
            "name": self.spec.name,
            "total": self.n_total,
            "cached": self.n_cached,
            "computed": self.n_computed,
            "hit_rate": self.hit_rate,
            "cells": self.cells,
            "aggregates": aggregates,
            "telemetry": self.telemetry,
        }


# -- deterministic sharding ------------------------------------------------
#
# A sharded run partitions the compiled cell list by a stable hash of each
# cell's *task digest* — never by list position — so the assignment is a
# pure function of the cell's identity: reordering the spec, widening the
# γ grid, or adding seeds/methods/datasets can add cells to a shard but
# can never move an existing cell to a different one. K machines each run
# `run_spec(spec, shard=(i, K))` against their own store; `repro store
# merge` unions the stores; a final un-sharded `run_spec` over the merged
# store finds every cell cached and rebuilds the exact un-sharded report.

def shard_of(digest: str, n_shards: int) -> int:
    """Shard index of a task digest: stable, order-free, uniform.

    Uses the leading 64 bits of the (already cryptographic) digest modulo
    ``n_shards``, so for any K the shards are a disjoint cover of the
    cell set and an existing cell's assignment never changes when the
    grid around it grows.
    """
    if not isinstance(n_shards, int) or n_shards < 1:
        raise ValidationError(
            f"n_shards must be a positive integer; got {n_shards!r}"
        )
    try:
        return int(str(digest)[:16], 16) % n_shards
    except ValueError as exc:
        raise ValidationError(
            f"not a hex task digest: {digest!r}"
        ) from exc


def parse_shard(shard) -> tuple[int, int] | None:
    """Normalize a shard selector to ``(index, count)``.

    Accepts ``None`` (no sharding), an ``(i, K)`` pair, or the CLI's
    ``"i/K"`` string; validates ``0 <= i < K``.
    """
    if shard is None:
        return None
    if isinstance(shard, str):
        index_text, sep, count_text = shard.partition("/")
        if not sep:
            raise ValidationError(
                f"shard must look like 'i/K' (e.g. 0/4); got {shard!r}"
            )
        try:
            index, count = int(index_text), int(count_text)
        except ValueError as exc:
            raise ValidationError(
                f"shard must look like 'i/K' with integer i and K; "
                f"got {shard!r}"
            ) from exc
    else:
        try:
            index, count = shard
            index, count = int(index), int(count)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"shard must be None, 'i/K', or an (i, K) pair; got {shard!r}"
            ) from exc
    if count < 1:
        raise ValidationError(f"shard count must be >= 1; got {count}")
    if not 0 <= index < count:
        raise ValidationError(
            f"shard index must be in [0, {count}); got {index}"
        )
    return index, count


def compile_cells(spec: RunSpec, *, ledger: RunLedger | None = None) -> list:
    """The spec's flat cell list, in deterministic matrix order.

    Each cell is a dict of ``dataset``/``scale``/``seed``/``method``/
    ``gamma``/``digest``/``cached`` (``cached`` is False when no ledger is
    given). This is the single compilation step shared by :func:`run_spec`
    and the sharding layer — the digests here are what :func:`shard_of`
    partitions, so tests can assert cover/disjointness/stability without
    running anything.

    Materializes each dataset × seed slice once, only to fingerprint it;
    the arrays are dropped immediately, so memory peaks at one dataset
    regardless of matrix size.
    """
    fingerprints = {}
    for dataset_name, scale in spec.datasets:
        factory = WorkloadFactory(dataset_name, scale=scale)
        for seed in spec.seeds:
            harness = ExperimentHarness(
                factory(seed), seed=seed, **spec.harness
            )
            fingerprints[(dataset_name, scale, seed)] = (
                harness.task_fingerprint()
            )
            del harness

    cells = []
    for dataset_name, scale in spec.datasets:
        for method in spec.methods:
            params = dict(spec.method_params.get(method, {}))
            C = float(params.pop("C", 1.0))
            for gamma in spec.gammas:
                for seed in spec.seeds:
                    key = (dataset_name, scale, seed)
                    digest = task_digest(
                        cell_task(fingerprints[key], method, gamma, C, params)
                    )
                    cells.append(
                        {
                            "dataset": dataset_name,
                            "scale": scale,
                            "seed": seed,
                            "method": method,
                            "gamma": gamma,
                            "digest": digest,
                            "cached": (
                                ledger.contains(digest)
                                if ledger is not None else False
                            ),
                        }
                    )
    return cells


# -- executor task function (module-level for process-backend pickling) ----

def _spec_cell_task(state, task):
    """Run one cell; harnesses are rebuilt lazily, once per slice.

    ``state`` ships only the harness kwargs and the ledger (a root path) —
    never materialized datasets — so a worker pays for exactly the
    dataset × seed slices it executes, rebuilding each deterministically
    from its :class:`~repro.experiments.WorkloadFactory` and caching the
    prepared harness in its own copy of ``state`` so every later cell on
    the same slice reuses the staged fit plans.
    """
    dataset_name, scale, seed, method, gamma, C, params, digest = task
    key = (dataset_name, scale, seed)
    harness = state["harnesses"].get(key)
    if harness is None:
        harness = ExperimentHarness(
            WorkloadFactory(dataset_name, scale=scale)(seed),
            seed=seed, store=state["store"], **state["harness_kwargs"],
        )
        state["harnesses"][key] = harness
    if not trace_enabled():
        return harness.run_method(method, gamma=gamma, C=C, **params)
    attrs = {
        "digest": digest,
        "dataset": dataset_name,
        "method": method,
        "gamma": float(gamma),
        "seed": int(seed),
        "cached": False,
        "worker": os.getpid(),
    }
    if state.get("shard") is not None:
        # Shard-labeled spans: a merged multi-machine trace stays
        # attributable to the shard that computed each cell.
        attrs["shard"] = state["shard"]
    with span("spec.cell", **attrs):
        return harness.run_method(method, gamma=gamma, C=C, **params)


def run_spec(spec: RunSpec, *, store, workers=None, shard=None) -> RunReport:
    """Execute a :class:`RunSpec` (or one shard of it) through a run ledger.

    Compiles the matrix to cells, skips every digest already in the
    ledger, fans the missing cells out through the PR-4 executor (workers
    rebuild each dataset × seed slice's harness lazily from its workload
    factory and reuse it for every cell of that slice, so the staged-fit
    γ amortization survives the fan-out without shipping datasets), and
    rebuilds results and aggregates from ledger queries. Serial and
    parallel runs — and interrupted-then-resumed runs — are bitwise
    identical.

    Parameters
    ----------
    spec:
        The scenario matrix (see :class:`RunSpec` / :func:`load_run_spec`).
    store:
        Ledger directory or :class:`~repro.store.RunLedger` (required —
        the ledger is what makes the spec resumable).
    workers:
        Process fan-out for the missing cells (``None`` = serial).
    shard:
        ``None`` (the whole matrix), or ``"i/K"`` / ``(i, K)`` to run only
        the cells :func:`shard_of` assigns to shard *i* of *K*. The
        partition is keyed on each cell's task digest, so it is disjoint,
        covering, independent of cell order, and stable under grid
        widening. K shards each with N workers compose: every shard runs
        its own executor against its own store, and ``repro store merge``
        unions the stores afterwards. A sharded report covers only this
        shard's cells; aggregates are built only for (dataset, method, γ)
        groups whose every seed landed in this shard, so no partial
        cross-seed statistics ever leave a shard — re-run the merged
        store un-sharded to rebuild the full (bitwise-identical) report.
    """
    ledger = coerce_ledger(store)
    if not isinstance(ledger, RunLedger):
        raise ValidationError(
            "run_spec requires a store (a ledger directory path or a "
            f"RunLedger); got {store!r}"
        )
    shard = parse_shard(shard)

    start = time.perf_counter()
    stats_before = ledger.stats()
    span_attrs = {"name": spec.name}
    if shard is not None:
        span_attrs["shard"] = f"{shard[0]}/{shard[1]}"
    run_span = span("spec.run", **span_attrs)
    run_span.__enter__()
    try:
        report = _run_spec_inner(
            spec, ledger, workers, shard, start, stats_before, run_span
        )
    except BaseException:
        run_span.__exit__(ValidationError, None, None)
        raise
    run_span.__exit__(None, None, None)
    # A self-contained trace: snapshot the parent's counters so `repro
    # obs summary` can report the ledger hit rate without the registry.
    emit_metrics()
    return report


def _run_spec_inner(
    spec: RunSpec, ledger: RunLedger, workers, shard, start, stats_before,
    run_span,
) -> RunReport:
    cells = compile_cells(spec, ledger=ledger)
    shard_label = None
    if shard is not None:
        index, count = shard
        shard_label = f"{index}/{count}"
        for cell in cells:
            cell["shard"] = shard_of(cell["digest"], count)
        cells = [cell for cell in cells if cell["shard"] == index]
    method_call = {}
    for method in spec.methods:
        params = dict(spec.method_params.get(method, {}))
        method_call[method] = (float(params.pop("C", 1.0)), params)
    pending = [
        (
            cell["dataset"], cell["scale"], cell["seed"], cell["method"],
            cell["gamma"], method_call[cell["method"]][0],
            method_call[cell["method"]][1], cell["digest"],
        )
        for cell in cells
        if not cell["cached"]
    ]

    run_span.set(
        total=len(cells),
        cached=len(cells) - len(pending),
        computed=len(pending),
    )
    if shard_label is not None:
        # Shard-labeled metrics: a fleet scraping one registry can tell
        # the shards' progress apart.
        registry = get_registry()
        registry.inc("spec.shard.cells", len(cells),
                     name=spec.name, shard=shard_label)
        registry.inc("spec.shard.computed", len(pending),
                     name=spec.name, shard=shard_label)
    state = {
        "harnesses": {},
        "store": ledger,
        "harness_kwargs": spec.harness,
        "shard": shard_label,
    }
    get_executor(workers).map(_spec_cell_task, pending, state=state)

    results = {}
    for cell in cells:
        entry = ledger.get(cell["digest"])
        if entry is None:  # pragma: no cover - a worker died before writing
            raise ValidationError(
                f"cell {cell['dataset']}/{cell['method']}/gamma="
                f"{cell['gamma']:g}/seed={cell['seed']} is missing from the "
                f"ledger at {ledger.root} after execution; re-run the spec "
                "to resume"
            )
        results[
            (cell["dataset"], cell["method"], cell["gamma"], cell["seed"])
        ] = decode_method_result(entry.payload)

    aggregates = {}
    if len(spec.seeds) > 1:
        for dataset_name, _scale in spec.datasets:
            for method in spec.methods:
                for gamma in spec.gammas:
                    group = [
                        results[(dataset_name, method, gamma, seed)]
                        for seed in spec.seeds
                        if (dataset_name, method, gamma, seed) in results
                    ]
                    # A shard holding only some of a group's seeds must
                    # not publish a partial mean/std — those cells
                    # aggregate after the merge, where every seed is
                    # present.
                    if len(group) == len(spec.seeds):
                        aggregates[(dataset_name, method, gamma)] = _collect(
                            group
                        )

    stats_after = ledger.stats()
    delta = {
        key: stats_after[key] - stats_before[key]
        for key in ("hits", "misses", "lookups", "gets", "puts")
    }
    delta["hit_rate"] = (
        delta["hits"] / delta["lookups"] if delta["lookups"] else 0.0
    )
    telemetry = {
        "wall_s": time.perf_counter() - start,
        "cells": {
            "total": len(cells),
            "cached": sum(1 for cell in cells if cell["cached"]),
            "computed": sum(1 for cell in cells if not cell["cached"]),
        },
        "ledger": delta,
        "trace_enabled": trace_enabled(),
    }
    if shard_label is not None:
        telemetry["shard"] = shard_label
    return RunReport(
        spec=spec, cells=cells, results=results, aggregates=aggregates,
        telemetry=telemetry,
    )
