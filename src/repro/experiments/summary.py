"""One-shot workload reports: everything the paper says about a dataset.

:func:`workload_report` runs the full §4 protocol on one workload —
dataset statistics, fairness-graph diagnostics, every method's utility /
individual-fairness / group-fairness numbers, and PFR's γ trade-off
frontier — and renders it as a single text report. Exposed on the CLI as
``python -m repro report <dataset>``.
"""

from __future__ import annotations

from ..exceptions import ValidationError
from ..graphs import graph_summary
from .figures import REAL_METHODS, SYNTHETIC_METHODS, _harness
from .pareto import tradeoff_frontier
from .report import render_table

__all__ = ["workload_report"]

_METHODS = {
    "synthetic": SYNTHETIC_METHODS + ("hardt",),
    "crime": REAL_METHODS + ("hardt+",),
    "compas": REAL_METHODS + ("hardt+",),
}

_GAMMAS = {"synthetic": 0.9, "crime": 1.0, "compas": 1.0}


def workload_report(
    dataset_name: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    gammas=(0.0, 0.25, 0.5, 0.75, 1.0),
    store=None,
) -> str:
    """Full §4-style report for one workload, rendered as text.

    ``store`` routes every method comparison and γ-frontier cell through
    the content-addressed run ledger (:mod:`repro.store`), so the report's
    tables are rebuilt from ledger queries — regenerating a report over a
    populated ledger decodes instead of refitting.
    """
    if dataset_name not in _METHODS:
        raise ValidationError(
            f"unknown dataset {dataset_name!r}; use synthetic, crime or compas"
        )
    harness = _harness(dataset_name, seed=seed, scale=scale, store=store)
    harness.prepare()
    data = harness.dataset

    sections = []

    # --- dataset statistics (Table 1 row) -------------------------------
    row = data.table1_row()
    sections.append(
        "== dataset ==\n"
        + render_table(
            ["|X|", "|X_s=0|", "|X_s=1|", "base rate s=0", "base rate s=1"],
            [[row["n"], row["n_s0"], row["n_s1"],
              row["base_rate_s0"], row["base_rate_s1"]]],
            float_format="{:.2f}",
        )
    )

    # --- fairness-graph diagnostics --------------------------------------
    stats = graph_summary(harness.W_fair_full, groups=data.s)
    sections.append(
        "== fairness graph ==\n"
        + render_table(
            ["edges", "density", "components", "isolated",
             "mean degree", "cross-group"],
            [[stats["n_edges"], stats["density"], stats["n_components"],
              stats["n_isolated"], stats["mean_degree"],
              stats["cross_group_fraction"]]],
            float_format="{:.4f}",
        )
    )

    # --- method comparison -------------------------------------------------
    results = harness.run_methods(
        _METHODS[dataset_name], gamma=_GAMMAS[dataset_name]
    )
    rows = [
        [
            method,
            r.auc,
            r.consistency_wf,
            r.consistency_wx,
            r.rates.gap("positive_rate"),
            r.rates.gap("fpr"),
            r.rates.gap("fnr"),
        ]
        for method, r in results.items()
    ]
    sections.append(
        "== methods ==\n"
        + render_table(
            ["method", "AUC", "Cons(WF)", "Cons(WX)", "parity", "FPR gap",
             "FNR gap"],
            rows,
        )
    )

    # --- PFR trade-off frontier ------------------------------------------
    frontier = tradeoff_frontier(
        harness, "pfr", grid={"gamma": list(gammas)}
    )["frontier"]
    frontier_rows = [
        [params["gamma"], r.auc, r.consistency_wf]
        for params, r in frontier
    ]
    sections.append(
        "== PFR Pareto frontier (AUC vs Consistency(WF)) ==\n"
        + render_table(["gamma", "AUC", "Consistency(WF)"], frontier_rows)
    )

    header = f"### workload report: {dataset_name} (scale={scale}, seed={seed}) ###"
    return header + "\n\n" + "\n\n".join(sections)
