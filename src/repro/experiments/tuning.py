"""The paper's hyper-parameter tuning protocol, end to end (§4.1).

"Each dataset is split into separate training and test sets. On the
training set, we perform 5-fold cross-validation to find the best
hyper-parameters for each model via grid search."

:func:`default_grid` holds the canonical search space per method;
:func:`tune_methods` runs the search for any subset of methods on a
workload and returns the winning operating points, which can be fed
straight back into :meth:`ExperimentHarness.run_method`. The figure
drivers ship with the results of this procedure baked in (see
``figures._harness``); this module lets you re-derive or extend them.

The PFR grid's dominant axis is γ, and the harness routes every PFR fold
fit through a cached :class:`~repro.core.SpectralFitPlan` keyed on (fold,
structural params): the fold's graphs, Laplacians and projected objective
matrices are built once and every γ point in the grid reuses them, so
widening the γ grid is nearly free.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from .harness import ExperimentHarness

__all__ = ["default_grid", "tune_methods", "apply_tuned"]

_GRIDS = {
    "original": {"C": [0.01, 0.1, 1.0, 10.0]},
    "pfr": {
        "gamma": [0.0, 0.3, 0.5, 0.7, 0.9, 1.0],
        "C": [0.1, 1.0, 10.0],
    },
    "ifair": {
        "n_prototypes": [5, 10],
        "mu_fair": [0.1, 1.0, 5.0],
        "C": [1.0],
    },
    "lfr": {
        "a_x": [0.01, 0.1],
        "a_z": [1.0, 10.0, 50.0],
        "C": [1.0],
    },
}


def default_grid(method: str) -> dict:
    """The canonical search grid for a method (copy; edit freely)."""
    base = method.rstrip("+")
    if base not in _GRIDS:
        raise ValidationError(
            f"no default grid for {method!r}; known: {sorted(_GRIDS)}"
        )
    return {key: list(values) for key, values in _GRIDS[base].items()}


def tune_methods(
    harness: ExperimentHarness,
    methods=("original", "pfr"),
    *,
    grids: dict | None = None,
    n_splits: int = 5,
    scoring: str = "roc_auc",
    workers=None,
    store=None,
) -> dict:
    """Grid-search every method on the harness's training split.

    Parameters
    ----------
    harness:
        A prepared (or preparable) harness for the workload.
    methods:
        Methods to tune (``hardt`` has no representation hyper-parameters
        and is rejected).
    grids:
        Optional ``{method: grid}`` overrides of :func:`default_grid`.
    n_splits, scoring:
        Cross-validation configuration (the paper: 5 folds).
    workers:
        Fan each method's γ×C grid points out across processes (``None``
        = serial; an int, ``"auto"``, or an
        :class:`~repro.experiments.parallel.Executor`). Tuned operating
        points are bitwise identical either way.
    store:
        Run-ledger directory or :class:`~repro.store.RunLedger` used for
        this search only (the harness's own ``store`` is restored
        afterwards): every grid point is read-through/written-through the
        ledger, so a killed search resumes at the missing points and a
        widened grid pays only its new points.

    Returns
    -------
    dict
        ``{method: {"best_params", "best_score", "results"}}``.
    """
    harness.prepare()
    grids = grids or {}
    out = {}
    previous_store = harness.store
    if store is not None:
        harness.store = store
    try:
        for method in methods:
            grid = grids.get(method, default_grid(method))
            out[method] = harness.tune(
                method, grid, n_splits=n_splits, scoring=scoring,
                workers=workers,
            )
    finally:
        harness.store = previous_store
    return out


def apply_tuned(harness: ExperimentHarness, method: str, tuned: dict):
    """Run a method at its tuned operating point and return the MethodResult.

    ``tuned`` is one entry of :func:`tune_methods`'s output.
    """
    params = dict(tuned["best_params"])
    C = params.pop("C", 1.0)
    gamma = params.pop("gamma", 0.5)
    return harness.run_method(method, gamma=gamma, C=C, **params)
