"""Similarity and fairness graphs (paper §3.1–3.2).

* :func:`knn_graph` builds the data-driven heat-kernel graph ``WX``.
* :func:`equivalence_class_graph` and :func:`between_group_quantile_graph`
  build the fairness graph ``WF`` for comparable and incomparable
  individuals respectively.
* :mod:`repro.graphs.laplacian` holds the Laplacian machinery the PFR
  optimization consumes.
"""

from .elicitation import (
    equivalence_classes_from_pairs,
    likert_judgments,
    noisy_pairwise_judgments,
)
from .fairness import (
    between_group_quantile_graph,
    equivalence_class_graph,
    pairwise_judgment_graph,
    subsample_edges,
)
from .knn import knn_cross, knn_graph, median_heuristic, pairwise_sq_distances
from .laplacian import (
    combine_laplacians,
    degree_vector,
    edge_count,
    graph_density,
    laplacian,
    n_connected_components,
)
from .quantiles import quantile_bucket, within_group_quantiles
from .stats import from_networkx, graph_summary, to_networkx

__all__ = [
    "equivalence_classes_from_pairs",
    "likert_judgments",
    "noisy_pairwise_judgments",
    "between_group_quantile_graph",
    "equivalence_class_graph",
    "pairwise_judgment_graph",
    "subsample_edges",
    "knn_cross",
    "knn_graph",
    "median_heuristic",
    "pairwise_sq_distances",
    "combine_laplacians",
    "degree_vector",
    "edge_count",
    "graph_density",
    "laplacian",
    "n_connected_components",
    "quantile_bucket",
    "within_group_quantiles",
    "from_networkx",
    "graph_summary",
    "to_networkx",
]
