"""Simulated human judgment elicitation (paper §3.2).

The paper's fairness graphs are built from *elicited* human judgments:
binary pairwise similarity verdicts, Likert-scale suitability ratings that
induce equivalence classes, or within-group rankings. This module supplies
the elicitation layer — including the imperfections real judges have — so
experiments can study how judgment noise and coverage propagate into PFR:

* :func:`likert_judgments` — "How suitable is A for the task (1..L)?"
  with judge noise; the discrete answers are Definition 1 equivalence
  classes.
* :func:`noisy_pairwise_judgments` — "Is A similar to B?" binary verdicts
  for a sampled set of pairs, with false-positive/false-negative judge
  error, relative to a ground-truth equivalence structure.
* :func:`equivalence_classes_from_pairs` — union-find closure: sparse
  positive verdicts imply classes by transitivity, exactly how a practical
  elicitation pipeline would consolidate them.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_random_state, column_or_1d
from ..exceptions import GraphConstructionError

__all__ = [
    "likert_judgments",
    "noisy_pairwise_judgments",
    "equivalence_classes_from_pairs",
]


def likert_judgments(
    suitability,
    *,
    n_levels: int = 5,
    judge_noise: float = 0.0,
    coverage: float = 1.0,
    seed=None,
) -> np.ndarray:
    """Elicit Likert-scale suitability judgments (§3.2: "How suitable is A
    for the given task (e.g., on a Likert scale)").

    The latent suitability is rank-normalized, perturbed by judge noise,
    and cut into ``n_levels`` equal quantile bands — the judge's discrete
    answer. Individuals outside the covered sample get -1 (no judgment),
    matching the paper's sparse-elicitation setting.

    Parameters
    ----------
    suitability:
        Latent task suitability per individual (any real scale).
    n_levels:
        Number of Likert levels L; answers are 1..L.
    judge_noise:
        Standard deviation of the perturbation applied to the
        rank-normalized suitability (0 = perfectly reliable judge; 0.1
        already swaps close candidates).
    coverage:
        Fraction of individuals the judges actually rate.
    seed:
        Randomness for noise and coverage sampling.

    Returns
    -------
    ndarray of int64
        Likert level 1..L per individual; -1 where no judgment was elicited.
    """
    values = column_or_1d(suitability, name="suitability", dtype=np.float64)
    if n_levels < 2:
        raise GraphConstructionError(f"n_levels must be >= 2; got {n_levels}")
    if judge_noise < 0:
        raise GraphConstructionError(f"judge_noise must be >= 0; got {judge_noise}")
    if not 0.0 < coverage <= 1.0:
        raise GraphConstructionError(f"coverage must be in (0, 1]; got {coverage}")
    rng = check_random_state(seed)
    n = len(values)

    ranks = np.argsort(np.argsort(values)) / max(n - 1, 1)
    perceived = ranks + rng.normal(0.0, judge_noise, size=n)
    levels = np.clip(
        np.floor(perceived * n_levels).astype(np.int64) + 1, 1, n_levels
    )

    covered = rng.random(n) < coverage
    out = np.where(covered, levels, -1)
    return out.astype(np.int64)


def noisy_pairwise_judgments(
    classes,
    *,
    n_pairs: int,
    false_positive_rate: float = 0.0,
    false_negative_rate: float = 0.0,
    seed=None,
):
    """Elicit binary pairwise similarity verdicts with judge error.

    Ground truth is an equivalence structure (``classes``); the elicitation
    samples ``n_pairs`` random distinct pairs and asks the (imperfect)
    judge "are these two equally deserving?".

    Parameters
    ----------
    classes:
        Ground-truth equivalence class per individual (-1 = no class; such
        individuals always produce "not similar").
    n_pairs:
        Number of pairs shown to the judge.
    false_positive_rate:
        Probability of answering "similar" for a genuinely dissimilar pair.
    false_negative_rate:
        Probability of answering "not similar" for a genuinely similar pair.
    seed:
        Sampling and error randomness.

    Returns
    -------
    positives : ndarray of shape (k, 2)
        Pairs judged similar (the input to a fairness graph).
    asked : ndarray of shape (n_pairs, 2)
        All pairs shown to the judge (for auditing coverage).
    """
    classes = column_or_1d(classes, name="classes")
    n = len(classes)
    if n < 2:
        raise GraphConstructionError("need at least two individuals")
    if n_pairs < 1:
        raise GraphConstructionError(f"n_pairs must be >= 1; got {n_pairs}")
    for name, rate in (
        ("false_positive_rate", false_positive_rate),
        ("false_negative_rate", false_negative_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise GraphConstructionError(f"{name} must be in [0, 1]; got {rate}")
    rng = check_random_state(seed)

    left = rng.integers(0, n, size=n_pairs)
    offset = rng.integers(1, n, size=n_pairs)
    right = (left + offset) % n  # guaranteed distinct from left
    asked = np.column_stack([left, right])

    truly_similar = (
        (classes[left] == classes[right]) & (classes[left] != -1)
    )
    flip = rng.random(n_pairs)
    verdict = np.where(
        truly_similar,
        flip >= false_negative_rate,
        flip < false_positive_rate,
    )
    return asked[verdict], asked


def equivalence_classes_from_pairs(pairs, n: int) -> np.ndarray:
    """Consolidate sparse positive verdicts into equivalence classes.

    Judgments are transitive in intent ("equally deserving"), so the
    connected components of the verdict graph are the elicited equivalence
    classes — computed here with union-find.

    Parameters
    ----------
    pairs:
        Iterable of ``(i, j)`` pairs judged similar.
    n:
        Number of individuals.

    Returns
    -------
    ndarray of int64
        Class index per individual; singletons (never judged similar to
        anyone) get -1.
    """
    pairs = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
        raise GraphConstructionError(f"pair indices must be in [0, {n - 1}]")

    parent = np.arange(n)

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    for i, j in pairs:
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            parent[rj] = ri

    roots = np.array([find(i) for i in range(n)])
    classes = np.full(n, -1, dtype=np.int64)
    root_values, counts = np.unique(roots, return_counts=True)
    next_class = 0
    for root, count in zip(root_values, counts):
        if count < 2:
            continue
        classes[roots == root] = next_class
        next_class += 1
    return classes
