"""Fairness-graph construction (paper §3.2).

Two constructions are provided, matching the paper's two elicitation
regimes:

* :func:`equivalence_class_graph` — **comparable individuals** (§3.2.1,
  Definition 1): an edge joins two individuals iff they belong to the same
  equivalence class (elicited similarity judgment / rounded star rating).
* :func:`between_group_quantile_graph` — **incomparable individuals**
  (§3.2.2, Definitions 2–3): individuals are ranked within their own group;
  an edge joins individuals of *different* groups whose within-group ranks
  fall in the same quantile.

Both return sparse symmetric binary adjacency matrices with zero diagonal.
A :func:`pairwise_judgment_graph` helper turns raw elicited pairs into the
same representation, and :func:`subsample_edges` supports the paper's claim
that sparse judgments suffice.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._validation import check_random_state, column_or_1d
from ..exceptions import GraphConstructionError
from .quantiles import within_group_quantiles

__all__ = [
    "equivalence_class_graph",
    "between_group_quantile_graph",
    "pairwise_judgment_graph",
    "subsample_edges",
]


def _finalize(W: sp.spmatrix, n: int) -> sp.csr_matrix:
    W = W.tocsr()
    W = W.maximum(W.T)
    W.setdiag(0.0)
    W.eliminate_zeros()
    W.data[:] = 1.0
    return W


def equivalence_class_graph(classes, *, mask=None) -> sp.csr_matrix:
    """Fairness graph over equivalence classes (Definition 1).

    Parameters
    ----------
    classes:
        Equivalence-class label per individual (any hashable values),
        shape ``(n,)``.
    mask:
        Optional boolean array: ``False`` marks individuals with no
        elicited judgment (e.g. communities without niche.com reviews);
        they receive no edges, keeping the graph sparse as in the paper.

    Returns
    -------
    scipy.sparse.csr_matrix
        Binary symmetric adjacency: ``W_ij = 1`` iff ``[x_i] == [x_j]``.
    """
    classes = column_or_1d(classes, name="classes")
    n = len(classes)
    if mask is not None:
        mask = column_or_1d(mask, name="mask").astype(bool)
        if len(mask) != n:
            raise GraphConstructionError(
                f"mask length {len(mask)} does not match classes length {n}"
            )
    else:
        mask = np.ones(n, dtype=bool)

    rows, cols = [], []
    eligible = np.flatnonzero(mask)
    eligible_classes = classes[eligible]
    for value in np.unique(eligible_classes):
        members = eligible[eligible_classes == value]
        if len(members) < 2:
            continue
        # Complete subgraph on the class, upper triangle only.
        r, c = np.triu_indices(len(members), k=1)
        rows.append(members[r])
        cols.append(members[c])

    if not rows:
        return sp.csr_matrix((n, n))
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    W = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
    return _finalize(W, n)


def between_group_quantile_graph(
    scores,
    groups,
    *,
    n_quantiles: int = 10,
    mask=None,
) -> sp.csr_matrix:
    """Between-group quantile fairness graph (Definitions 2–3).

    Individuals are bucketed into ``n_quantiles`` quantiles *within their
    own group* (anti-subordination: raw scores are never compared across
    groups), then every pair of individuals from *different* groups sharing
    a bucket is connected. With two groups the result is bipartite per
    bucket, exactly as the paper describes.

    Parameters
    ----------
    scores:
        Within-group ranking scores (e.g. COMPAS decile scores), shape (n,).
    groups:
        Group membership per individual, shape (n,).
    n_quantiles:
        Number of quantile buckets ``q``.
    mask:
        Optional boolean array selecting the individuals with elicited
        side-information; others receive no edges.

    Returns
    -------
    scipy.sparse.csr_matrix
        Binary symmetric adjacency with ``W_ij = 1`` iff the individuals
        belong to different groups and the same within-group quantile.
    """
    scores = column_or_1d(scores, name="scores", dtype=np.float64)
    groups = column_or_1d(groups, name="groups")
    n = len(scores)
    if len(groups) != n:
        raise GraphConstructionError(
            f"scores and groups must align; got {n} vs {len(groups)}"
        )
    if mask is not None:
        mask = column_or_1d(mask, name="mask").astype(bool)
        if len(mask) != n:
            raise GraphConstructionError(f"mask length {len(mask)} != {n}")
    else:
        mask = np.ones(n, dtype=bool)

    if len(np.unique(groups[mask])) < 2:
        raise GraphConstructionError(
            "between-group quantile graph needs at least two groups with judgments"
        )

    buckets = np.full(n, -1, dtype=np.int64)
    eligible = np.flatnonzero(mask)
    buckets[eligible] = within_group_quantiles(
        scores[eligible], groups[eligible], n_quantiles
    )

    rows, cols = [], []
    for bucket in range(n_quantiles):
        in_bucket = np.flatnonzero(buckets == bucket)
        if len(in_bucket) < 2:
            continue
        bucket_groups = groups[in_bucket]
        for value in np.unique(bucket_groups):
            own = in_bucket[bucket_groups == value]
            other = in_bucket[bucket_groups != value]
            if len(own) == 0 or len(other) == 0:
                continue
            # Emit each cross-group pair once (own < other index ordering
            # would double-emit across group iterations; _finalize dedups).
            r = np.repeat(own, len(other))
            c = np.tile(other, len(own))
            keep = r < c
            rows.append(r[keep])
            cols.append(c[keep])

    if not rows:
        return sp.csr_matrix((n, n))
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    W = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
    return _finalize(W, n)


def pairwise_judgment_graph(pairs, n: int) -> sp.csr_matrix:
    """Fairness graph from raw elicited pairs (§3.2.1, binary judgments).

    Parameters
    ----------
    pairs:
        Iterable of ``(i, j)`` index pairs judged "equally deserving".
    n:
        Number of individuals.
    """
    pairs = np.asarray(list(pairs), dtype=np.int64)
    if pairs.size == 0:
        return sp.csr_matrix((n, n))
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise GraphConstructionError(f"pairs must have shape (k, 2); got {pairs.shape}")
    if pairs.min() < 0 or pairs.max() >= n:
        raise GraphConstructionError(f"pair indices must be in [0, {n - 1}]")
    if np.any(pairs[:, 0] == pairs[:, 1]):
        raise GraphConstructionError("self-pairs (i, i) are not valid judgments")
    W = sp.csr_matrix(
        (np.ones(len(pairs)), (pairs[:, 0], pairs[:, 1])), shape=(n, n)
    )
    return _finalize(W, n)


def subsample_edges(W: sp.spmatrix, fraction: float, *, seed=None) -> sp.csr_matrix:
    """Keep a random fraction of a fairness graph's edges.

    Used by the sparsity ablation: the paper stresses that pairwise
    judgments "may be sparse, if such information is obtained only for
    sampled representatives".
    """
    if not 0.0 <= fraction <= 1.0:
        raise GraphConstructionError(f"fraction must be in [0, 1]; got {fraction}")
    W = sp.triu(W.tocsr(), k=1).tocoo()
    n_edges = W.nnz
    if n_edges == 0 or fraction == 1.0:
        out = W.tocsr()
        out = out.maximum(out.T)
        return out.tocsr()
    rng = check_random_state(seed)
    keep = rng.random(n_edges) < fraction
    out = sp.csr_matrix(
        (W.data[keep], (W.row[keep], W.col[keep])), shape=W.shape
    )
    return _finalize(out, W.shape[0])
