"""k-nearest-neighbor similarity graph ``WX`` (paper §3.1).

The paper defines the data-driven similarity graph as

    WX_ij = exp(-||xi - xj||² / t)   if xi ∈ Np(xj) or xj ∈ Np(xi), else 0

where ``Np`` is the set of p nearest neighbors in euclidean space computed
*excluding the protected attributes*, and ``t`` is a scalar bandwidth
hyper-parameter. The graph is symmetric by construction (the OR rule) and
stored sparse so the COMPAS-scale datasets (n ≈ 9000) stay cheap.

Neighbor-search backends
------------------------
:func:`knn_graph` and :func:`knn_cross` accept a ``backend=`` selector so
the construction cost can be traded against exactness at scale:

===========  ==========================  =========================================
backend      complexity (n rows, f dims) accuracy guarantee
===========  ==========================  =========================================
``exact``    cKDTree — O(n log n) for    Exact neighbors. **Default.** The tree
             small f, degrades toward    degrades to near-brute-force for f ≳ 15
             O(n²·f) as f grows          (measured quadratic at f = 24).
``blocked``  O(n²·f) BLAS, O(block·n)    Exact neighbors (identical graph to
             memory                      ``exact`` on tie-free data, bitwise).
                                         Wins over the tree for f ≳ 20 and on
                                         float32 inputs; memory-bounded.
``lsh``      O(n·(T·b + T·k·f)) with T   Approximate: seeded random-hyperplane
             tables of average bucket    LSH; recall rises with
             size b                      ``n_tables``/``n_bits`` (the measured
                                         recall knob) and every deficient row
                                         falls back to an exact scan, so each
                                         row always has ``k`` neighbors.
===========  ==========================  =========================================

All backends share one distance kernel for the selected pairs, so on
tie-free data ``exact`` and ``blocked`` produce byte-identical graphs and
``lsh`` differs only where its candidate set misses a true neighbor.
Passing ``dtype=np.float32`` keeps the whole construction (distances,
weights, the returned CSR data) in float32 — no silent float64 upcast —
which halves memory traffic and roughly doubles BLAS throughput on the
``blocked``/``lsh`` paths.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from .._validation import check_array
from ..exceptions import GraphConstructionError
from ..obs.metrics import get_registry
from ..obs.trace import span

__all__ = [
    "KNN_BACKENDS",
    "knn_graph",
    "knn_cross",
    "pairwise_sq_distances",
    "median_heuristic",
]

KNN_BACKENDS = ("exact", "blocked", "lsh")

# Soft cap on the per-block scratch matrix of the blocked backend
# (entries, not bytes): 2e7 float64 entries ≈ 160 MB.
_BLOCK_ENTRIES = int(2e7)


def pairwise_sq_distances(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Dense matrix of squared euclidean distances between rows of X and Y.

    Uses the expansion ``||x-y||² = ||x||² + ||y||² - 2 x·y`` with clipping
    at zero to absorb floating-point cancellation. float32 inputs are
    computed in (and returned as) float32 — the arithmetic dtype of the
    opt-in float32 pipeline; every other dtype is upcast to float64. When
    both ``X`` and ``Y`` are given they must already agree on dtype for
    the float32 path to engage.
    """
    X = np.asarray(X)
    Y = X if Y is None else np.asarray(Y)
    if X.dtype == np.float32 and Y.dtype == np.float32:
        work = np.float32
    else:
        work = np.float64
    X = np.asarray(X, dtype=work)
    Y = np.asarray(Y, dtype=work)
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    d = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(d, 0.0, out=d)
    return d

def median_heuristic(X: np.ndarray, *, sample_size: int = 2000, seed: int = 0) -> float:
    """Median of pairwise squared distances — a standard heat-kernel bandwidth.

    For large n the median is estimated on a random subsample so the cost
    stays O(sample_size²).
    """
    X = check_array(X, name="X", dtype=None if np.asarray(X).dtype == np.float32 else np.float64)
    n = X.shape[0]
    if n > sample_size:
        rng = np.random.default_rng(seed)
        X = X[rng.choice(n, size=sample_size, replace=False)]
    d = pairwise_sq_distances(X)
    off_diagonal = d[~np.eye(d.shape[0], dtype=bool)]
    median = float(np.median(off_diagonal))
    if median <= 0.0:
        # All points coincide; any positive bandwidth yields the same graph.
        return 1.0
    return median


def _distance_view(X: np.ndarray, exclude) -> np.ndarray:
    """Columns entering the neighborhood distances (protected ones dropped)."""
    if exclude is None:
        return X
    keep = np.setdiff1d(np.arange(X.shape[1]), np.asarray(exclude, dtype=int))
    if keep.size == 0:
        raise GraphConstructionError("exclude removes every feature column")
    return X[:, keep]


def _resolve_bandwidth(bandwidth: float | None, view: np.ndarray) -> float:
    """Validate the heat-kernel bandwidth, defaulting to the median heuristic."""
    if bandwidth is None:
        bandwidth = median_heuristic(view)
    if bandwidth <= 0:
        raise GraphConstructionError(f"bandwidth must be positive; got {bandwidth}")
    return bandwidth


def _edge_weights(
    sq_distances: np.ndarray, bandwidth: float, binary: bool
) -> np.ndarray:
    """Heat-kernel (or 0/1) weights for a batch of squared distances."""
    if binary:
        return np.ones_like(sq_distances)
    return np.exp(-sq_distances / sq_distances.dtype.type(bandwidth))


def _check_backend(backend: str, options: dict | None) -> dict:
    if backend not in KNN_BACKENDS:
        raise GraphConstructionError(
            f"unknown k-NN backend {backend!r}; use one of {KNN_BACKENDS}"
        )
    options = dict(options or {})
    known = {"seed", "n_tables", "n_bits", "recall_sample", "block_entries"}
    unknown = sorted(set(options) - known)
    if unknown:
        raise GraphConstructionError(
            f"unknown backend option(s) {unknown}; known: {sorted(known)}"
        )
    return options


def _as_dtype(X: np.ndarray, dtype) -> np.ndarray:
    """Resolve the working dtype: ``None`` keeps the historical float64."""
    if dtype is None:
        return np.asarray(X, dtype=np.float64)
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise GraphConstructionError(
            f"dtype must be float32 or float64; got {dtype}"
        )
    return np.asarray(X, dtype=dtype)


def _selected_sq_distances(
    view: np.ndarray, neighbors: np.ndarray, rows: np.ndarray | None = None,
    ref_view: np.ndarray | None = None,
) -> np.ndarray:
    """Squared distances for pre-selected (row, neighbor) pairs.

    This is the *canonical* weight arithmetic every backend routes its
    selected pairs through: a strictly sequential per-feature sum of
    squared differences, then ``sqrt(acc) ** 2``. Backends may pick
    neighbors however they like (KD-tree, BLAS blocks, LSH buckets) but
    the weight attached to a given pair is byte-identical across all of
    them — and independent of how scipy's compiled distance kernels were
    vectorized (cKDTree's accumulation order varies with SIMD width for
    m >= 8, so its raw distances are not a stable reference).
    """
    ref = view if ref_view is None else ref_view
    base = view if rows is None else view[rows]
    acc = np.zeros(neighbors.shape, dtype=view.dtype)
    for j in range(view.shape[1]):
        delta = base[:, j][:, None] - ref[:, j][neighbors]
        acc += delta * delta
    # sqrt-then-square mirrors `tree.query(...)[0] ** 2`; without it the
    # backends would disagree with `exact` in the last ulp.
    return np.sqrt(acc) ** 2


def _neighbors_exact(view: np.ndarray, k: int) -> np.ndarray:
    """Exact k-NN indices (self excluded by *index*) via cKDTree.

    Returns ``neighbors`` of shape ``(n, k)``. Querying ``k+1`` and
    dropping the self *column position* is wrong under duplicate rows —
    the tree may list a coincident neighbor first and the old positional
    drop silently removed a real neighbor — so the self match is located
    by index; rows where duplicates crowded the self match out of the
    ``k+1`` set drop the farthest entry instead. The tree is used for
    selection only; weights come from :func:`_selected_sq_distances`.
    """
    n = view.shape[0]
    tree = cKDTree(view)
    _, neighbors = tree.query(view, k=k + 1)
    self_mask = neighbors == np.arange(n)[:, None]
    keep = ~self_mask
    # Rows whose k+1 nearest are all coincident duplicates may not contain
    # the row itself; drop their farthest (last) entry to get back to k.
    no_self = ~self_mask.any(axis=1)
    keep[no_self, -1] = False
    return neighbors[keep].reshape(n, k)


def _blocked_topk(
    view: np.ndarray,
    ref_view: np.ndarray,
    k: int,
    *,
    exclude_self: bool,
    block_entries: int,
) -> np.ndarray:
    """Neighbor indices via chunked brute-force distances (BLAS path)."""
    n, r = view.shape[0], ref_view.shape[0]
    block = max(1, int(block_entries) // max(r, 1))
    ref_sq = np.sum(ref_view * ref_view, axis=1)[None, :]
    out = np.empty((n, k), dtype=np.int64)
    for start in range(0, n, block):
        stop = min(n, start + block)
        chunk = view[start:stop]
        d = (
            np.sum(chunk * chunk, axis=1)[:, None]
            + ref_sq
            - 2.0 * (chunk @ ref_view.T)
        )
        if exclude_self:
            d[np.arange(stop - start), np.arange(start, stop)] = np.inf
        idx = np.argpartition(d, min(k, r - 1), axis=1)[:, :k]
        # argpartition order is arbitrary; sort each row by distance so the
        # selection (and the resulting graph) is deterministic.
        order = np.argsort(np.take_along_axis(d, idx, axis=1), axis=1, kind="stable")
        out[start:stop] = np.take_along_axis(idx, order, axis=1)
    return out


def _lsh_codes(view: np.ndarray, projections: np.ndarray) -> np.ndarray:
    """Pack sign bits of random-hyperplane projections into int64 codes."""
    bits = (view @ projections) > 0
    weights = (1 << np.arange(projections.shape[1], dtype=np.int64))
    return bits @ weights


def _lsh_candidates(
    view: np.ndarray,
    ref_view: np.ndarray | None,
    k: int,
    *,
    n_tables: int,
    n_bits: int,
    seed,
) -> np.ndarray:
    """Per-row candidate neighbor indices from ``n_tables`` LSH tables.

    Returns ``(n, n_tables * cap)`` indices into the reference set, with
    the sentinel ``r`` (one past the last row) padding rows whose buckets
    ran short. Same-set mode (``ref_view is None``) hashes one point set;
    cross mode hashes the reference set and probes it with query codes.
    """
    rng = np.random.default_rng(seed)
    same = ref_view is None
    ref = view if same else ref_view
    n, f = view.shape
    r = ref.shape[0]
    cap = k + 1 if same else k
    # Bucket cap: degenerate buckets (e.g. near-duplicate data) would make
    # the within-bucket pass quadratic; chunking a huge bucket keeps every
    # row's candidate count bounded while the pass stays O(bucket²).
    bucket_cap = max(4 * cap, 256)
    candidates = np.full((n, n_tables * cap), r, dtype=np.int64)

    for table in range(n_tables):
        projections = rng.standard_normal((f, n_bits)).astype(view.dtype)
        ref_codes = _lsh_codes(ref, projections)
        order = np.argsort(ref_codes, kind="stable")
        sorted_codes = ref_codes[order]
        if same:
            query_codes = ref_codes
        else:
            query_codes = _lsh_codes(view, projections)
        starts = np.searchsorted(sorted_codes, query_codes, side="left")
        stops = np.searchsorted(sorted_codes, query_codes, side="right")
        column = table * cap
        # Group queries by bucket so each bucket's distance block runs once.
        bucket_of = np.stack([starts, stops], axis=1)
        bucket_order = np.lexsort((bucket_of[:, 1], bucket_of[:, 0]))
        grouped = bucket_of[bucket_order]
        boundaries = np.flatnonzero(
            np.any(np.diff(grouped, axis=0) != 0, axis=1)
        ) + 1
        for group in np.split(bucket_order, boundaries):
            start, stop = bucket_of[group[0]]
            if stop - start < (2 if same else 1):
                continue
            members = order[start:stop][:bucket_cap]
            take = min(cap, members.size)
            for row_start in range(0, group.size, 4096):
                rows = group[row_start:row_start + 4096]
                d = pairwise_sq_distances(view[rows], ref[members])
                nearest = np.argpartition(d, take - 1, axis=1)[:, :take]
                candidates[rows, column:column + take] = members[nearest]
    return candidates


def _neighbors_lsh(
    view: np.ndarray,
    k: int,
    *,
    options: dict,
    ref_view: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate k-NN via seeded multi-table LSH with exact fallback.

    Returns ``(neighbors, sq_distances)`` of shape ``(n, k)``. Rows whose
    deduplicated candidate set is short of ``k`` are topped up with an
    exact blocked scan, so the output is always a valid k-neighborhood;
    only *which* neighbors were found is approximate.
    """
    same = ref_view is None
    ref = view if same else ref_view
    n, r = view.shape[0], ref.shape[0]
    seed = options.get("seed", 0)
    n_tables = int(options.get("n_tables", 8))
    if n_tables < 1:
        raise GraphConstructionError(f"n_tables must be >= 1; got {n_tables}")
    default_bits = int(np.clip(np.ceil(np.log2(max(r, 2) / max(4 * k, 16))), 2, 20))
    n_bits = int(options.get("n_bits", default_bits))
    if not 1 <= n_bits <= 62:
        raise GraphConstructionError(f"n_bits must be in [1, 62]; got {n_bits}")

    candidates = _lsh_candidates(
        view, ref_view, k, n_tables=n_tables, n_bits=n_bits, seed=seed
    )
    # Dedup per row: sort by index, blank repeats (and, in same-set mode,
    # the row itself) to the sentinel so they sort to the back below.
    candidates = np.sort(candidates, axis=1)
    repeat = np.zeros_like(candidates, dtype=bool)
    repeat[:, 1:] = candidates[:, 1:] == candidates[:, :-1]
    candidates[repeat] = r
    if same:
        candidates[candidates == np.arange(n)[:, None]] = r

    # Distances for surviving candidates; sentinels score +inf.
    padded = np.vstack([ref, np.zeros((1, ref.shape[1]), dtype=ref.dtype)])
    sq = _selected_sq_distances(view, candidates, ref_view=padded)
    sq[candidates == r] = np.inf
    take = min(k, candidates.shape[1])
    idx = np.argpartition(sq, take - 1, axis=1)[:, :take]
    order = np.argsort(np.take_along_axis(sq, idx, axis=1), axis=1, kind="stable")
    idx = np.take_along_axis(idx, order, axis=1)
    neighbors = np.take_along_axis(candidates, idx, axis=1)
    distances = np.take_along_axis(sq, idx, axis=1)
    if take < k:
        pad = np.full((n, k - take), r, dtype=np.int64)
        neighbors = np.concatenate([neighbors, pad], axis=1)
        distances = np.concatenate(
            [distances, np.full((n, k - take), np.inf, dtype=distances.dtype)], axis=1
        )

    short = np.flatnonzero(~np.isfinite(distances).all(axis=1))
    if short.size:
        # Exact rescue for rows the hash tables under-served.
        block = max(1, _BLOCK_ENTRIES // max(r, 1))
        exact = np.empty((short.size, k), dtype=np.int64)
        for start in range(0, short.size, block):
            rows = short[start:start + block]
            d = pairwise_sq_distances(view[rows], ref).astype(view.dtype, copy=False)
            if same:
                d[np.arange(rows.size), rows] = np.inf
            cand = np.argpartition(d, min(k, r - 1), axis=1)[:, :k]
            suborder = np.argsort(
                np.take_along_axis(d, cand, axis=1), axis=1, kind="stable"
            )
            exact[start:start + block] = np.take_along_axis(cand, suborder, axis=1)
        neighbors[short] = exact
        distances[short] = _selected_sq_distances(
            view, exact, rows=short, ref_view=ref
        )
    return neighbors, distances


def _measure_recall(
    view: np.ndarray,
    neighbors: np.ndarray,
    k: int,
    *,
    sample: int,
    seed,
    backend: str,
) -> float | None:
    """Recall of ``neighbors`` vs an exact scan on a row subsample.

    Emits the ``knn.recall`` gauge (labelled by backend) so traced runs
    record the realized accuracy of every approximate graph build.
    """
    if sample <= 0:
        return None
    n = view.shape[0]
    rows = np.random.default_rng(seed).choice(n, size=min(int(sample), n), replace=False)
    d = pairwise_sq_distances(view[rows], view)
    d[np.arange(rows.size), rows] = np.inf
    exact = np.argpartition(d, min(k, n - 1), axis=1)[:, :k]
    hits = sum(
        np.intersect1d(exact[i], neighbors[row]).size
        for i, row in enumerate(rows)
    )
    recall = hits / float(rows.size * k)
    get_registry().set_gauge("knn.recall", recall, backend=backend)
    return recall


def _search_neighbors(
    view: np.ndarray, k: int, backend: str, options: dict
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch the same-set neighbor search to the selected backend."""
    if backend == "exact":
        neighbors = _neighbors_exact(view, k)
        return neighbors, _selected_sq_distances(view, neighbors)
    if backend == "blocked":
        neighbors = _blocked_topk(
            view, view, k, exclude_self=True,
            block_entries=options.get("block_entries", _BLOCK_ENTRIES),
        )
        return neighbors, _selected_sq_distances(view, neighbors)
    neighbors, sq = _neighbors_lsh(view, k, options=options)
    _measure_recall(
        view, neighbors, k,
        sample=int(options.get("recall_sample", 64)),
        seed=options.get("seed", 0),
        backend="lsh",
    )
    return neighbors, sq


def knn_graph(
    X,
    *,
    n_neighbors: int = 10,
    bandwidth: float | None = None,
    exclude: np.ndarray | list | None = None,
    binary: bool = False,
    backend: str = "exact",
    backend_options: dict | None = None,
    dtype=None,
) -> sp.csr_matrix:
    """Build the symmetric k-NN heat-kernel graph ``WX`` of the paper.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n, m)``.
    n_neighbors:
        Number of nearest neighbors ``p`` per point (self excluded).
    bandwidth:
        Heat-kernel scalar ``t``; ``None`` selects the median heuristic on
        the distance-relevant columns.
    exclude:
        Column indices to drop before computing distances — the paper
        excludes the protected attributes from ``Np``.
    binary:
        Use 0/1 edge weights instead of the heat kernel (useful for
        ablations).
    backend:
        Neighbor-search backend — ``"exact"`` (default, cKDTree),
        ``"blocked"`` (chunked brute force, BLAS-fast for wide data) or
        ``"lsh"`` (seeded approximate hashing). See the module docstring
        for the complexity/accuracy table.
    backend_options:
        Backend knobs: ``seed``, ``n_tables``, ``n_bits`` and
        ``recall_sample`` for ``"lsh"`` (recall is measured on that many
        sampled rows and emitted as the ``knn.recall`` gauge);
        ``block_entries`` caps the ``"blocked"`` scratch block.
    dtype:
        ``None`` (historical float64), ``np.float32`` or ``np.float64``.
        float32 is preserved through distances, weights and the returned
        CSR data — the graph leg of the opt-in float32 pipeline.

    Returns
    -------
    scipy.sparse.csr_matrix
        Symmetric ``(n, n)`` adjacency with zero diagonal.
    """
    options = _check_backend(backend, backend_options)
    X = check_array(X, name="X", min_samples=2, dtype=None)
    X = _as_dtype(X, dtype)
    n = X.shape[0]
    if not 1 <= n_neighbors < n:
        raise GraphConstructionError(
            f"n_neighbors must be in [1, n-1] = [1, {n - 1}]; got {n_neighbors}"
        )

    distance_view = np.ascontiguousarray(_distance_view(X, exclude))
    bandwidth = _resolve_bandwidth(bandwidth, distance_view)

    with span("graphs.knn", backend=backend, n=int(n), k=int(n_neighbors),
              dtype=str(X.dtype)):
        get_registry().inc("knn.build", backend=backend)
        neighbors, sq_distances = _search_neighbors(
            distance_view, n_neighbors, backend, options
        )
    rows = np.repeat(np.arange(n), n_neighbors)
    cols = neighbors.ravel()
    weights = _edge_weights(
        sq_distances.ravel().astype(X.dtype, copy=False), bandwidth, binary
    )

    W = sp.csr_matrix((weights, (rows, cols)), shape=(n, n))
    # Symmetrize with the OR rule: keep an edge if either endpoint lists the
    # other as a neighbor; maximum() avoids double-counting mutual edges.
    W = W.maximum(W.T)
    W.setdiag(0.0)
    W.eliminate_zeros()
    return W.tocsr()


def knn_cross(
    X_query,
    X_ref,
    *,
    n_neighbors: int = 10,
    bandwidth: float | None = None,
    exclude: np.ndarray | list | None = None,
    binary: bool = False,
    backend: str = "exact",
    backend_options: dict | None = None,
    dtype=None,
) -> sp.csr_matrix:
    """Cross-set k-NN heat-kernel weights from query rows to reference rows.

    The rectangular analogue of :func:`knn_graph`: row ``i`` of the result
    holds heat-kernel weights ``exp(-||q_i - r_j||² / t)`` on the
    ``n_neighbors`` reference rows nearest to query ``i`` and zeros
    elsewhere. This is the landmark → query edge set the Nyström
    out-of-sample extension uses (:mod:`repro.core.approx`): an unseen
    individual is connected to its nearest landmarks exactly the way
    training individuals connect to each other in ``WX``.

    Unlike :func:`knn_graph` the result is *not* symmetrized (it is not
    square) and there is no self-edge to drop — query and reference sets
    are distinct; a query row that coincides with a reference row keeps its
    weight-1 edge.

    Parameters
    ----------
    X_query:
        Query rows of shape ``(q, m)``.
    X_ref:
        Reference rows of shape ``(r, m)`` (the landmarks).
    n_neighbors:
        Neighbors per query row, ``1 <= n_neighbors <= r``.
    bandwidth:
        Heat-kernel scalar ``t``; ``None`` selects the median heuristic on
        the reference rows so query-side batches cannot shift the scale.
    exclude:
        Column indices to drop before computing distances (the paper
        excludes protected attributes from ``Np``).
    binary:
        Use 0/1 edge weights instead of the heat kernel.
    backend, backend_options, dtype:
        As in :func:`knn_graph`; ``"lsh"`` hashes the reference set and
        probes it with the query codes.

    Returns
    -------
    scipy.sparse.csr_matrix
        ``(q, r)`` matrix with exactly ``n_neighbors`` non-negative entries
        per row (fewer only when heat-kernel weights underflow to zero).
    """
    options = _check_backend(backend, backend_options)
    X_query = check_array(X_query, name="X_query", dtype=None)
    X_ref = check_array(X_ref, name="X_ref", dtype=None)
    if X_query.shape[1] != X_ref.shape[1]:
        raise GraphConstructionError(
            f"X_query has {X_query.shape[1]} features but X_ref has "
            f"{X_ref.shape[1]}"
        )
    X_query = _as_dtype(X_query, dtype)
    X_ref = _as_dtype(X_ref, dtype)
    q, r = X_query.shape[0], X_ref.shape[0]
    if not 1 <= n_neighbors <= r:
        raise GraphConstructionError(
            f"n_neighbors must be in [1, n_ref] = [1, {r}]; got {n_neighbors}"
        )

    query_view = np.ascontiguousarray(_distance_view(X_query, exclude))
    ref_view = np.ascontiguousarray(_distance_view(X_ref, exclude))
    bandwidth = _resolve_bandwidth(bandwidth, ref_view)

    with span("graphs.knn_cross", backend=backend, q=int(q), r=int(r),
              k=int(n_neighbors), dtype=str(X_query.dtype)):
        get_registry().inc("knn.build", backend=backend)
        if backend == "exact":
            tree = cKDTree(ref_view)
            _, neighbors = tree.query(query_view, k=n_neighbors)
            if n_neighbors == 1:  # cKDTree squeezes the k axis for k=1
                neighbors = neighbors[:, None]
            sq_distances = _selected_sq_distances(
                query_view, neighbors, ref_view=ref_view
            )
        elif backend == "blocked":
            neighbors = _blocked_topk(
                query_view, ref_view, n_neighbors, exclude_self=False,
                block_entries=options.get("block_entries", _BLOCK_ENTRIES),
            )
            sq_distances = _selected_sq_distances(
                query_view, neighbors, ref_view=ref_view
            )
        else:
            neighbors, sq_distances = _neighbors_lsh(
                query_view, n_neighbors, options=options, ref_view=ref_view
            )
    rows = np.repeat(np.arange(q), n_neighbors)
    cols = neighbors.ravel()
    weights = _edge_weights(
        sq_distances.ravel().astype(X_query.dtype, copy=False), bandwidth, binary
    )

    W = sp.csr_matrix((weights, (rows, cols)), shape=(q, r))
    W.eliminate_zeros()
    return W
