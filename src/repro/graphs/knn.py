"""k-nearest-neighbor similarity graph ``WX`` (paper §3.1).

The paper defines the data-driven similarity graph as

    WX_ij = exp(-||xi - xj||² / t)   if xi ∈ Np(xj) or xj ∈ Np(xi), else 0

where ``Np`` is the set of p nearest neighbors in euclidean space computed
*excluding the protected attributes*, and ``t`` is a scalar bandwidth
hyper-parameter. The graph is symmetric by construction (the OR rule) and
stored sparse so the COMPAS-scale datasets (n ≈ 9000) stay cheap.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from .._validation import check_array
from ..exceptions import GraphConstructionError

__all__ = ["knn_graph", "pairwise_sq_distances", "median_heuristic"]


def pairwise_sq_distances(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Dense matrix of squared euclidean distances between rows of X and Y.

    Uses the expansion ``||x-y||² = ||x||² + ||y||² - 2 x·y`` with clipping
    at zero to absorb floating-point cancellation.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = X if Y is None else np.asarray(Y, dtype=np.float64)
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    d = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(d, 0.0, out=d)
    return d

def median_heuristic(X: np.ndarray, *, sample_size: int = 2000, seed: int = 0) -> float:
    """Median of pairwise squared distances — a standard heat-kernel bandwidth.

    For large n the median is estimated on a random subsample so the cost
    stays O(sample_size²).
    """
    X = check_array(X, name="X")
    n = X.shape[0]
    if n > sample_size:
        rng = np.random.default_rng(seed)
        X = X[rng.choice(n, size=sample_size, replace=False)]
    d = pairwise_sq_distances(X)
    off_diagonal = d[~np.eye(d.shape[0], dtype=bool)]
    median = float(np.median(off_diagonal))
    if median <= 0.0:
        # All points coincide; any positive bandwidth yields the same graph.
        return 1.0
    return median


def knn_graph(
    X,
    *,
    n_neighbors: int = 10,
    bandwidth: float | None = None,
    exclude: np.ndarray | list | None = None,
    binary: bool = False,
) -> sp.csr_matrix:
    """Build the symmetric k-NN heat-kernel graph ``WX`` of the paper.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n, m)``.
    n_neighbors:
        Number of nearest neighbors ``p`` per point (self excluded).
    bandwidth:
        Heat-kernel scalar ``t``; ``None`` selects the median heuristic on
        the distance-relevant columns.
    exclude:
        Column indices to drop before computing distances — the paper
        excludes the protected attributes from ``Np``.
    binary:
        Use 0/1 edge weights instead of the heat kernel (useful for
        ablations).

    Returns
    -------
    scipy.sparse.csr_matrix
        Symmetric ``(n, n)`` adjacency with zero diagonal.
    """
    X = check_array(X, name="X", min_samples=2)
    n = X.shape[0]
    if not 1 <= n_neighbors < n:
        raise GraphConstructionError(
            f"n_neighbors must be in [1, n-1] = [1, {n - 1}]; got {n_neighbors}"
        )

    if exclude is not None:
        keep = np.setdiff1d(np.arange(X.shape[1]), np.asarray(exclude, dtype=int))
        if keep.size == 0:
            raise GraphConstructionError("exclude removes every feature column")
        distance_view = X[:, keep]
    else:
        distance_view = X

    if bandwidth is None:
        bandwidth = median_heuristic(distance_view)
    if bandwidth <= 0:
        raise GraphConstructionError(f"bandwidth must be positive; got {bandwidth}")

    tree = cKDTree(distance_view)
    # k+1 because the nearest neighbor of a point is itself.
    distances, neighbors = tree.query(distance_view, k=n_neighbors + 1)
    rows = np.repeat(np.arange(n), n_neighbors)
    cols = neighbors[:, 1:].ravel()
    sq_distances = distances[:, 1:].ravel() ** 2

    if binary:
        weights = np.ones_like(sq_distances)
    else:
        weights = np.exp(-sq_distances / bandwidth)

    W = sp.csr_matrix((weights, (rows, cols)), shape=(n, n))
    # Symmetrize with the OR rule: keep an edge if either endpoint lists the
    # other as a neighbor; maximum() avoids double-counting mutual edges.
    W = W.maximum(W.T)
    W.setdiag(0.0)
    W.eliminate_zeros()
    return W.tocsr()
