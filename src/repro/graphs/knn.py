"""k-nearest-neighbor similarity graph ``WX`` (paper §3.1).

The paper defines the data-driven similarity graph as

    WX_ij = exp(-||xi - xj||² / t)   if xi ∈ Np(xj) or xj ∈ Np(xi), else 0

where ``Np`` is the set of p nearest neighbors in euclidean space computed
*excluding the protected attributes*, and ``t`` is a scalar bandwidth
hyper-parameter. The graph is symmetric by construction (the OR rule) and
stored sparse so the COMPAS-scale datasets (n ≈ 9000) stay cheap.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from .._validation import check_array
from ..exceptions import GraphConstructionError

__all__ = ["knn_graph", "knn_cross", "pairwise_sq_distances", "median_heuristic"]


def pairwise_sq_distances(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Dense matrix of squared euclidean distances between rows of X and Y.

    Uses the expansion ``||x-y||² = ||x||² + ||y||² - 2 x·y`` with clipping
    at zero to absorb floating-point cancellation.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = X if Y is None else np.asarray(Y, dtype=np.float64)
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    d = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(d, 0.0, out=d)
    return d

def median_heuristic(X: np.ndarray, *, sample_size: int = 2000, seed: int = 0) -> float:
    """Median of pairwise squared distances — a standard heat-kernel bandwidth.

    For large n the median is estimated on a random subsample so the cost
    stays O(sample_size²).
    """
    X = check_array(X, name="X")
    n = X.shape[0]
    if n > sample_size:
        rng = np.random.default_rng(seed)
        X = X[rng.choice(n, size=sample_size, replace=False)]
    d = pairwise_sq_distances(X)
    off_diagonal = d[~np.eye(d.shape[0], dtype=bool)]
    median = float(np.median(off_diagonal))
    if median <= 0.0:
        # All points coincide; any positive bandwidth yields the same graph.
        return 1.0
    return median


def _distance_view(X: np.ndarray, exclude) -> np.ndarray:
    """Columns entering the neighborhood distances (protected ones dropped)."""
    if exclude is None:
        return X
    keep = np.setdiff1d(np.arange(X.shape[1]), np.asarray(exclude, dtype=int))
    if keep.size == 0:
        raise GraphConstructionError("exclude removes every feature column")
    return X[:, keep]


def _resolve_bandwidth(bandwidth: float | None, view: np.ndarray) -> float:
    """Validate the heat-kernel bandwidth, defaulting to the median heuristic."""
    if bandwidth is None:
        bandwidth = median_heuristic(view)
    if bandwidth <= 0:
        raise GraphConstructionError(f"bandwidth must be positive; got {bandwidth}")
    return bandwidth


def _edge_weights(
    sq_distances: np.ndarray, bandwidth: float, binary: bool
) -> np.ndarray:
    """Heat-kernel (or 0/1) weights for a batch of squared distances."""
    if binary:
        return np.ones_like(sq_distances)
    return np.exp(-sq_distances / bandwidth)


def knn_graph(
    X,
    *,
    n_neighbors: int = 10,
    bandwidth: float | None = None,
    exclude: np.ndarray | list | None = None,
    binary: bool = False,
) -> sp.csr_matrix:
    """Build the symmetric k-NN heat-kernel graph ``WX`` of the paper.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n, m)``.
    n_neighbors:
        Number of nearest neighbors ``p`` per point (self excluded).
    bandwidth:
        Heat-kernel scalar ``t``; ``None`` selects the median heuristic on
        the distance-relevant columns.
    exclude:
        Column indices to drop before computing distances — the paper
        excludes the protected attributes from ``Np``.
    binary:
        Use 0/1 edge weights instead of the heat kernel (useful for
        ablations).

    Returns
    -------
    scipy.sparse.csr_matrix
        Symmetric ``(n, n)`` adjacency with zero diagonal.
    """
    X = check_array(X, name="X", min_samples=2)
    n = X.shape[0]
    if not 1 <= n_neighbors < n:
        raise GraphConstructionError(
            f"n_neighbors must be in [1, n-1] = [1, {n - 1}]; got {n_neighbors}"
        )

    distance_view = _distance_view(X, exclude)
    bandwidth = _resolve_bandwidth(bandwidth, distance_view)

    tree = cKDTree(distance_view)
    # k+1 because the nearest neighbor of a point is itself.
    distances, neighbors = tree.query(distance_view, k=n_neighbors + 1)
    rows = np.repeat(np.arange(n), n_neighbors)
    cols = neighbors[:, 1:].ravel()
    sq_distances = distances[:, 1:].ravel() ** 2
    weights = _edge_weights(sq_distances, bandwidth, binary)

    W = sp.csr_matrix((weights, (rows, cols)), shape=(n, n))
    # Symmetrize with the OR rule: keep an edge if either endpoint lists the
    # other as a neighbor; maximum() avoids double-counting mutual edges.
    W = W.maximum(W.T)
    W.setdiag(0.0)
    W.eliminate_zeros()
    return W.tocsr()


def knn_cross(
    X_query,
    X_ref,
    *,
    n_neighbors: int = 10,
    bandwidth: float | None = None,
    exclude: np.ndarray | list | None = None,
    binary: bool = False,
) -> sp.csr_matrix:
    """Cross-set k-NN heat-kernel weights from query rows to reference rows.

    The rectangular analogue of :func:`knn_graph`: row ``i`` of the result
    holds heat-kernel weights ``exp(-||q_i - r_j||² / t)`` on the
    ``n_neighbors`` reference rows nearest to query ``i`` and zeros
    elsewhere. This is the landmark → query edge set the Nyström
    out-of-sample extension uses (:mod:`repro.core.approx`): an unseen
    individual is connected to its nearest landmarks exactly the way
    training individuals connect to each other in ``WX``.

    Unlike :func:`knn_graph` the result is *not* symmetrized (it is not
    square) and there is no self-edge to drop — query and reference sets
    are distinct; a query row that coincides with a reference row keeps its
    weight-1 edge.

    Parameters
    ----------
    X_query:
        Query rows of shape ``(q, m)``.
    X_ref:
        Reference rows of shape ``(r, m)`` (the landmarks).
    n_neighbors:
        Neighbors per query row, ``1 <= n_neighbors <= r``.
    bandwidth:
        Heat-kernel scalar ``t``; ``None`` selects the median heuristic on
        the reference rows so query-side batches cannot shift the scale.
    exclude:
        Column indices to drop before computing distances (the paper
        excludes protected attributes from ``Np``).
    binary:
        Use 0/1 edge weights instead of the heat kernel.

    Returns
    -------
    scipy.sparse.csr_matrix
        ``(q, r)`` matrix with exactly ``n_neighbors`` non-negative entries
        per row (fewer only when heat-kernel weights underflow to zero).
    """
    X_query = check_array(X_query, name="X_query")
    X_ref = check_array(X_ref, name="X_ref")
    if X_query.shape[1] != X_ref.shape[1]:
        raise GraphConstructionError(
            f"X_query has {X_query.shape[1]} features but X_ref has "
            f"{X_ref.shape[1]}"
        )
    q, r = X_query.shape[0], X_ref.shape[0]
    if not 1 <= n_neighbors <= r:
        raise GraphConstructionError(
            f"n_neighbors must be in [1, n_ref] = [1, {r}]; got {n_neighbors}"
        )

    query_view = _distance_view(X_query, exclude)
    ref_view = _distance_view(X_ref, exclude)
    bandwidth = _resolve_bandwidth(bandwidth, ref_view)

    tree = cKDTree(ref_view)
    distances, neighbors = tree.query(query_view, k=n_neighbors)
    if n_neighbors == 1:  # cKDTree squeezes the k axis for k=1
        distances = distances[:, None]
        neighbors = neighbors[:, None]
    rows = np.repeat(np.arange(q), n_neighbors)
    cols = neighbors.ravel()
    sq_distances = distances.ravel() ** 2
    weights = _edge_weights(sq_distances, bandwidth, binary)

    W = sp.csr_matrix((weights, (rows, cols)), shape=(q, r))
    W.eliminate_zeros()
    return W
