"""Graph-Laplacian utilities (paper §3.3.2).

The PFR objective reduces to traces of ``Vᵀ X L Xᵀ V`` where ``L = D - W``
is the combinatorial Laplacian of a similarity or fairness graph and ``D``
is the diagonal matrix of column sums of ``W``. This module centralizes
Laplacian construction, validation, and the small pieces of spectral-graph
bookkeeping the experiments use (component counts, degree statistics).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from .._validation import check_symmetric
from ..exceptions import GraphConstructionError

__all__ = [
    "laplacian",
    "degree_vector",
    "n_connected_components",
    "edge_count",
    "graph_density",
    "combine_laplacians",
]


def degree_vector(W) -> np.ndarray:
    """Column sums of the adjacency matrix (degrees for binary graphs)."""
    W = check_symmetric(W, name="W")
    if sp.issparse(W):
        return np.asarray(W.sum(axis=0)).ravel()
    return W.sum(axis=0)


def laplacian(W, *, normalized: bool = False) -> sp.csr_matrix:
    """Combinatorial (or symmetric-normalized) graph Laplacian ``L = D - W``.

    Parameters
    ----------
    W:
        Symmetric adjacency matrix, dense or sparse, non-negative weights.
    normalized:
        Return ``I - D^{-1/2} W D^{-1/2}`` instead (isolated vertices keep a
        zero row/column).

    Returns
    -------
    scipy.sparse.csr_matrix
        Sparse Laplacian; symmetric positive semi-definite by construction.
    """
    W = check_symmetric(W, name="W")
    if sp.issparse(W):
        if W.nnz and W.data.min() < 0:
            raise GraphConstructionError("adjacency weights must be non-negative")
        W = W.tocsr()
    else:
        if W.size and W.min() < 0:
            raise GraphConstructionError("adjacency weights must be non-negative")
        W = sp.csr_matrix(W)

    degrees = np.asarray(W.sum(axis=0)).ravel()
    if not normalized:
        return (sp.diags(degrees) - W).tocsr()

    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    D_inv_sqrt = sp.diags(inv_sqrt)
    # Match W's dtype so the float32 pipeline's Laplacian stays float32.
    identity_like = sp.diags((degrees > 0).astype(W.dtype))
    return (identity_like - D_inv_sqrt @ W @ D_inv_sqrt).tocsr()


def combine_laplacians(L_x, L_f, gamma: float, *, rescale: bool = False) -> sp.csr_matrix:
    """PFR's convex combination ``(1-γ) L_X + γ L_F`` (Equation 6).

    Parameters
    ----------
    L_x, L_f:
        Graph Laplacians of the data and fairness graphs.
    gamma:
        Trade-off in [0, 1].
    rescale:
        Divide each Laplacian by its mean diagonal (average degree) before
        combining. The two graphs can differ in edge mass by orders of
        magnitude (heat-kernel k-NN vs. dense equivalence-class cliques), in
        which case raw γ has no leverage; rescaling makes γ interpolate
        between graphs of comparable energy, matching the paper's smooth
        γ-sweeps (Figures 4, 7, 10). An all-zero Laplacian is left unscaled.
    """
    if not 0.0 <= gamma <= 1.0:
        raise GraphConstructionError(f"gamma must be in [0, 1]; got {gamma}")
    L_x = sp.csr_matrix(L_x)
    L_f = sp.csr_matrix(L_f)
    if L_x.shape != L_f.shape:
        raise GraphConstructionError(
            f"Laplacian shapes differ: {L_x.shape} vs {L_f.shape}"
        )
    if rescale:
        def normalized(L):
            mean_degree = L.diagonal().mean()
            return L / mean_degree if mean_degree > 0 else L

        L_x = normalized(L_x)
        L_f = normalized(L_f)
    return ((1.0 - gamma) * L_x + gamma * L_f).tocsr()


def n_connected_components(W) -> int:
    """Number of connected components of the graph (isolated nodes count)."""
    W = check_symmetric(W, name="W")
    if not sp.issparse(W):
        W = sp.csr_matrix(W)
    n_components, _ = csgraph.connected_components(W, directed=False)
    return int(n_components)


def edge_count(W) -> int:
    """Number of undirected edges (each counted once)."""
    W = check_symmetric(W, name="W")
    if not sp.issparse(W):
        W = sp.csr_matrix(W)
    off_diagonal = W.copy()
    off_diagonal.setdiag(0)
    off_diagonal.eliminate_zeros()
    return off_diagonal.nnz // 2


def graph_density(W) -> float:
    """Fraction of possible undirected edges that are present."""
    n = W.shape[0]
    if n < 2:
        return 0.0
    return edge_count(W) / (n * (n - 1) / 2.0)
