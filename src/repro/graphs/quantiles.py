"""Quantile assignment for within-group rankings (paper Definition 2).

Given per-individual scores (e.g. COMPAS decile scores, or prediction
probabilities of a within-group ranker), individuals are pooled into ``q``
quantile buckets. The between-group quantile graph (Definition 3) then links
individuals of *different* groups that share a bucket.
"""

from __future__ import annotations

import numpy as np

from .._validation import column_or_1d
from ..exceptions import ValidationError

__all__ = ["quantile_bucket", "within_group_quantiles"]


def quantile_bucket(scores, n_quantiles: int) -> np.ndarray:
    """Assign each score to a quantile bucket ``0 .. n_quantiles-1``.

    Buckets are rank-based: ties share the average rank, so identical scores
    always land in the same bucket regardless of input order, which matches
    the paper's use of coarse discrete scores (deciles, star ratings).
    """
    scores = column_or_1d(scores, name="scores", dtype=np.float64)
    if n_quantiles < 1:
        raise ValidationError(f"n_quantiles must be >= 1; got {n_quantiles}")
    n = len(scores)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    # Midrank of each element (ties averaged), normalized to (0, 1].
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(n, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    cdf = ranks / n

    buckets = np.minimum((cdf * n_quantiles).astype(np.int64), n_quantiles - 1)
    # cdf is in (0, 1]; a cdf exactly at a bucket boundary belongs below it,
    # mirroring Pr(Y <= y) = k of Definition 2.
    boundary = np.isclose(cdf * n_quantiles, np.round(cdf * n_quantiles))
    exact = np.round(cdf * n_quantiles).astype(np.int64)
    buckets[boundary] = np.clip(exact[boundary] - 1, 0, n_quantiles - 1)
    return buckets


def within_group_quantiles(scores, groups, n_quantiles: int) -> np.ndarray:
    """Quantile bucket of every individual *within its own group*.

    This is the paper's anti-subordination device: rankings are only
    compared within a group, never across groups, so between-group bias in
    the raw scores cannot leak into the buckets.

    Parameters
    ----------
    scores:
        Within-group ranking scores (higher = stronger), shape ``(n,)``.
    groups:
        Group membership per individual, shape ``(n,)``; any hashable values.
    n_quantiles:
        Number of buckets ``q`` (e.g. 10 for deciles, 4 for quartiles).

    Returns
    -------
    ndarray of int64
        Bucket index in ``0 .. n_quantiles-1`` per individual.
    """
    scores = column_or_1d(scores, name="scores", dtype=np.float64)
    groups = column_or_1d(groups, name="groups")
    if len(scores) != len(groups):
        raise ValidationError(
            f"scores and groups must align; got {len(scores)} vs {len(groups)}"
        )
    buckets = np.empty(len(scores), dtype=np.int64)
    for value in np.unique(groups):
        members = np.flatnonzero(groups == value)
        buckets[members] = quantile_bucket(scores[members], n_quantiles)
    return buckets
