"""Fairness-graph diagnostics and networkx interoperability.

Before trusting a fairness graph, one wants to know: how many judgments
does it encode, how sparse is it, does it actually couple the groups it is
supposed to couple, and how fragmented is it? :func:`graph_summary` answers
those in one call; :func:`to_networkx` / :func:`from_networkx` bridge to
the networkx ecosystem for anything richer (drawing, centrality, community
structure).
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from .._validation import check_symmetric, column_or_1d
from ..exceptions import GraphConstructionError
from .laplacian import edge_count, graph_density, n_connected_components

__all__ = ["graph_summary", "to_networkx", "from_networkx"]


def graph_summary(W, *, groups=None) -> dict:
    """One-call diagnostics of a similarity or fairness graph.

    Parameters
    ----------
    W:
        Symmetric adjacency (dense or sparse).
    groups:
        Optional protected-group labels; adds the cross-group edge
        fraction (a between-group quantile graph must report 1.0, an
        equivalence-class graph typically something in between).

    Returns
    -------
    dict
        ``n_nodes``, ``n_edges``, ``density``, ``n_components``,
        ``n_isolated``, ``mean_degree``, ``max_degree`` and, when groups
        are given, ``cross_group_fraction``.
    """
    W = check_symmetric(W, name="W")
    if not sp.issparse(W):
        W = sp.csr_matrix(W)
    n = W.shape[0]
    degrees = np.asarray((W != 0).sum(axis=1)).ravel()
    summary = {
        "n_nodes": int(n),
        "n_edges": edge_count(W),
        "density": graph_density(W),
        "n_components": n_connected_components(W),
        "n_isolated": int(np.sum(degrees == 0)),
        "mean_degree": float(degrees.mean()) if n else 0.0,
        "max_degree": int(degrees.max()) if n else 0,
    }
    if groups is not None:
        groups = column_or_1d(groups, name="groups")
        if len(groups) != n:
            raise GraphConstructionError(
                f"groups has {len(groups)} entries for {n} nodes"
            )
        coo = sp.triu(W, k=1).tocoo()
        if coo.nnz:
            cross = float(np.mean(groups[coo.row] != groups[coo.col]))
        else:
            cross = float("nan")
        summary["cross_group_fraction"] = cross
    return summary


def to_networkx(W, *, node_attrs: dict | None = None) -> nx.Graph:
    """Convert an adjacency matrix to a ``networkx.Graph``.

    Edge weights land in the ``weight`` attribute; optional per-node
    attribute arrays (e.g. ``{"group": s, "label": y}``) are attached to
    the nodes.
    """
    W = check_symmetric(W, name="W")
    if not sp.issparse(W):
        W = sp.csr_matrix(W)
    graph = nx.Graph()
    graph.add_nodes_from(range(W.shape[0]))
    coo = sp.triu(W, k=1).tocoo()
    graph.add_weighted_edges_from(
        (int(i), int(j), float(v)) for i, j, v in zip(coo.row, coo.col, coo.data)
    )
    for name, values in (node_attrs or {}).items():
        values = column_or_1d(values, name=name)
        if len(values) != W.shape[0]:
            raise GraphConstructionError(
                f"node attribute {name!r} has {len(values)} entries for "
                f"{W.shape[0]} nodes"
            )
        nx.set_node_attributes(
            graph, {i: values[i] for i in range(len(values))}, name
        )
    return graph


def from_networkx(graph: nx.Graph, *, n_nodes: int | None = None) -> sp.csr_matrix:
    """Convert a ``networkx.Graph`` (integer-labeled nodes) back to CSR.

    Parameters
    ----------
    graph:
        Undirected graph whose nodes are integers in ``[0, n_nodes)``.
    n_nodes:
        Matrix size; defaults to ``max(node) + 1``.
    """
    nodes = list(graph.nodes)
    if not all(isinstance(v, (int, np.integer)) for v in nodes):
        raise GraphConstructionError("graph nodes must be integer indices")
    if n_nodes is None:
        n_nodes = max(nodes) + 1 if nodes else 0
    if nodes and (min(nodes) < 0 or max(nodes) >= n_nodes):
        raise GraphConstructionError(
            f"node indices must be in [0, {n_nodes - 1}]"
        )
    rows, cols, data = [], [], []
    for i, j, attrs in graph.edges(data=True):
        weight = float(attrs.get("weight", 1.0))
        rows.extend([int(i), int(j)])
        cols.extend([int(j), int(i)])
        data.extend([weight, weight])
    W = sp.csr_matrix((data, (rows, cols)), shape=(n_nodes, n_nodes))
    W.setdiag(0.0)
    W.eliminate_zeros()
    return W
