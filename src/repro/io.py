"""Model persistence without pickle.

A deployed PFR system needs to ship two artifacts: the fitted
representation map and the downstream classifier. This module serializes
both to a single ``.npz`` file — plain numpy arrays plus a JSON header —
so saved models are portable, inspectable, and safe to load (no arbitrary
code execution, unlike pickle).

Every fitted estimator exported from :mod:`repro` is supported: the core
transformers (:class:`~repro.core.PFR`, :class:`~repro.core.KernelPFR`),
every baseline (:class:`~repro.baselines.IFair`,
:class:`~repro.baselines.LFR`, :class:`~repro.baselines.MaskedRepresentation`,
:class:`~repro.baselines.SideInformationAugmenter`,
:class:`~repro.baselines.EqualizedOddsPostProcessor`) and the ml substrate
(:class:`~repro.ml.LogisticRegression`, :class:`~repro.ml.StandardScaler`).

Artifacts are stamped with the library ``__version__`` at save time and the
stamp is verified at load time: a file written by a different *major*
version raises :class:`~repro.exceptions.ValidationError` instead of
silently deserializing state whose meaning may have changed. The serving
model registry (:mod:`repro.serving.registry`) builds on this guarantee.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from ._validation import check_is_fitted
from ._version import __version__
from .baselines import (
    EqualizedOddsPostProcessor,
    IFair,
    LFR,
    MaskedRepresentation,
    SideInformationAugmenter,
)
from .core import PFR, KernelPFR
from .exceptions import ValidationError
from .ml import LogisticRegression, StandardScaler

__all__ = ["save_model", "load_model", "read_header", "supported_model_types"]


def atomic_write(path, write, *, mode: str = "wb") -> None:
    """Crash-safe file write: temp file in the target directory + rename.

    ``write(handle)`` receives the open temp-file handle; on success the
    temp file is atomically renamed over ``path`` (same-filesystem rename,
    atomic on POSIX), so a crash at any point leaves either the previous
    file or no file — never a truncated one. The single implementation
    behind every durable artifact in the library: model archives (here),
    registry manifests (:mod:`repro.serving.registry`), and run-ledger
    entries (:mod:`repro.store.ledger`).
    """
    path = Path(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600 files; the rename preserves that, which
        # would make shared ledgers/registries owner-only. Widen to the
        # umask-honoring default a plain open() would have produced.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, mode) as handle:
            write(handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise

# Format 2 == format 1 plus the mandatory ``library_version`` stamp.
_FORMAT_VERSION = 2
_READABLE_FORMATS = (1, 2)


def _pack_equalized_odds(model) -> dict:
    """Flatten the per-group mixing dict into parallel arrays."""
    groups = np.asarray(model.groups_)
    table = np.array(
        [model.mix_probabilities_[group] for group in model.groups_],
        dtype=np.float64,
    )
    return {
        "groups_": groups,
        "mix_table": table,
        "expected_error_": np.asarray(model.expected_error_),
    }


def _unpack_equalized_odds(model, arrays: dict) -> None:
    groups = arrays["groups_"]
    table = arrays["mix_table"]
    model.groups_ = groups
    model.mix_probabilities_ = {
        group: (float(row[0]), float(row[1])) for group, row in zip(groups, table)
    }
    model.expected_error_ = float(arrays["expected_error_"])


def _pack_plan_digests(model) -> dict:
    """Persist the fit plan's provenance digests (PFR family) as JSON bytes.

    Keeps ``register(load_model(...))`` provenance-complete: the serving
    registry records these digests in its manifests.
    """
    digests = getattr(model, "plan_digests_", None)
    if not isinstance(digests, dict):
        return {}
    payload = json.dumps({str(k): str(v) for k, v in digests.items()})
    return {"plan_digests_json": np.frombuffer(payload.encode("utf-8"),
                                               dtype=np.uint8)}


def _unpack_plan_digests(model, arrays: dict) -> None:
    blob = arrays.get("plan_digests_json")
    if blob is not None:  # absent on artifacts from older library versions
        model.plan_digests_ = json.loads(bytes(bytearray(blob)).decode("utf-8"))


# model type name -> (class, fitted attributes persisted as arrays)
_REGISTRY = {
    "PFR": (
        PFR,
        (
            "components_",
            "eigenvalues_",
            "n_features_in_",
            "landmark_indices_",
            "landmark_X_",
        ),
    ),
    "KernelPFR": (
        KernelPFR,
        (
            "alphas_",
            "eigenvalues_",
            "X_fit_",
            "n_features_in_",
            "_fitted_bandwidth",
            "landmark_indices_",
        ),
    ),
    "LogisticRegression": (
        LogisticRegression,
        ("coef_", "intercept_", "classes_", "n_iter_"),
    ),
    "StandardScaler": (
        StandardScaler,
        ("mean_", "scale_", "n_features_in_"),
    ),
    "IFair": (
        IFair,
        ("prototypes_", "feature_weights_", "loss_", "n_iter_", "n_features_in_"),
    ),
    "LFR": (
        LFR,
        ("prototypes_", "label_weights_", "loss_", "n_iter_", "n_features_in_"),
    ),
    "MaskedRepresentation": (
        MaskedRepresentation,
        ("keep_columns_", "n_features_in_"),
    ),
    "SideInformationAugmenter": (
        SideInformationAugmenter,
        (
            "means_",
            "n_features_in_",
            "n_side_columns_",
            "_train_side",
            "_train_rows",
        ),
    ),
    "EqualizedOddsPostProcessor": (EqualizedOddsPostProcessor, ()),
}

_CHECK_ATTRIBUTE = {
    "PFR": "components_",
    "KernelPFR": "alphas_",
    "LogisticRegression": "coef_",
    "StandardScaler": "mean_",
    "IFair": "prototypes_",
    "LFR": "prototypes_",
    "MaskedRepresentation": "keep_columns_",
    "SideInformationAugmenter": "means_",
    "EqualizedOddsPostProcessor": "mix_probabilities_",
}

# Estimators whose fitted state does not fit the flat-attribute scheme
# (e.g. dict-valued attributes) provide explicit pack/unpack hooks.
_PACK_HOOKS = {
    "EqualizedOddsPostProcessor": _pack_equalized_odds,
    "PFR": _pack_plan_digests,
    "KernelPFR": _pack_plan_digests,
}
_UNPACK_HOOKS = {
    "EqualizedOddsPostProcessor": _unpack_equalized_odds,
    "PFR": _unpack_plan_digests,
    "KernelPFR": _unpack_plan_digests,
}

# Hyper-parameters that hold whole arrays (potentially training-set sized)
# are persisted as npz arrays rather than inlined into the JSON header,
# keeping read_header() cheap regardless of training-set size.
_ARRAY_PARAMS = {"SideInformationAugmenter": ("side_information",)}

# Fitted attributes that may be absent from an archive because they were
# introduced after it was written (same-major artifacts stay loadable; the
# attribute just stays unset). Every other registered attribute is
# required — a missing one means the file is malformed.
_OPTIONAL_ATTRS = frozenset({"landmark_indices_", "landmark_X_"})


def supported_model_types() -> list[str]:
    """Names of the estimator classes :func:`save_model` can serialize."""
    return sorted(_REGISTRY)


def save_model(model, path) -> Path:
    """Serialize a fitted estimator to ``path`` (.npz appended if missing).

    Hyper-parameters are stored as a JSON header together with the library
    ``__version__``; fitted state as numpy arrays. Raises
    :class:`ValidationError` for unsupported or unfitted models.
    """
    type_name = type(model).__name__
    if type_name not in _REGISTRY:
        raise ValidationError(
            f"cannot save a {type_name}; supported: {sorted(_REGISTRY)}"
        )
    check_is_fitted(model, _CHECK_ATTRIBUTE[type_name])
    _, fitted_attributes = _REGISTRY[type_name]

    array_params = _ARRAY_PARAMS.get(type_name, ())
    header = {
        "format_version": _FORMAT_VERSION,
        "library_version": __version__,
        "model_type": type_name,
        "params": _jsonable_params({
            key: value
            for key, value in model.get_params().items()
            if key not in array_params
        }),
    }
    arrays = {}
    for name in array_params:
        value = getattr(model, name, None)
        if value is None:
            arrays[f"_none_param__{name}"] = np.array(0)
        else:
            arrays[f"param__{name}"] = np.asarray(value, dtype=np.float64)
    for name in fitted_attributes:
        value = getattr(model, name, None)
        if value is None:
            arrays[f"_none__{name}"] = np.array(0)
        else:
            arrays[f"attr__{name}"] = np.asarray(value)
    pack = _PACK_HOOKS.get(type_name)
    if pack is not None:
        for name, value in pack(model).items():
            arrays[f"attr__{name}"] = np.asarray(value)

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    # Crash-safe: savez into the atomic-write temp handle (a file object,
    # because np.savez would append ``.npz`` to a bare temp *name*,
    # orphaning the artifact under a different path).
    atomic_write(path, lambda handle: np.savez(handle, header=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ), **arrays))
    return path


def read_header(path) -> dict:
    """Return the validated JSON header of a saved model without loading it.

    The header carries ``model_type``, ``params``, ``format_version`` and
    (format >= 2) ``library_version`` — everything a registry needs to
    describe an artifact cheaply.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"model file not found: {path}")
    with _open_archive(path) as archive:
        return _validated_header(archive, path)


def load_model(path):
    """Load an estimator saved by :func:`save_model`.

    Raises :class:`ValidationError` when the file is missing, malformed, or
    was written by an incompatible (different major) library version.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"model file not found: {path}")
    with _open_archive(path) as archive:
        header = _validated_header(archive, path)
        type_name = header["model_type"]
        cls, fitted_attributes = _REGISTRY[type_name]

        model = cls(**header["params"])
        for name in _ARRAY_PARAMS.get(type_name, ()):
            if f"_none_param__{name}" in archive:
                setattr(model, name, None)
            elif f"param__{name}" in archive:
                setattr(model, name, archive[f"param__{name}"])
        for name in fitted_attributes:
            key = f"attr__{name}"
            none_key = f"_none__{name}"
            if none_key in archive:
                setattr(model, name, None)
                continue
            if key not in archive:
                if name in _OPTIONAL_ATTRS:
                    continue
                raise ValidationError(
                    f"{path} is not a valid {type_name} artifact: missing "
                    f"fitted attribute {name!r}"
                )
            value = archive[key]
            setattr(model, name, _restore_scalar(value))
        unpack = _UNPACK_HOOKS.get(type_name)
        if unpack is not None:
            unpack(model, {
                key[len("attr__"):]: archive[key]
                for key in archive.files
                if key.startswith("attr__")
            })
    return model


def _open_archive(path: Path):
    """np.load with its failure modes normalized to :class:`ValidationError`.

    Garbage bytes raise ValueError, truncated/corrupt zips raise
    zipfile.BadZipFile (not an OSError subclass) — callers were promised
    ValidationError for malformed files.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise ValidationError(f"{path} is not a repro model file: {exc}") from exc
    if not isinstance(archive, np.lib.npyio.NpzFile):
        # A bare .npy payload loads as an ndarray, not an archive.
        raise ValidationError(
            f"{path} is not a repro model file: not an npz archive"
        )
    return archive


def _validated_header(archive, path: Path) -> dict:
    """Parse and validate the JSON header of an open npz archive."""
    try:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
    except (KeyError, json.JSONDecodeError) as exc:
        raise ValidationError(f"{path} is not a repro model file: {exc}") from exc
    if not isinstance(header, dict):
        raise ValidationError(
            f"{path} is not a repro model file: header is not a JSON object"
        )
    format_version = header.get("format_version")
    if format_version not in _READABLE_FORMATS:
        raise ValidationError(f"unsupported model format {format_version!r}")
    if format_version >= 2:
        _check_library_version(header.get("library_version"), path)
    type_name = header.get("model_type")
    if type_name not in _REGISTRY:
        raise ValidationError(f"unknown model type {type_name!r}")
    return header


def _check_library_version(saved: object, path: Path) -> None:
    """Reject artifacts written by an incompatible (different major) release."""
    if not isinstance(saved, str) or not saved:
        raise ValidationError(
            f"{path} lacks a library_version stamp; refusing to load"
        )
    saved_major = saved.split(".", 1)[0]
    current_major = __version__.split(".", 1)[0]
    if saved_major != current_major:
        raise ValidationError(
            f"{path} was saved by repro {saved} which is incompatible with "
            f"the installed repro {__version__} (major version mismatch); "
            "re-fit and re-save the model with this version"
        )


def _jsonable_params(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, np.ndarray):
            value = value.tolist()
        elif isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        elif isinstance(value, tuple):
            value = list(value)
        if value is not None and not isinstance(
            value, (bool, int, float, str, list)
        ):
            raise ValidationError(
                f"hyper-parameter {key!r} of type {type(value).__name__} "
                "cannot be serialized"
            )
        out[key] = value
    return out


def _restore_scalar(value: np.ndarray):
    """0-d arrays come back as python scalars; everything else stays array."""
    if value.ndim == 0:
        return value.item()
    return value
