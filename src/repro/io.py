"""Model persistence without pickle.

A deployed PFR system needs to ship two artifacts: the fitted
representation map and the downstream classifier. This module serializes
both to a single ``.npz`` file — plain numpy arrays plus a JSON header —
so saved models are portable, inspectable, and safe to load (no arbitrary
code execution, unlike pickle).

Supported estimators: :class:`repro.core.PFR`,
:class:`repro.core.KernelPFR`, :class:`repro.ml.LogisticRegression`, and
:class:`repro.ml.StandardScaler`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ._validation import check_is_fitted
from .core import PFR, KernelPFR
from .exceptions import ValidationError
from .ml import LogisticRegression, StandardScaler

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1

# model type name -> (class, fitted attributes persisted as arrays)
_REGISTRY = {
    "PFR": (PFR, ("components_", "eigenvalues_", "n_features_in_")),
    "KernelPFR": (
        KernelPFR,
        ("alphas_", "eigenvalues_", "X_fit_", "n_features_in_", "_fitted_bandwidth"),
    ),
    "LogisticRegression": (
        LogisticRegression,
        ("coef_", "intercept_", "classes_", "n_iter_"),
    ),
    "StandardScaler": (
        StandardScaler,
        ("mean_", "scale_", "n_features_in_"),
    ),
}

_CHECK_ATTRIBUTE = {
    "PFR": "components_",
    "KernelPFR": "alphas_",
    "LogisticRegression": "coef_",
    "StandardScaler": "mean_",
}


def save_model(model, path) -> Path:
    """Serialize a fitted estimator to ``path`` (.npz appended if missing).

    Hyper-parameters are stored as a JSON header; fitted state as numpy
    arrays. Raises :class:`ValidationError` for unsupported or unfitted
    models.
    """
    type_name = type(model).__name__
    if type_name not in _REGISTRY:
        raise ValidationError(
            f"cannot save a {type_name}; supported: {sorted(_REGISTRY)}"
        )
    check_is_fitted(model, _CHECK_ATTRIBUTE[type_name])
    _, fitted_attributes = _REGISTRY[type_name]

    header = {
        "format_version": _FORMAT_VERSION,
        "model_type": type_name,
        "params": _jsonable_params(model.get_params()),
    }
    arrays = {}
    for name in fitted_attributes:
        value = getattr(model, name, None)
        if value is None:
            arrays[f"_none__{name}"] = np.array(0)
        else:
            arrays[f"attr__{name}"] = np.asarray(value)

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez(path, header=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ), **arrays)
    return path


def load_model(path):
    """Load an estimator saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"model file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except (KeyError, json.JSONDecodeError) as exc:
            raise ValidationError(f"{path} is not a repro model file: {exc}") from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValidationError(
                f"unsupported model format {header.get('format_version')!r}"
            )
        type_name = header.get("model_type")
        if type_name not in _REGISTRY:
            raise ValidationError(f"unknown model type {type_name!r}")
        cls, fitted_attributes = _REGISTRY[type_name]

        model = cls(**header["params"])
        for name in fitted_attributes:
            key = f"attr__{name}"
            none_key = f"_none__{name}"
            if none_key in archive:
                setattr(model, name, None)
                continue
            value = archive[key]
            setattr(model, name, _restore_scalar(value))
    return model


def _jsonable_params(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, np.ndarray):
            value = value.tolist()
        elif isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        elif isinstance(value, tuple):
            value = list(value)
        if value is not None and not isinstance(
            value, (bool, int, float, str, list)
        ):
            raise ValidationError(
                f"hyper-parameter {key!r} of type {type(value).__name__} "
                "cannot be serialized"
            )
        out[key] = value
    return out


def _restore_scalar(value: np.ndarray):
    """0-d arrays come back as python scalars; everything else stays array."""
    if value.ndim == 0:
        return value.item()
    return value
