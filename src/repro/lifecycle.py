"""Production lifecycle: drift detection and automatic landmark refresh.

This module closes the loop that :class:`repro.core.LandmarkPlan` opens
with ``extend()``/``refresh()``: served traffic is scored row-by-row
against the fit-time fidelity distribution, a windowed
:class:`DriftMonitor` aggregates the scores into drift statistics (and
mirrors them into the :mod:`repro.obs` metrics registry), and a
:class:`RefreshPolicy` decides *when* the accumulated staleness warrants
a warm-start refit. :class:`LifecycleController` wires the three
together with the persistence tier:

    plan.extend(batch)  →  DriftMonitor.observe(scores)
        →  RefreshPolicy.should_refresh(...)
            →  plan.refresh()  →  child.fit(clone(estimator))
                →  ledger.put(..., parent=<current digest>)
                    →  registry.register_from_ledger(...)  (promoted)
                        →  holdout check  →  promote(old) on regression

The controller never mutates a model in place: every refresh produces a
new ledger entry (linked to its parent — see
:meth:`repro.store.RunLedger.lineage`) and a new registry version, and
rollback is just re-promoting the previous version, so concurrent
``resolve("@latest")`` readers always observe a complete model.

:func:`scorer_for` rebuilds the per-row drift score from a *loaded*
artifact (no plan required), which is what the serving tier uses for
per-request drift accounting.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from .core.approx import LandmarkPlan, nystrom_extend, row_agreement
from .exceptions import ValidationError
from .graphs.knn import _distance_view, median_heuristic
from .ml.base import clone
from .obs import span
from .obs.metrics import MetricsRegistry, get_registry
from .store.ledger import coerce_ledger

__all__ = [
    "DriftMonitor",
    "LifecycleController",
    "RefreshPolicy",
    "holdout_agreement",
    "scorer_for",
]


def scorer_for(model):
    """Per-row drift scorer rebuilt from a fitted/loaded landmark model.

    Returns a callable ``score(X_rows, Z_rows=None) -> np.ndarray`` that
    mirrors :meth:`repro.core.LandmarkPlan.score_rows` — the scale-aware
    agreement (:func:`repro.core.row_agreement`) between the model's
    parametric embedding and the graph-smoothing Nyström extension over
    its stored landmark rows. Pass ``Z_rows`` when the parametric
    embedding of the rows is already in hand (the serving hot path) to
    skip the redundant ``transform``.

    Returns ``None`` when the artifact carries no landmark coordinates
    (exact fits, or artifacts persisted before landmarks were stored) —
    callers treat that as "drift accounting unavailable for this model".
    """
    X_landmarks = getattr(model, "landmark_X_", None)
    if X_landmarks is None and getattr(model, "landmark_indices_", None) is not None:
        # Kernel Nyström fits keep their landmark rows as the kernel basis.
        X_landmarks = getattr(model, "X_fit_", None)
    if X_landmarks is None:
        return None
    X_landmarks = np.asarray(X_landmarks, dtype=np.float64)
    if X_landmarks.ndim != 2 or X_landmarks.shape[0] < 2:
        return None
    Z_landmarks = np.asarray(model.transform(X_landmarks), dtype=np.float64)
    exclude = getattr(model, "exclude_columns", None)
    bandwidth = getattr(model, "bandwidth", None)
    if bandwidth is None:
        bandwidth = float(median_heuristic(_distance_view(X_landmarks, exclude)))
    n_neighbors = min(int(getattr(model, "n_neighbors", 10)), X_landmarks.shape[0])

    def score(X_rows, Z_rows=None) -> np.ndarray:
        X_rows = np.asarray(X_rows, dtype=np.float64)
        if X_rows.ndim == 1:
            X_rows = X_rows[None, :]
        if Z_rows is None:
            Z_param = np.asarray(model.transform(X_rows), dtype=np.float64)
        else:
            Z_param = np.asarray(Z_rows, dtype=np.float64)
            if Z_param.ndim == 1:
                Z_param = Z_param[None, :]
        Z_graph = nystrom_extend(
            X_rows,
            X_landmarks,
            Z_landmarks,
            n_neighbors=n_neighbors,
            bandwidth=bandwidth,
            exclude=exclude,
        )
        return row_agreement(Z_graph, Z_param)

    return score


def holdout_agreement(plan: LandmarkPlan, X_holdout) -> float:
    """Mean per-row fidelity of ``X_holdout`` under ``plan`` (higher = better)."""
    X_holdout = np.asarray(X_holdout, dtype=np.float64)
    if X_holdout.ndim != 2 or X_holdout.shape[0] == 0:
        raise ValidationError(
            "holdout_agreement needs a non-empty 2-D holdout matrix; got "
            f"shape {X_holdout.shape}"
        )
    return float(np.mean(plan.score_rows(X_holdout)))


class DriftMonitor:
    """Windowed per-row fidelity statistics with :mod:`repro.obs` mirroring.

    Thread-safe: the serving tier calls :meth:`observe` from worker
    threads while a refresh hook polls :meth:`snapshot`.

    Parameters
    ----------
    window:
        Number of most-recent row scores retained for the statistics.
    floor:
        Score below which a row counts as drifted. Defaults to the
        ``p05`` of ``baseline`` (a :meth:`LandmarkPlan.fidelity_baseline`
        dict) when given, else ``0.5``.
    metrics:
        A :class:`repro.obs.MetricsRegistry`; defaults to the process
        registry. Every observation feeds the ``lifecycle.fidelity``
        histogram and refreshes the ``lifecycle.drift_fraction`` gauge,
        labelled ``model=<name>``.
    """

    def __init__(
        self,
        *,
        window: int = 4096,
        floor: float | None = None,
        baseline: dict | None = None,
        metrics: MetricsRegistry | None = None,
        name: str = "model",
    ):
        if window < 1:
            raise ValidationError(f"window must be >= 1; got {window}")
        if floor is None:
            floor = float(baseline["p05"]) if baseline is not None else 0.5
        self.window = int(window)
        self.floor = float(floor)
        self.name = str(name)
        self.metrics = metrics if metrics is not None else get_registry()
        self._scores: deque[float] = deque(maxlen=self.window)
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, scores) -> None:
        """Fold a batch of per-row scores into the window (and metrics)."""
        scores = np.atleast_1d(np.asarray(scores, dtype=np.float64)).ravel()
        if scores.size == 0:
            return
        with self._lock:
            self._scores.extend(float(s) for s in scores)
            self._total += int(scores.size)
        for s in scores:
            self.metrics.observe("lifecycle.fidelity", float(s), model=self.name)
        snap = self.snapshot()
        self.metrics.set_gauge(
            "lifecycle.drift_fraction", snap["drift_fraction"], model=self.name
        )
        self.metrics.set_gauge(
            "lifecycle.fidelity_mean", snap["mean"], model=self.name
        )

    def snapshot(self) -> dict:
        """Current window statistics as a plain JSON-serialisable dict."""
        with self._lock:
            arr = np.asarray(self._scores, dtype=np.float64)
            total = self._total
        if arr.size == 0:
            return {
                "name": self.name,
                "count": 0,
                "total": total,
                "window": self.window,
                "floor": self.floor,
                "mean": float("nan"),
                "p05": float("nan"),
                "p25": float("nan"),
                "p50": float("nan"),
                "drift_fraction": 0.0,
            }
        p05, p25, p50 = np.quantile(arr, [0.05, 0.25, 0.50])
        return {
            "name": self.name,
            "count": int(arr.size),
            "total": total,
            "window": self.window,
            "floor": self.floor,
            "mean": float(arr.mean()),
            "p05": float(p05),
            "p25": float(p25),
            "p50": float(p50),
            "drift_fraction": float(np.mean(arr < self.floor)),
        }

    def rebase(self, baseline: dict | None = None, *, floor: float | None = None):
        """Reset the window against a new baseline (post-refresh)."""
        if floor is None:
            floor = float(baseline["p05"]) if baseline is not None else self.floor
        with self._lock:
            self._scores.clear()
            self.floor = float(floor)
        return self


@dataclass(frozen=True)
class RefreshPolicy:
    """When is accumulated drift worth a warm-start refit?

    A refresh fires only when *all three* gates pass: the window holds at
    least ``min_rows`` scores, at least ``stale_fraction`` of them fall
    below the monitor's floor, and ``min_interval`` seconds have elapsed
    since the previous refresh (hysteresis against refit thrash).
    """

    stale_fraction: float = 0.5
    min_interval: float = 0.0
    min_rows: int = 32

    def __post_init__(self):
        if not 0.0 < self.stale_fraction <= 1.0:
            raise ValidationError(
                f"stale_fraction must be in (0, 1]; got {self.stale_fraction}"
            )
        if self.min_interval < 0:
            raise ValidationError(
                f"min_interval must be >= 0; got {self.min_interval}"
            )
        if self.min_rows < 1:
            raise ValidationError(f"min_rows must be >= 1; got {self.min_rows}")

    def should_refresh(
        self,
        snapshot: dict,
        *,
        now: float | None = None,
        last_refresh: float | None = None,
    ) -> bool:
        """Decide from a :meth:`DriftMonitor.snapshot` dict."""
        if snapshot["count"] < self.min_rows:
            return False
        if snapshot["drift_fraction"] < self.stale_fraction:
            return False
        if last_refresh is not None:
            if now is None:
                now = time.monotonic()
            if now - last_refresh < self.min_interval:
                return False
        return True


class LifecycleController:
    """Drives extend → drift-score → refresh → register → promote.

    Parameters
    ----------
    plan:
        A *fitted* :class:`repro.core.LandmarkPlan` (the warm-start
        state: landmark graph, solve cache, pending rows).
    estimator:
        The estimator template (``PFR``/``KernelPFR`` with
        ``extension="nystrom"``). Refreshes fit a :func:`clone` with
        ``landmarks`` bumped to the child plan's landmark count.
    registry:
        A :class:`repro.serving.ModelRegistry` (or a path for one).
    name:
        Registry model name; each refresh registers + promotes a new
        version of it.
    ledger:
        Optional :class:`repro.store.RunLedger` (or path). When given,
        every refreshed model is persisted as a ledger entry whose
        ``parent`` links to the entry it replaced, and registration goes
        through :meth:`ModelRegistry.register_from_ledger` so the
        registry record carries the run's stage digests.
    holdout:
        Optional in-distribution rows. After a refresh the child plan
        must score them no worse than the parent did (within
        ``holdout_tolerance``); otherwise the previous version is
        re-promoted and the parent plan stays live.
    """

    def __init__(
        self,
        plan: LandmarkPlan,
        estimator,
        *,
        registry,
        name: str,
        ledger=None,
        policy: RefreshPolicy | None = None,
        monitor: DriftMonitor | None = None,
        holdout=None,
        holdout_tolerance: float = 0.05,
        metrics: MetricsRegistry | None = None,
    ):
        from .serving.registry import ModelRegistry

        if not isinstance(plan, LandmarkPlan):
            raise ValidationError(
                "LifecycleController needs a LandmarkPlan; got "
                f"{type(plan).__name__}"
            )
        if plan._last_fit_point is None:
            raise ValidationError(
                "LifecycleController needs a fitted plan: call plan.fit(estimator) "
                "before constructing the controller"
            )
        if holdout_tolerance < 0:
            raise ValidationError(
                f"holdout_tolerance must be >= 0; got {holdout_tolerance}"
            )
        self.plan = plan
        self.estimator = estimator
        self.registry = (
            registry
            if isinstance(registry, ModelRegistry)
            else ModelRegistry(registry)
        )
        self.name = str(name)
        self.ledger = coerce_ledger(ledger)
        self.policy = policy if policy is not None else RefreshPolicy()
        self.metrics = metrics if metrics is not None else get_registry()
        self.monitor = (
            monitor
            if monitor is not None
            else DriftMonitor(
                baseline=plan.fidelity_baseline(),
                metrics=self.metrics,
                name=self.name,
            )
        )
        if holdout is not None:
            holdout = np.asarray(holdout, dtype=np.float64)
            if holdout.ndim != 2 or holdout.shape[0] == 0:
                raise ValidationError(
                    "holdout must be a non-empty 2-D matrix; got shape "
                    f"{holdout.shape}"
                )
        self.holdout = holdout
        self.holdout_tolerance = float(holdout_tolerance)
        self._last_refresh: float | None = None
        self._entry_digest: str | None = None
        self.history: list[dict] = []
        self._lock = threading.Lock()

    # -- persistence ---------------------------------------------------

    def _task_for(self, plan: LandmarkPlan, *, refresh_of: str | None) -> dict:
        digests = plan.stage_digests()
        task = {
            "kind": "lifecycle_model",
            "name": self.name,
            "stage_digests": digests,
            "estimator": type(self.estimator).__name__,
        }
        if refresh_of is not None:
            # Digest-relevant: two refreshes of different parents must
            # never collide even if their stage digests somehow did.
            task["refresh_of"] = refresh_of
        return task

    def _persist(self, plan: LandmarkPlan, estimator, payload: dict):
        """Ledger + registry write; returns (record, entry_digest)."""
        if self.ledger is not None:
            entry = self.ledger.put(
                self._task_for(plan, refresh_of=self._entry_digest),
                payload,
                model=estimator,
                parent=self._entry_digest,
            )
            record = self.registry.register_from_ledger(
                self.ledger, entry.digest, self.name, promote=True
            )
            return record, entry.digest
        record = self.registry.register(self.name, estimator, promote=True)
        return record, None

    def ensure_registered(self) -> dict:
        """Register + promote the current (parent) model if ``name`` is absent.

        Idempotent: when the registry already serves ``name`` this only
        records the latest version as the rollback target.
        """
        with self._lock:
            try:
                record = self.registry.record(self.name)
            except ValidationError:
                record = None
            if record is None:
                estimator = self._fit_current()
                record, self._entry_digest = self._persist(
                    self.plan, estimator, {"event": "initial"}
                )
            return {"name": self.name, "version": record.version}

    def _fit_current(self):
        estimator = clone(self.estimator)
        estimator.landmarks = self.plan.n_landmarks
        gamma, d = self.plan._last_fit_point
        estimator.gamma = gamma
        estimator.n_components = d
        self.plan.fit(estimator)
        return estimator

    # -- the loop ------------------------------------------------------

    def ingest(self, X_batch, *, w_fair_new=None) -> dict:
        """Score one batch of arriving rows; refresh when the policy fires.

        Returns an event dict: the batch's drift stats plus, when a
        refresh ran, the nested refresh event under ``"refresh"``.
        """
        with self._lock:
            extension = self.plan.extend(
                X_batch, w_fair_new=w_fair_new, refresh="never"
            )
            self.monitor.observe(extension.scores)
            rows = int(len(extension.scores))
            self.metrics.inc("lifecycle.batches", model=self.name)
            self.metrics.inc("lifecycle.rows", float(rows), model=self.name)
            snapshot = self.monitor.snapshot()
            event = {
                "event": "ingest",
                "rows": rows,
                "pending": self.plan.n_pending,
                "batch_mean": float(np.mean(extension.scores))
                if len(extension.scores)
                else float("nan"),
                "drift_fraction": snapshot["drift_fraction"],
                "refresh": None,
            }
            if self.policy.should_refresh(
                snapshot, last_refresh=self._last_refresh
            ):
                event["refresh"] = self._refresh_locked()
            return event

    def refresh(self) -> dict:
        """Force a refresh now (policy bypassed); returns the event dict."""
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> dict:
        if self.plan.n_pending == 0:
            raise ValidationError(
                "refresh needs pending rows: feed batches through ingest() "
                "(or plan.extend) first"
            )
        with span("lifecycle.refresh", model=self.name):
            started = time.perf_counter()
            parent = self.plan
            parent_holdout = (
                holdout_agreement(parent, self.holdout)
                if self.holdout is not None
                else None
            )
            child = parent.refresh()
            estimator = clone(self.estimator)
            estimator.landmarks = child.n_landmarks
            gamma, d = parent._last_fit_point
            estimator.gamma = gamma
            estimator.n_components = d
            child.fit(estimator)
            child_holdout = (
                holdout_agreement(child, self.holdout)
                if self.holdout is not None
                else None
            )
            previous = None
            try:
                previous = self.registry.record(self.name)
            except ValidationError:
                pass
            record, entry_digest = self._persist(
                child,
                estimator,
                {
                    "event": "refresh",
                    "n_landmarks": child.n_landmarks,
                    "holdout_parent": parent_holdout,
                    "holdout_child": child_holdout,
                },
            )
            rolled_back = False
            if (
                parent_holdout is not None
                and child_holdout < parent_holdout - self.holdout_tolerance
            ):
                # The refreshed model serves the in-distribution holdout
                # measurably worse: re-point @latest at the parent and
                # keep the parent plan live (the child version stays on
                # disk for audit).
                rolled_back = True
                if previous is not None:
                    self.registry.promote(self.name, previous.version)
                self.metrics.inc("lifecycle.rollbacks", model=self.name)
            else:
                self.plan = child
                self._entry_digest = entry_digest
                self.monitor.rebase(child.fidelity_baseline())
            self._last_refresh = time.monotonic()
            self.metrics.inc("lifecycle.refreshes", model=self.name)
            self.metrics.set_gauge(
                "lifecycle.last_refresh_seconds",
                time.perf_counter() - started,
                model=self.name,
            )
            event = {
                "event": "refresh",
                "version": record.version,
                "rolled_back": rolled_back,
                "n_landmarks": child.n_landmarks,
                "holdout_parent": parent_holdout,
                "holdout_child": child_holdout,
                "entry_digest": entry_digest,
                "seconds": time.perf_counter() - started,
            }
            self.history.append(event)
            return event

    def status(self) -> dict:
        """One JSON-serialisable view of the whole loop's state."""
        with self._lock:
            try:
                record = self.registry.record(self.name)
                serving = {"version": record.version, "path": str(record.path)}
            except ValidationError:
                serving = None
            return {
                "name": self.name,
                "n_rows": self.plan.X.shape[0],
                "n_landmarks": self.plan.n_landmarks,
                "pending": self.plan.n_pending,
                "drift": self.monitor.snapshot(),
                "policy": {
                    "stale_fraction": self.policy.stale_fraction,
                    "min_interval": self.policy.min_interval,
                    "min_rows": self.policy.min_rows,
                },
                "refreshes": len(
                    [e for e in self.history if not e["rolled_back"]]
                ),
                "rollbacks": len([e for e in self.history if e["rolled_back"]]),
                "serving": serving,
            }
