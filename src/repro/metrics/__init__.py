"""Fairness evaluation measures (paper §4.1).

Individual fairness: :func:`consistency` against ``WX`` or ``WF``.
Group fairness: per-group positive-prediction and error rates, parity and
odds gaps, per-group AUC.
"""

from .group import (
    GroupRates,
    accuracy_by_group,
    calibration_by_group,
    calibration_gap,
    demographic_parity_gap,
    equalized_odds_gap,
    group_auc,
    group_rates,
)
from .individual import consistency, restrict_graph

__all__ = [
    "GroupRates",
    "accuracy_by_group",
    "calibration_by_group",
    "calibration_gap",
    "demographic_parity_gap",
    "equalized_odds_gap",
    "group_auc",
    "group_rates",
    "consistency",
    "restrict_graph",
]
