"""Group-fairness measures (paper §4.1).

The paper reports two group-fairness views:

* **Disparate impact / demographic parity** — per-group rates of positive
  predictions ``P(ŷ=1 | s)`` (Figures 3a, 6a, 9a).
* **Disparate mistreatment / equalized odds** — per-group error rates FPR
  and FNR (Figures 3b, 6b, 9b).

Everything here is computed per group value (supporting more than two
groups, as §3.1 allows) plus scalar gap summaries for benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_binary_labels, check_consistent_length, column_or_1d
from ..exceptions import ValidationError
from ..ml.metrics import (
    false_negative_rate,
    false_positive_rate,
    positive_prediction_rate,
    roc_auc_score,
)

__all__ = [
    "GroupRates",
    "group_rates",
    "demographic_parity_gap",
    "equalized_odds_gap",
    "group_auc",
    "accuracy_by_group",
    "calibration_by_group",
    "calibration_gap",
]


@dataclass(frozen=True)
class GroupRates:
    """Per-group confusion-derived rates.

    Attributes
    ----------
    groups:
        The distinct protected-attribute values, in sorted order.
    positive_rate:
        ``P(ŷ=1 | s)`` per group (disparate-impact view).
    fpr / fnr:
        False positive / false negative rate per group (disparate-
        mistreatment view).
    counts:
        Group sizes.
    """

    groups: tuple
    positive_rate: dict = field(repr=False)
    fpr: dict = field(repr=False)
    fnr: dict = field(repr=False)
    counts: dict = field(repr=False)

    def gap(self, measure: str) -> float:
        """Max-min spread of a measure across groups ('positive_rate', 'fpr', 'fnr')."""
        table = getattr(self, measure, None)
        if not isinstance(table, dict):
            raise ValidationError(
                f"measure must be 'positive_rate', 'fpr' or 'fnr'; got {measure!r}"
            )
        values = list(table.values())
        return float(max(values) - min(values))


def _check_triple(y_true, y_pred, s):
    y_true = check_binary_labels(y_true, name="y_true")
    y_pred = check_binary_labels(y_pred, name="y_pred")
    s = column_or_1d(s, name="s")
    check_consistent_length(y_true, y_pred, s)
    if len(np.unique(s)) < 2:
        raise ValidationError("group-fairness measures need at least two groups in s")
    return y_true, y_pred, s


def group_rates(y_true, y_pred, s) -> GroupRates:
    """Compute all per-group rates the paper's group-fairness figures show."""
    y_true, y_pred, s = _check_triple(y_true, y_pred, s)
    groups = tuple(np.unique(s).tolist())
    positive_rate, fpr, fnr, counts = {}, {}, {}, {}
    for value in groups:
        members = s == value
        positive_rate[value] = positive_prediction_rate(y_pred[members])
        fpr[value] = false_positive_rate(y_true[members], y_pred[members])
        fnr[value] = false_negative_rate(y_true[members], y_pred[members])
        counts[value] = int(members.sum())
    return GroupRates(
        groups=groups, positive_rate=positive_rate, fpr=fpr, fnr=fnr, counts=counts
    )


def demographic_parity_gap(y_pred, s) -> float:
    """``max_s P(ŷ=1|s) - min_s P(ŷ=1|s)``; 0 means perfect demographic parity."""
    y_pred = check_binary_labels(y_pred, name="y_pred")
    s = column_or_1d(s, name="s")
    check_consistent_length(y_pred, s)
    values = np.unique(s)
    if len(values) < 2:
        raise ValidationError("demographic parity needs at least two groups")
    rates = [positive_prediction_rate(y_pred[s == value]) for value in values]
    return float(max(rates) - min(rates))


def equalized_odds_gap(y_true, y_pred, s) -> float:
    """``max(FPR gap, FNR gap)`` across groups; 0 means equalized odds."""
    rates = group_rates(y_true, y_pred, s)
    return max(rates.gap("fpr"), rates.gap("fnr"))


def group_auc(y_true, y_score, s) -> dict:
    """AUC per group plus overall, keyed by group value and ``"any"``.

    Mirrors the γ-sweep figures (4c, 7c, 10c), which plot AUC for S=0, S=1
    and S=Any. Groups with a single class present report ``nan``.
    """
    y_true = check_binary_labels(y_true, name="y_true")
    y_score = column_or_1d(y_score, name="y_score", dtype=np.float64)
    s = column_or_1d(s, name="s")
    check_consistent_length(y_true, y_score, s)
    out = {}
    for value in np.unique(s):
        members = s == value
        if len(np.unique(y_true[members])) < 2:
            out[value] = float("nan")
        else:
            out[value] = roc_auc_score(y_true[members], y_score[members])
    out["any"] = roc_auc_score(y_true, y_score)
    return out


def accuracy_by_group(y_true, y_pred, s) -> dict:
    """Accuracy per group, keyed by group value."""
    y_true, y_pred, s = _check_triple(y_true, y_pred, s)
    return {
        value: float(np.mean(y_true[s == value] == y_pred[s == value]))
        for value in np.unique(s)
    }


def calibration_by_group(y_true, y_score, s, *, n_bins: int = 10) -> dict:
    """Per-group reliability curves (the COMPAS calibration debate's lens).

    A score is *calibrated within groups* when, at every score level, the
    observed positive rate matches the score for each group — Northpointe's
    defense of its decile scores. This returns, per group, the bin centers,
    observed positive rates, and bin counts over an equal-width binning of
    ``y_score`` into ``n_bins`` bins on [0, 1].

    Returns
    -------
    dict
        ``{group: {"bin_center": ..., "observed_rate": ..., "count": ...}}``
        with NaN observed rates for empty bins.
    """
    y_true = check_binary_labels(y_true, name="y_true")
    y_score = column_or_1d(y_score, name="y_score", dtype=np.float64)
    s = column_or_1d(s, name="s")
    check_consistent_length(y_true, y_score, s)
    if n_bins < 2:
        raise ValidationError(f"n_bins must be >= 2; got {n_bins}")
    if y_score.min() < 0.0 or y_score.max() > 1.0:
        raise ValidationError("y_score must be probabilities in [0, 1]")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    bins = np.clip(np.digitize(y_score, edges[1:-1]), 0, n_bins - 1)

    out = {}
    for value in np.unique(s):
        members = s == value
        rates = np.full(n_bins, np.nan)
        counts = np.zeros(n_bins, dtype=np.int64)
        for b in range(n_bins):
            in_bin = members & (bins == b)
            counts[b] = int(in_bin.sum())
            if counts[b]:
                rates[b] = float(y_true[in_bin].mean())
        out[value] = {
            "bin_center": centers,
            "observed_rate": rates,
            "count": counts,
        }
    return out


def calibration_gap(y_true, y_score, s, *, n_bins: int = 10) -> float:
    """Worst between-group difference in observed rates at the same score bin.

    0 means the score is equally calibrated for every group; large values
    mean the same score carries different meanings across groups (the
    within-group-normed COMPAS deciles behave this way by construction).
    Bins where any group is empty are skipped; returns NaN if no bin is
    shared by two groups.
    """
    curves = calibration_by_group(y_true, y_score, s, n_bins=n_bins)
    rates = np.vstack([curve["observed_rate"] for curve in curves.values()])
    populated = ~np.isnan(rates)
    shared = populated.sum(axis=0) >= 2
    if not shared.any():
        return float("nan")
    shared_rates = rates[:, shared]
    gaps = np.nanmax(shared_rates, axis=0) - np.nanmin(shared_rates, axis=0)
    return float(np.max(gaps))
