"""Individual-fairness measures (paper §4.1).

The paper quantifies individual fairness as the *consistency* of outcomes
between individuals connected in a similarity graph ``W``:

    Consistency = 1 - Σ_{i≠j} |ŷ_i - ŷ_j| · W_ij / Σ_{i≠j} W_ij

evaluated against both the data graph ``WX`` and the fairness graph ``WF``.
Consistency is 1 when every connected pair receives the same outcome and 0
when every connected pair disagrees maximally.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._validation import check_symmetric, column_or_1d
from ..exceptions import ValidationError

__all__ = ["consistency", "restrict_graph"]


def consistency(y_pred, W) -> float:
    """Outcome consistency over the pairs connected in ``W``.

    Parameters
    ----------
    y_pred:
        Predicted outcomes per individual. Binary labels reproduce the
        paper's measure; continuous scores in [0, 1] are also accepted
        (soft consistency).
    W:
        Symmetric non-negative similarity adjacency of shape ``(n, n)``.

    Returns
    -------
    float
        Consistency in [0, 1]. By convention an *empty* graph yields 1.0
        (no constraints to violate).
    """
    y = column_or_1d(y_pred, name="y_pred", dtype=np.float64)
    if np.any(y < 0) or np.any(y > 1):
        raise ValidationError("y_pred entries must lie in [0, 1]")
    W = check_symmetric(W, name="W")
    if W.shape[0] != len(y):
        raise ValidationError(
            f"W has {W.shape[0]} nodes but y_pred has {len(y)} entries"
        )

    W = sp.coo_matrix(W)
    off_diag = W.row != W.col
    weights = W.data[off_diag]
    if weights.size == 0 or weights.sum() == 0:
        return 1.0
    if weights.min() < 0:
        raise ValidationError("W must be non-negative")
    disagreements = np.abs(y[W.row[off_diag]] - y[W.col[off_diag]])
    return float(1.0 - (disagreements @ weights) / weights.sum())


def restrict_graph(W, indices) -> sp.csr_matrix:
    """Sub-graph of ``W`` induced by ``indices`` (e.g. the test split).

    Consistency on held-out data is computed on the test×test block of a
    graph built over the full dataset; this helper extracts that block
    while preserving sparsity.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValidationError(f"indices must be 1-D; got shape {indices.shape}")
    W = sp.csr_matrix(W)
    if indices.size and (indices.min() < 0 or indices.max() >= W.shape[0]):
        raise ValidationError(
            f"indices must be in [0, {W.shape[0] - 1}]"
        )
    return W[indices][:, indices].tocsr()
