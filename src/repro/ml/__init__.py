"""In-house machine-learning substrate (scikit-learn replacement).

The execution environment provides no scikit-learn, so this subpackage
implements the estimator protocol, the logistic-regression downstream
classifier the paper uses, the evaluation metrics, preprocessing, and the
cross-validation / grid-search machinery of the paper's protocol (§4.1).
"""

from .base import BaseEstimator, ClassifierMixin, TransformerMixin, clone
from .calibration import CalibratedClassifier, PlattCalibrator
from .linear import LogisticRegression, RidgeRegression, sigmoid
from .metrics import (
    accuracy_score,
    average_precision_score,
    balanced_accuracy_score,
    brier_score,
    confusion_matrix,
    f1_score,
    false_negative_rate,
    false_positive_rate,
    log_loss,
    positive_prediction_rate,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
    true_negative_rate,
    true_positive_rate,
)
from .model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from .pipeline import Pipeline
from .preprocessing import MinMaxScaler, OneHotEncoder, StandardScaler

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "TransformerMixin",
    "clone",
    "CalibratedClassifier",
    "PlattCalibrator",
    "average_precision_score",
    "balanced_accuracy_score",
    "precision_recall_curve",
    "LogisticRegression",
    "RidgeRegression",
    "sigmoid",
    "accuracy_score",
    "brier_score",
    "confusion_matrix",
    "f1_score",
    "false_negative_rate",
    "false_positive_rate",
    "log_loss",
    "positive_prediction_rate",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "true_negative_rate",
    "true_positive_rate",
    "GridSearchCV",
    "KFold",
    "ParameterGrid",
    "StratifiedKFold",
    "cross_val_score",
    "train_test_split",
    "Pipeline",
    "MinMaxScaler",
    "OneHotEncoder",
    "StandardScaler",
]
