"""Estimator protocol for the in-house machine-learning substrate.

The execution environment has no scikit-learn, so this package provides the
minimal estimator contract the rest of the library builds on:

* ``get_params`` / ``set_params`` introspected from ``__init__`` so that
  hyper-parameter search (:mod:`repro.ml.model_selection`) works generically;
* :func:`clone` to create unfitted copies with identical hyper-parameters;
* mixins providing ``fit_transform`` and default ``score``.

The conventions mirror scikit-learn deliberately: estimators are configured
in ``__init__`` only, learned state lives in trailing-underscore attributes
set by ``fit``, and ``fit`` returns ``self``.
"""

from __future__ import annotations

import copy
import inspect

import numpy as np

from ..exceptions import NotFittedError, ValidationError

__all__ = ["BaseEstimator", "TransformerMixin", "ClassifierMixin", "clone"]


class BaseEstimator:
    """Base class providing hyper-parameter introspection.

    Subclasses must declare every hyper-parameter as an explicit keyword
    argument of ``__init__`` and store it under the same attribute name,
    without transformation. That discipline is what makes :func:`clone`
    and grid search possible.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        signature = inspect.signature(init)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
                raise ValidationError(
                    f"{cls.__name__}.__init__ may not use *args/**kwargs; "
                    "declare hyper-parameters explicitly"
                )
            names.append(name)
        return sorted(names)

    def get_params(self) -> dict:
        """Return the estimator's hyper-parameters as a name → value dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params):
        """Set hyper-parameters by name; unknown names raise. Returns ``self``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValidationError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class TransformerMixin:
    """Adds ``fit_transform`` to estimators exposing ``fit`` and ``transform``."""

    @property
    def input_dim(self) -> int:
        """Number of input features the fitted transformer accepts.

        Backed by the ``n_features_in_`` attribute every transformer in this
        library records during ``fit``; raises :class:`NotFittedError` before
        ``fit``. Serving-layer schema checks (:mod:`repro.serving`) rely on
        this being available uniformly across estimator types.
        """
        value = getattr(self, "n_features_in_", None)
        if value is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted yet; input_dim is only "
                "defined after fit()"
            )
        return int(value)

    def fit_transform(self, X, y=None, **fit_params):
        """Fit to ``X`` (optionally with labels ``y``) and return the transform of ``X``."""
        if y is None:
            return self.fit(X, **fit_params).transform(X)
        return self.fit(X, y, **fit_params).transform(X)


class ClassifierMixin:
    """Adds a default accuracy ``score`` to classifiers exposing ``predict``."""

    def score(self, X, y) -> float:
        """Mean accuracy of ``self.predict(X)`` against ``y``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


def clone(estimator):
    """Return an unfitted copy of ``estimator`` with identical hyper-parameters.

    Hyper-parameter values are deep-copied so mutable values (lists of grid
    points, arrays) are not shared between the clone and the original.
    """
    if not isinstance(estimator, BaseEstimator):
        raise ValidationError(
            f"clone requires a BaseEstimator; got {type(estimator).__name__}"
        )
    if hasattr(estimator, "_clone"):
        return estimator._clone()
    params = {
        name: copy.deepcopy(getattr(estimator, name))
        for name in estimator._param_names()
    }
    return type(estimator)(**params)
