"""Probability calibration (Platt scaling).

COMPAS-style risk scores are consumed as probabilities, so calibration
matters: the library's group-calibration metrics
(:func:`repro.metrics.calibration_by_group`) diagnose miscalibration, and
this module repairs it. :class:`PlattCalibrator` fits the classic sigmoid
map ``p = σ(a·f + b)`` on held-out scores;
:class:`CalibratedClassifier` wraps any fitted scorer with it.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .._validation import (
    check_binary_labels,
    check_consistent_length,
    check_is_fitted,
    column_or_1d,
)
from ..exceptions import ConvergenceError, ValidationError
from .base import BaseEstimator
from .linear import sigmoid

__all__ = ["PlattCalibrator", "CalibratedClassifier"]


class PlattCalibrator(BaseEstimator):
    """Sigmoid (Platt) calibration of real-valued scores.

    Fits ``P(y=1 | f) = σ(a·f + b)`` by maximum likelihood with the
    Platt (1999) target smoothing that avoids overconfident endpoints:
    positives are regressed toward ``(n₊+1)/(n₊+2)`` and negatives toward
    ``1/(n₋+2)``.

    Attributes
    ----------
    a_, b_ : float
        The fitted slope and offset.
    """

    def __init__(self, max_iter: int = 200):
        self.max_iter = max_iter

    def fit(self, scores, y):
        """Fit on held-out scores and binary labels."""
        scores = column_or_1d(scores, name="scores", dtype=np.float64)
        y = check_binary_labels(y)
        check_consistent_length(scores, y)
        if len(np.unique(y)) < 2:
            raise ValidationError("calibration requires both classes present")

        n_pos = int(np.sum(y == 1))
        n_neg = len(y) - n_pos
        target = np.where(
            y == 1, (n_pos + 1.0) / (n_pos + 2.0), 1.0 / (n_neg + 2.0)
        )

        def objective(params):
            a, b = params
            p = np.clip(sigmoid(a * scores + b), 1e-12, 1 - 1e-12)
            loss = -np.sum(target * np.log(p) + (1 - target) * np.log(1 - p))
            residual = p - target
            return loss, np.array(
                [np.sum(residual * scores), np.sum(residual)]
            )

        result = scipy.optimize.minimize(
            objective,
            np.array([1.0, 0.0]),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        if not np.all(np.isfinite(result.x)):
            raise ConvergenceError(f"Platt scaling diverged: {result.message}")
        self.a_ = float(result.x[0])
        self.b_ = float(result.x[1])
        return self

    def predict_proba_positive(self, scores) -> np.ndarray:
        """Calibrated ``P(y=1)`` for raw scores."""
        check_is_fitted(self, "a_")
        scores = column_or_1d(scores, name="scores", dtype=np.float64)
        return sigmoid(self.a_ * scores + self.b_)


class CalibratedClassifier(BaseEstimator):
    """Wrap a fitted scorer with Platt calibration.

    Parameters
    ----------
    base:
        A fitted estimator exposing ``decision_function`` (preferred) or
        ``predict_proba``.
    threshold:
        Decision threshold on the calibrated probability.
    """

    def __init__(self, base=None, threshold: float = 0.5):
        self.base = base
        self.threshold = threshold

    def _scores(self, X) -> np.ndarray:
        if self.base is None:
            raise ValidationError("CalibratedClassifier requires a base estimator")
        if hasattr(self.base, "decision_function"):
            return np.asarray(self.base.decision_function(X), dtype=np.float64)
        if hasattr(self.base, "predict_proba"):
            return np.asarray(self.base.predict_proba(X)[:, 1], dtype=np.float64)
        raise ValidationError(
            "base estimator must expose decision_function or predict_proba"
        )

    def fit(self, X, y):
        """Fit the calibration map on held-out ``(X, y)``."""
        if not 0.0 < self.threshold < 1.0:
            raise ValidationError(f"threshold must be in (0, 1); got {self.threshold}")
        self.calibrator_ = PlattCalibrator().fit(self._scores(X), y)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Calibrated class probabilities, shape ``(n, 2)``."""
        check_is_fitted(self, "calibrator_")
        p1 = self.calibrator_.predict_proba_positive(self._scores(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Hard labels at the configured probability threshold."""
        return (self.predict_proba(X)[:, 1] >= self.threshold).astype(np.int64)
