"""Linear models: the downstream predictors used throughout the paper.

The paper trains an "out-of-the-box logistic regression classifier" on every
learned representation (§4.1). This module supplies that classifier —
L2-regularized logistic regression fitted with L-BFGS and an analytic
gradient — plus a ridge-regularized linear regressor used by some ablations.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from .._validation import check_array, check_is_fitted, check_X_y
from ..exceptions import ConvergenceError, ValidationError
from .base import BaseEstimator, ClassifierMixin

__all__ = ["LogisticRegression", "RidgeRegression", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function ``1 / (1 + exp(-z))``."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


def _log_sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(z))``."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = -np.log1p(np.exp(-z[positive]))
    out[~positive] = z[~positive] - np.log1p(np.exp(z[~positive]))
    return out


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary L2-regularized logistic regression.

    Minimizes ``sum_i log(1 + exp(-t_i (w·x_i + b))) + (1 / (2C)) ||w||²``
    with ``t_i ∈ {-1, +1}``; the intercept is never penalized. Optimization
    uses ``scipy.optimize.minimize(method="L-BFGS-B")`` with the analytic
    gradient, mirroring scikit-learn's ``solver="lbfgs"``.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = weaker regularization).
    fit_intercept:
        Learn an unpenalized bias term.
    max_iter:
        L-BFGS iteration budget.
    tol:
        Gradient-norm convergence tolerance passed to L-BFGS.
    class_weight:
        ``None`` (uniform) or ``"balanced"`` (weights inversely proportional
        to class frequencies, as in scikit-learn).

    Attributes
    ----------
    coef_ : ndarray of shape (n_features,)
        Learned weights.
    intercept_ : float
        Learned bias (0.0 when ``fit_intercept=False``).
    n_iter_ : int
        Iterations actually used by the optimizer.
    """

    def __init__(
        self,
        C: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 500,
        tol: float = 1e-6,
        class_weight=None,
    ):
        self.C = C
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.class_weight = class_weight

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones_like(y, dtype=np.float64)
        if self.class_weight == "balanced":
            n = len(y)
            counts = np.bincount(y.astype(np.int64), minlength=2)
            weights = np.zeros(2, dtype=np.float64)
            present = counts > 0
            weights[present] = n / (2.0 * counts[present])
            return weights[y.astype(np.int64)]
        raise ValidationError(
            f"class_weight must be None or 'balanced'; got {self.class_weight!r}"
        )

    def fit(self, X, y):
        """Fit the model on features ``X`` and binary labels ``y`` in {0, 1}."""
        X, y = check_X_y(X, y, min_samples=2)
        classes = np.unique(y)
        if len(classes) == 1:
            # Degenerate but legal in CV folds: predict the constant class.
            self.classes_ = np.array([0, 1])
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = 20.0 if classes[0] == 1 else -20.0
            self.n_iter_ = 0
            return self
        if not np.isin(classes, (0, 1)).all():
            raise ValidationError(f"y must be binary in {{0, 1}}; got classes {classes}")
        if self.C <= 0:
            raise ValidationError(f"C must be positive; got {self.C}")

        targets = np.where(y == 1, 1.0, -1.0)
        weights = self._sample_weights(y)
        n_features = X.shape[1]
        alpha = 1.0 / (2.0 * self.C)

        def objective(params):
            w = params[:n_features]
            b = params[n_features] if self.fit_intercept else 0.0
            margins = targets * (X @ w + b)
            loss = -np.sum(weights * _log_sigmoid(margins)) + alpha * (w @ w)
            # d/dm of -log(sigmoid(m)) = -sigmoid(-m)
            coeff = -weights * targets * sigmoid(-margins)
            grad_w = X.T @ coeff + 2.0 * alpha * w
            if self.fit_intercept:
                grad = np.concatenate([grad_w, [np.sum(coeff)]])
            else:
                grad = grad_w
            return loss, grad

        n_params = n_features + (1 if self.fit_intercept else 0)
        result = scipy.optimize.minimize(
            objective,
            np.zeros(n_params),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        if not result.success and "ABNORMAL" in str(result.message).upper():
            raise ConvergenceError(f"L-BFGS failed: {result.message}")

        self.classes_ = np.array([0, 1])
        self.coef_ = result.x[:n_features]
        self.intercept_ = float(result.x[n_features]) if self.fit_intercept else 0.0
        self.n_iter_ = int(result.nit)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distance to the decision boundary, ``w·x + b``."""
        check_is_fitted(self, "coef_")
        X = check_array(X, name="X")
        if X.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} features; model was fitted with {self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability matrix of shape ``(n, 2)``: columns P(y=0), P(y=1)."""
        p1 = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Hard labels at the 0.5 probability threshold."""
        return (self.decision_function(X) >= 0.0).astype(np.int64)


class RidgeRegression(BaseEstimator):
    """Linear regression with L2 penalty, solved in closed form.

    Minimizes ``||Xw + b - y||² + alpha ||w||²``; the intercept is not
    penalized (handled by centering).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        """Fit on features ``X`` and continuous targets ``y``."""
        X = check_array(X, name="X", min_samples=1)
        y = np.asarray(y, dtype=np.float64).ravel()
        if self.alpha < 0:
            raise ValidationError(f"alpha must be non-negative; got {self.alpha}")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        """Predicted continuous targets."""
        check_is_fitted(self, "coef_")
        X = check_array(X, name="X")
        return X @ self.coef_ + self.intercept_

    def score(self, X, y) -> float:
        """Coefficient of determination R²."""
        y = np.asarray(y, dtype=np.float64).ravel()
        residual = y - self.predict(X)
        total = y - y.mean()
        denom = float(total @ total)
        if denom == 0.0:
            return 0.0
        return 1.0 - float(residual @ residual) / denom
