"""Classification metrics implemented from first principles.

Provides the evaluation measures the paper relies on — AUC (utility), error
rates (disparate mistreatment), positive-prediction rates (disparate impact)
— plus the standard supporting metrics (accuracy, confusion matrix, log
loss). All metrics operate on numpy arrays and binary {0, 1} labels.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_binary_labels,
    check_consistent_length,
    column_or_1d,
)
from ..exceptions import ValidationError

__all__ = [
    "accuracy_score",
    "balanced_accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "true_positive_rate",
    "false_positive_rate",
    "false_negative_rate",
    "true_negative_rate",
    "positive_prediction_rate",
    "roc_curve",
    "roc_auc_score",
    "precision_recall_curve",
    "average_precision_score",
    "log_loss",
    "brier_score",
]


def _check_pred_pair(y_true, y_pred):
    y_true = check_binary_labels(y_true, name="y_true")
    y_pred = check_binary_labels(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred)
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pred_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """2x2 confusion matrix ``[[TN, FP], [FN, TP]]`` (rows: true, cols: predicted)."""
    y_true, y_pred = _check_pred_pair(y_true, y_pred)
    matrix = np.zeros((2, 2), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_score(y_true, y_pred) -> float:
    """TP / (TP + FP); defined as 0.0 when nothing is predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    predicted_positive = matrix[0, 1] + matrix[1, 1]
    if predicted_positive == 0:
        return 0.0
    return float(matrix[1, 1] / predicted_positive)


def recall_score(y_true, y_pred) -> float:
    """TP / (TP + FN); defined as 0.0 when there are no true positives."""
    return true_positive_rate(y_true, y_pred)


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall (0.0 when both are zero)."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def true_positive_rate(y_true, y_pred) -> float:
    """TP / (TP + FN) over the positive class; 0.0 if the class is absent."""
    matrix = confusion_matrix(y_true, y_pred)
    actual_positive = matrix[1, 0] + matrix[1, 1]
    if actual_positive == 0:
        return 0.0
    return float(matrix[1, 1] / actual_positive)


def false_negative_rate(y_true, y_pred) -> float:
    """FN / (TP + FN); complement of the true positive rate."""
    matrix = confusion_matrix(y_true, y_pred)
    actual_positive = matrix[1, 0] + matrix[1, 1]
    if actual_positive == 0:
        return 0.0
    return float(matrix[1, 0] / actual_positive)


def false_positive_rate(y_true, y_pred) -> float:
    """FP / (FP + TN); 0.0 if the negative class is absent."""
    matrix = confusion_matrix(y_true, y_pred)
    actual_negative = matrix[0, 0] + matrix[0, 1]
    if actual_negative == 0:
        return 0.0
    return float(matrix[0, 1] / actual_negative)


def true_negative_rate(y_true, y_pred) -> float:
    """TN / (FP + TN); complement of the false positive rate."""
    matrix = confusion_matrix(y_true, y_pred)
    actual_negative = matrix[0, 0] + matrix[0, 1]
    if actual_negative == 0:
        return 0.0
    return float(matrix[0, 0] / actual_negative)


def positive_prediction_rate(y_pred) -> float:
    """P(ŷ = 1): the rate of positive predictions (disparate-impact measure)."""
    y_pred = check_binary_labels(y_pred, name="y_pred")
    return float(np.mean(y_pred))


def roc_curve(y_true, y_score):
    """Receiver operating characteristic curve.

    Parameters
    ----------
    y_true:
        Binary ground-truth labels.
    y_score:
        Continuous scores; larger means "more positive".

    Returns
    -------
    fpr, tpr, thresholds:
        Arrays tracing the ROC curve from the most conservative threshold
        (predict nothing positive) to the most liberal (predict everything
        positive). Thresholds are the distinct score values in decreasing
        order, with a leading ``+inf`` sentinel for the (0, 0) point.
    """
    y_true = check_binary_labels(y_true, name="y_true")
    y_score = column_or_1d(y_score, name="y_score", dtype=np.float64)
    check_consistent_length(y_true, y_score)
    if not np.all(np.isfinite(y_score)):
        raise ValidationError("y_score contains NaN or infinity")

    n_positive = int(np.sum(y_true == 1))
    n_negative = int(np.sum(y_true == 0))
    if n_positive == 0 or n_negative == 0:
        raise ValidationError("roc_curve requires both classes present in y_true")

    order = np.argsort(-y_score, kind="stable")
    sorted_score = y_score[order]
    sorted_true = y_true[order]

    # Indices where the score changes — candidate thresholds.
    distinct = np.where(np.diff(sorted_score))[0]
    threshold_idx = np.concatenate([distinct, [len(sorted_true) - 1]])

    tps = np.cumsum(sorted_true)[threshold_idx]
    fps = (threshold_idx + 1) - tps

    tpr = np.concatenate([[0.0], tps / n_positive])
    fpr = np.concatenate([[0.0], fps / n_negative])
    thresholds = np.concatenate([[np.inf], sorted_score[threshold_idx]])
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Ties in ``y_score`` contribute half credit, matching the trapezoidal
    area under :func:`roc_curve`.
    """
    y_true = check_binary_labels(y_true, name="y_true")
    y_score = column_or_1d(y_score, name="y_score", dtype=np.float64)
    check_consistent_length(y_true, y_score)

    n_positive = int(np.sum(y_true == 1))
    n_negative = int(np.sum(y_true == 0))
    if n_positive == 0 or n_negative == 0:
        raise ValidationError("roc_auc_score requires both classes present in y_true")

    # Midranks handle ties exactly.
    order = np.argsort(y_score, kind="stable")
    ranks = np.empty(len(y_score), dtype=np.float64)
    sorted_score = y_score[order]
    i = 0
    while i < len(sorted_score):
        j = i
        while j + 1 < len(sorted_score) and sorted_score[j + 1] == sorted_score[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1

    rank_sum_positive = float(np.sum(ranks[y_true == 1]))
    u_statistic = rank_sum_positive - n_positive * (n_positive + 1) / 2.0
    return u_statistic / (n_positive * n_negative)


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Mean of the per-class recalls — robust to class imbalance."""
    return 0.5 * (
        true_positive_rate(y_true, y_pred) + true_negative_rate(y_true, y_pred)
    )


def precision_recall_curve(y_true, y_score):
    """Precision-recall pairs over decreasing score thresholds.

    Returns
    -------
    precision, recall, thresholds:
        ``precision``/``recall`` have one trailing point ``(1, 0)`` beyond
        the last threshold, mirroring the usual convention so the curve
        closes at zero recall.
    """
    y_true = check_binary_labels(y_true, name="y_true")
    y_score = column_or_1d(y_score, name="y_score", dtype=np.float64)
    check_consistent_length(y_true, y_score)
    n_positive = int(np.sum(y_true == 1))
    if n_positive == 0:
        raise ValidationError("precision_recall_curve requires positive samples")

    order = np.argsort(-y_score, kind="stable")
    sorted_true = y_true[order]
    sorted_score = y_score[order]
    distinct = np.where(np.diff(sorted_score))[0]
    threshold_idx = np.concatenate([distinct, [len(sorted_true) - 1]])

    tps = np.cumsum(sorted_true)[threshold_idx].astype(np.float64)
    predicted = (threshold_idx + 1).astype(np.float64)
    precision = tps / predicted
    recall = tps / n_positive
    thresholds = sorted_score[threshold_idx]

    precision = np.concatenate([precision, [1.0]])
    recall = np.concatenate([recall, [0.0]])
    return precision, recall, thresholds


def average_precision_score(y_true, y_score) -> float:
    """Area under the precision-recall curve (step-wise interpolation).

    ``AP = Σ_k (R_k - R_{k-1}) · P_k`` over thresholds from conservative to
    liberal, with ``R_0 = 0``.
    """
    precision, recall, thresholds = precision_recall_curve(y_true, y_score)
    # Drop the appended (precision=1, recall=0) closing point; integrate the
    # recall increments against precision at each threshold.
    precision = precision[: len(thresholds)]
    recall = recall[: len(thresholds)]
    increments = np.diff(np.concatenate([[0.0], recall]))
    return float(np.sum(increments * precision))


def log_loss(y_true, y_prob, *, eps: float = 1e-15) -> float:
    """Binary cross-entropy between labels and predicted probabilities."""
    y_true = check_binary_labels(y_true, name="y_true")
    y_prob = column_or_1d(y_prob, name="y_prob", dtype=np.float64)
    check_consistent_length(y_true, y_prob)
    clipped = np.clip(y_prob, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(clipped) + (1 - y_true) * np.log(1 - clipped)))


def brier_score(y_true, y_prob) -> float:
    """Mean squared error between labels and predicted probabilities."""
    y_true = check_binary_labels(y_true, name="y_true")
    y_prob = column_or_1d(y_prob, name="y_prob", dtype=np.float64)
    check_consistent_length(y_true, y_prob)
    return float(np.mean((y_prob - y_true) ** 2))
