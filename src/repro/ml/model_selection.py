"""Data splitting, cross-validation, and hyper-parameter search.

Reproduces the paper's protocol (§4.1): a held-out test split, then 5-fold
cross-validation grid search on the training portion, then a single
evaluation on the untouched test set.
"""

from __future__ import annotations

import itertools

import numpy as np

from .._validation import (
    check_consistent_length,
    check_random_state,
    column_or_1d,
)
from ..exceptions import ValidationError
from .base import BaseEstimator, clone
from .metrics import accuracy_score, roc_auc_score

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "ParameterGrid",
    "cross_val_score",
    "GridSearchCV",
]


def train_test_split(*arrays, test_size: float = 0.3, stratify=None, seed=None):
    """Split arrays into random train and test subsets.

    Parameters
    ----------
    *arrays:
        One or more arrays sharing the first dimension.
    test_size:
        Fraction of samples assigned to the test set, in (0, 1).
    stratify:
        Optional label array; when given, each label keeps (approximately)
        its population share in both splits.
    seed:
        Seed or ``numpy.random.Generator`` for the shuffle.

    Returns
    -------
    list
        ``[a1_train, a1_test, a2_train, a2_test, ...]`` in argument order.
    """
    if not arrays:
        raise ValidationError("train_test_split needs at least one array")
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1); got {test_size}")
    n = check_consistent_length(*arrays)
    n_test = int(round(n * test_size))
    if n_test == 0 or n_test == n:
        raise ValidationError(
            f"test_size={test_size} leaves an empty split for n={n} samples"
        )
    rng = check_random_state(seed)

    if stratify is None:
        permutation = rng.permutation(n)
        test_idx = permutation[:n_test]
        train_idx = permutation[n_test:]
    else:
        labels = column_or_1d(stratify, name="stratify")
        check_consistent_length(arrays[0], labels)
        test_parts, train_parts = [], []
        # Largest-remainder allocation keeps the test set size exact while
        # keeping every class close to its population share.
        values, counts = np.unique(labels, return_counts=True)
        quotas = counts * test_size
        base = np.floor(quotas).astype(int)
        remainder = n_test - int(base.sum())
        order = np.argsort(-(quotas - base), kind="stable")
        base[order[:remainder]] += 1
        for value, take in zip(values, base):
            members = np.flatnonzero(labels == value)
            members = rng.permutation(members)
            test_parts.append(members[:take])
            train_parts.append(members[take:])
        test_idx = rng.permutation(np.concatenate(test_parts))
        train_idx = rng.permutation(np.concatenate(train_parts))

    result = []
    for array in arrays:
        indexable = np.asarray(array)
        result.extend([indexable[train_idx], indexable[test_idx]])
    return result


class KFold:
    """Deterministic or shuffled k-fold cross-validation splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, seed=None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2; got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, X, y=None):
        """Yield ``(train_indices, test_indices)`` pairs covering all samples."""
        n = X.shape[0] if hasattr(X, "shape") else len(X)
        if n < self.n_splits:
            raise ValidationError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            indices = check_random_state(self.seed).permutation(n)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size


class StratifiedKFold:
    """K-fold splitter that preserves per-class proportions in every fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, seed=None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2; got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, X, y):
        """Yield stratified ``(train_indices, test_indices)`` pairs."""
        y = column_or_1d(y, name="y")
        n = len(y)
        check_consistent_length(X, y)
        rng = check_random_state(self.seed)
        # Assign a fold id to each sample, dealing class-by-class round-robin.
        fold_of = np.empty(n, dtype=int)
        for value in np.unique(y):
            members = np.flatnonzero(y == value)
            if len(members) < self.n_splits:
                raise ValidationError(
                    f"class {value!r} has only {len(members)} members for "
                    f"{self.n_splits} folds"
                )
            if self.shuffle:
                members = rng.permutation(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for fold in range(self.n_splits):
            test_idx = np.flatnonzero(fold_of == fold)
            train_idx = np.flatnonzero(fold_of != fold)
            yield train_idx, test_idx


class ParameterGrid:
    """Iterate over the cartesian product of a parameter grid dictionary.

    ``ParameterGrid({"a": [1, 2], "b": [3]})`` yields ``{"a": 1, "b": 3}``
    and ``{"a": 2, "b": 3}``. A list of grids is accepted and concatenated.
    """

    def __init__(self, grid):
        if isinstance(grid, dict):
            grid = [grid]
        if not isinstance(grid, (list, tuple)) or not all(isinstance(g, dict) for g in grid):
            raise ValidationError("grid must be a dict or a list of dicts")
        for g in grid:
            for key, values in g.items():
                if not isinstance(values, (list, tuple, np.ndarray)):
                    raise ValidationError(
                        f"grid values must be sequences; {key!r} has {type(values).__name__}"
                    )
                if len(values) == 0:
                    raise ValidationError(f"grid entry {key!r} is empty")
        self.grid = [dict(g) for g in grid]

    def __iter__(self):
        for g in self.grid:
            if not g:
                yield {}
                continue
            keys = sorted(g)
            for combo in itertools.product(*(g[k] for k in keys)):
                yield dict(zip(keys, combo))

    def __len__(self) -> int:
        total = 0
        for g in self.grid:
            size = 1
            for values in g.values():
                size *= len(values)
            total += size
        return total


_SCORERS = {
    "accuracy": lambda est, X, y: accuracy_score(y, est.predict(X)),
    "roc_auc": lambda est, X, y: roc_auc_score(y, est.predict_proba(X)[:, 1]),
}


def get_scorer(scoring):
    """Resolve a scoring spec (name or callable) to ``f(estimator, X, y) -> float``."""
    if callable(scoring):
        return scoring
    if scoring in _SCORERS:
        return _SCORERS[scoring]
    raise ValidationError(
        f"unknown scoring {scoring!r}; available: {sorted(_SCORERS)} or a callable"
    )


def cross_val_score(estimator, X, y, *, cv=None, scoring="accuracy") -> np.ndarray:
    """Score an estimator over cross-validation folds.

    Each fold clones the estimator, fits on the training part, and applies
    the scorer to the held-out part.
    """
    if cv is None:
        cv = KFold(n_splits=5)
    scorer = get_scorer(scoring)
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in cv.split(X, y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(model, X[test_idx], y[test_idx]))
    return np.asarray(scores, dtype=np.float64)


class GridSearchCV(BaseEstimator):
    """Exhaustive hyper-parameter search with cross-validation.

    Mirrors the paper's tuning protocol: every parameter combination is
    scored by k-fold cross-validation on the training data; the best
    combination is refitted on the full training data.

    Attributes
    ----------
    best_params_ : dict
        Parameters of the best combination.
    best_score_ : float
        Mean cross-validation score of the best combination.
    best_estimator_ : estimator
        Estimator refitted on all training data with ``best_params_``.
    cv_results_ : list of dict
        One record per combination: ``params``, ``mean_score``, ``std_score``.
    """

    def __init__(self, estimator=None, param_grid=None, scoring="accuracy", cv=None):
        self.estimator = estimator
        self.param_grid = param_grid
        self.scoring = scoring
        self.cv = cv

    def fit(self, X, y):
        """Run the search and refit the winner on all of ``(X, y)``."""
        if self.estimator is None or self.param_grid is None:
            raise ValidationError("GridSearchCV requires estimator and param_grid")
        X = np.asarray(X)
        y = np.asarray(y)
        cv = self.cv if self.cv is not None else StratifiedKFold(n_splits=5)
        scorer = get_scorer(self.scoring)

        self.cv_results_ = []
        best_score = -np.inf
        best_params = None
        for params in ParameterGrid(self.param_grid):
            fold_scores = []
            for train_idx, test_idx in cv.split(X, y):
                model = clone(self.estimator).set_params(**params)
                model.fit(X[train_idx], y[train_idx])
                fold_scores.append(scorer(model, X[test_idx], y[test_idx]))
            mean_score = float(np.mean(fold_scores))
            self.cv_results_.append(
                {
                    "params": dict(params),
                    "mean_score": mean_score,
                    # Sample std (ddof=1): the fold scores are a sample of
                    # the score distribution, and population std would
                    # understate the spread (n_splits >= 2 always holds,
                    # but guard the degenerate case anyway).
                    "std_score": (
                        float(np.std(fold_scores, ddof=1))
                        if len(fold_scores) > 1
                        else 0.0
                    ),
                }
            )
            if mean_score > best_score:
                best_score = mean_score
                best_params = dict(params)

        self.best_score_ = best_score
        self.best_params_ = best_params
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X):
        """Predict with the refitted best estimator."""
        if getattr(self, "best_estimator_", None) is None:
            raise ValidationError("GridSearchCV is not fitted yet")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X):
        """Probabilities from the refitted best estimator."""
        if getattr(self, "best_estimator_", None) is None:
            raise ValidationError("GridSearchCV is not fitted yet")
        return self.best_estimator_.predict_proba(X)
