"""Estimator composition: chain transformers with a final predictor.

The paper's protocol is exactly such a chain — scaler → representation
learner → logistic regression — so a small Pipeline keeps the experiment
harness declarative.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from .base import BaseEstimator, clone

__all__ = ["Pipeline"]


class Pipeline(BaseEstimator):
    """Chain of ``(name, estimator)`` steps.

    All steps except the last must be transformers (``fit``/``transform``);
    the last step may be any estimator. ``fit`` clones nothing — steps are
    fitted in place, matching scikit-learn semantics.
    """

    def __init__(self, steps=None):
        self.steps = steps

    def _validate(self):
        if not self.steps:
            raise ValidationError("Pipeline requires a non-empty list of (name, estimator) steps")
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValidationError(f"step names must be unique; got {names}")
        for name, step in self.steps[:-1]:
            if not hasattr(step, "transform"):
                raise ValidationError(f"intermediate step {name!r} must define transform()")

    @property
    def named_steps(self) -> dict:
        """Step name → estimator mapping."""
        return dict(self.steps)

    def _transform_through(self, X, *, upto_last: bool) -> np.ndarray:
        steps = self.steps[:-1] if upto_last else self.steps
        for _, step in steps:
            X = step.transform(X)
        return X

    def fit(self, X, y=None):
        """Fit each step in sequence, feeding forward transformed data."""
        self._validate()
        for _, step in self.steps[:-1]:
            X = step.fit_transform(X, y) if hasattr(step, "fit_transform") else step.fit(X, y).transform(X)
        final = self.steps[-1][1]
        if y is None:
            final.fit(X)
        else:
            final.fit(X, y)
        return self

    def transform(self, X) -> np.ndarray:
        """Apply every step's ``transform`` (the final step must be a transformer)."""
        self._validate()
        return self._transform_through(X, upto_last=False)

    def predict(self, X):
        """Transform through all intermediate steps, then predict with the last."""
        self._validate()
        return self.steps[-1][1].predict(self._transform_through(X, upto_last=True))

    def predict_proba(self, X):
        """Transform through intermediates, then ``predict_proba`` with the last step."""
        self._validate()
        return self.steps[-1][1].predict_proba(self._transform_through(X, upto_last=True))

    def decision_function(self, X):
        """Transform through intermediates, then ``decision_function`` with the last step."""
        self._validate()
        return self.steps[-1][1].decision_function(self._transform_through(X, upto_last=True))

    def score(self, X, y):
        """Delegate scoring to the final step on transformed features."""
        self._validate()
        return self.steps[-1][1].score(self._transform_through(X, upto_last=True), y)

    def _clone(self) -> "Pipeline":
        """Unfitted copy: recursively clones every step estimator."""
        return Pipeline(steps=[(name, clone(step)) for name, step in (self.steps or [])])

    def get_params(self) -> dict:
        """Flat parameters plus nested ``step__param`` entries for grid search."""
        params = {"steps": self.steps}
        if self.steps:
            for name, step in self.steps:
                if isinstance(step, BaseEstimator):
                    for key, value in step.get_params().items():
                        params[f"{name}__{key}"] = value
        return params

    def set_params(self, **params):
        """Support both ``steps=...`` and nested ``step__param`` assignment."""
        if "steps" in params:
            self.steps = params.pop("steps")
        named = dict(self.steps) if self.steps else {}
        for key, value in params.items():
            if "__" not in key:
                raise ValidationError(f"unknown Pipeline parameter {key!r}")
            step_name, _, sub_key = key.partition("__")
            if step_name not in named:
                raise ValidationError(f"Pipeline has no step named {step_name!r}")
            named[step_name].set_params(**{sub_key: value})
        return self
