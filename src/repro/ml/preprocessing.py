"""Feature preprocessing: scaling and categorical encoding.

The paper standardizes inputs ("Original representation is standardized to
zero mean and unit variance", Fig. 1) and one-hot encodes the categorical
attributes of COMPAS. These transformers reproduce the scikit-learn
behaviour the authors relied on.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_array, check_is_fitted
from ..exceptions import ValidationError
from .base import BaseEstimator, TransformerMixin

__all__ = ["StandardScaler", "MinMaxScaler", "OneHotEncoder"]


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features to zero mean and unit variance.

    Constant columns (zero variance) are centered but left unscaled, so the
    transform never divides by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None):
        """Learn per-column means and standard deviations."""
        X = check_array(X, name="X")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            # A numerically-constant column can report a tiny non-zero std
            # (floating-point residue of the mean); treat it as constant
            # relative to the column's magnitude instead of dividing by it.
            magnitude = np.maximum(np.abs(X).max(axis=0), 1.0)
            scale[scale <= 1e-10 * magnitude] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned centering and scaling."""
        check_is_fitted(self, ("mean_", "scale_"))
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features; scaler was fitted with {self.n_features_in_}"
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the scaling: ``X * scale_ + mean_``."""
        check_is_fitted(self, ("mean_", "scale_"))
        X = check_array(X, name="X")
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Rescale features to a target range (default [0, 1]).

    Constant columns map to the lower bound of the range.
    """

    def __init__(self, feature_range: tuple = (0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X, y=None):
        """Learn per-column minima and ranges."""
        low, high = self.feature_range
        if low >= high:
            raise ValidationError(f"feature_range must be increasing; got {self.feature_range}")
        X = check_array(X, name="X")
        self.data_min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.data_min_
        data_range[data_range == 0.0] = 1.0
        self.data_range_ = data_range
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Map features into ``feature_range`` using the fitted statistics."""
        check_is_fitted(self, ("data_min_", "data_range_"))
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features; scaler was fitted with {self.n_features_in_}"
            )
        low, high = self.feature_range
        unit = (X - self.data_min_) / self.data_range_
        return unit * (high - low) + low

    def inverse_transform(self, X) -> np.ndarray:
        """Map data from ``feature_range`` back to the original units."""
        check_is_fitted(self, ("data_min_", "data_range_"))
        X = check_array(X, name="X")
        low, high = self.feature_range
        unit = (X - low) / (high - low)
        return unit * self.data_range_ + self.data_min_


class OneHotEncoder(BaseEstimator, TransformerMixin):
    """One-hot encode integer- or string-coded categorical columns.

    Parameters
    ----------
    handle_unknown:
        ``"error"`` raises on categories unseen during ``fit``;
        ``"ignore"`` encodes them as all-zero rows for that column.
    drop_first:
        Drop the first category of each column (dummy coding), which avoids
        perfect collinearity in linear models.
    """

    def __init__(self, handle_unknown: str = "error", drop_first: bool = False):
        self.handle_unknown = handle_unknown
        self.drop_first = drop_first

    def fit(self, X, y=None):
        """Record the sorted category set of every column."""
        if self.handle_unknown not in ("error", "ignore"):
            raise ValidationError(
                f"handle_unknown must be 'error' or 'ignore'; got {self.handle_unknown!r}"
            )
        X = np.asarray(X)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional; got ndim={X.ndim}")
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Return the concatenated one-hot encoding of all columns as floats."""
        check_is_fitted(self, "categories_")
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X must have shape (n, {self.n_features_in_}); got {X.shape}"
            )
        blocks = []
        for j, categories in enumerate(self.categories_):
            column = X[:, j]
            codes = np.searchsorted(categories, column)
            codes = np.clip(codes, 0, len(categories) - 1)
            known = categories[codes] == column
            if not known.all() and self.handle_unknown == "error":
                unseen = np.unique(np.asarray(column)[~known])
                raise ValidationError(
                    f"column {j} contains categories unseen in fit: {unseen.tolist()}"
                )
            block = np.zeros((len(column), len(categories)), dtype=np.float64)
            rows = np.arange(len(column))[known]
            block[rows, codes[known]] = 1.0
            if self.drop_first:
                block = block[:, 1:]
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.empty((X.shape[0], 0))

    def get_feature_names(self, input_names=None) -> list[str]:
        """Names of the output columns, e.g. ``x0=cat`` (respects ``drop_first``)."""
        check_is_fitted(self, "categories_")
        if input_names is None:
            input_names = [f"x{j}" for j in range(self.n_features_in_)]
        if len(input_names) != self.n_features_in_:
            raise ValidationError(
                f"expected {self.n_features_in_} input names; got {len(input_names)}"
            )
        names = []
        for name, categories in zip(input_names, self.categories_):
            kept = categories[1:] if self.drop_first else categories
            names.extend(f"{name}={category}" for category in kept)
        return names
