"""``repro.obs`` — unified tracing, metrics and profiling.

The observability substrate of the stack: the fit plan
(:mod:`repro.core.plan`), the run ledger (:mod:`repro.store.ledger`), the
parallel executor (:mod:`repro.experiments.parallel`) and the serving
layer (:mod:`repro.serving.service`) all record here, so "where did that
7-second fit go?", "what fraction of this sweep was cached?" and "what is
serving p99?" have answers without rerunning under a profiler.

Three stdlib-only pieces:

* :mod:`~repro.obs.metrics` — a thread-safe :class:`MetricsRegistry`
  (counters, gauges, deterministic log-bucket histograms) plus a
  process-global default registry;
* :mod:`~repro.obs.trace` — nested :func:`span` tracing with monotonic
  timing and pluggable sinks (in-memory ring buffer, crash-safe JSONL
  appends), **zero-cost when no sink is attached**;
* :mod:`~repro.obs.export` — snapshot/summarize/render for the
  ``repro obs summary`` / ``repro obs tail`` CLI and the ``--metrics``
  flag.

Telemetry is observational only: nothing recorded here may feed task
digests or numerical results — tracing on and tracing off produce
bitwise-identical experiment outputs (the integration suite holds that).

Quickstart::

    from repro.obs import tracing, span, get_registry

    with tracing("run.jsonl"):
        with span("my.stage", gamma=0.5):
            ...
    # then: python -m repro obs summary run.jsonl
"""

from .metrics import Histogram, MetricsRegistry, get_registry, set_registry
from .trace import (
    JSONLSink,
    RingBufferSink,
    add_sink,
    attach_worker_sinks,
    emit_event,
    emit_metrics,
    jsonl_paths,
    remove_sink,
    set_sinks,
    sinks,
    span,
    trace_enabled,
    tracing,
)
from .export import (
    format_metrics,
    format_prometheus,
    format_trace_summary,
    read_trace,
    summarize_trace,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "JSONLSink",
    "RingBufferSink",
    "add_sink",
    "attach_worker_sinks",
    "emit_event",
    "emit_metrics",
    "jsonl_paths",
    "remove_sink",
    "set_sinks",
    "sinks",
    "span",
    "trace_enabled",
    "tracing",
    "format_metrics",
    "format_prometheus",
    "format_trace_summary",
    "read_trace",
    "summarize_trace",
]
