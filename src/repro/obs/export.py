"""Snapshot, summarize and render traces and metrics.

Two consumers share this module: the ``repro obs summary`` / ``repro obs
tail`` CLI (read a JSONL trace back into per-stage wall-time tables) and
the ``--metrics`` flag (render a registry snapshot as flat text).

A trace file interleaves three record types (see :mod:`repro.obs.trace`):
``span`` (one per timed region, from any process), ``event`` (point in
time) and ``metrics`` (a registry snapshot; the *last* one per pid wins,
and pids are summed — workers snapshot after every task precisely so
that rule yields their final state).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from ..exceptions import ValidationError

__all__ = [
    "format_metrics",
    "format_prometheus",
    "format_trace_summary",
    "read_trace",
    "summarize_trace",
]


def read_trace(path) -> list:
    """Parse a JSONL trace file into a list of record dicts.

    A torn final line (writer killed mid-append cannot happen with
    ``O_APPEND`` single writes, but a copy truncated in flight can) is
    tolerated; any *interior* unparsable line marks real corruption and
    raises, because silently dropping records would make summaries lie.
    """
    path = Path(path)
    if not path.is_file():
        raise ValidationError(f"trace file not found: {path}")
    records = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if number == len(lines) - 1:
                break  # torn tail from a truncated copy: drop it
            raise ValidationError(
                f"corrupt trace line {number + 1} in {path}: {exc}"
            ) from exc
        if isinstance(record, dict):
            records.append(record)
    return records


def _merged_metrics(records) -> dict:
    """Fold the metrics records: last snapshot per pid, summed across pids.

    Returns ``{"counters": {(name, labels-tuple): value}, "histograms":
    {(name, labels-tuple): summary-dict-with-summed count/sum}}``.
    """
    last_by_pid: dict = {}
    for record in records:
        if record.get("type") == "metrics":
            last_by_pid[record.get("pid")] = record.get("metrics", {})
    counters: dict = {}
    histograms: dict = {}
    for snapshot in last_by_pid.values():
        for entry in snapshot.get("counters", ()):
            key = (entry["name"], tuple(sorted(entry.get("labels", {}).items())))
            counters[key] = counters.get(key, 0.0) + float(entry["value"])
        for entry in snapshot.get("histograms", ()):
            key = (entry["name"], tuple(sorted(entry.get("labels", {}).items())))
            merged = histograms.setdefault(
                key, {"count": 0, "sum": 0.0, "max": 0.0}
            )
            merged["count"] += int(entry.get("count", 0))
            merged["sum"] += float(entry.get("sum", 0.0))
            merged["max"] = max(merged["max"], float(entry.get("max", 0.0)))
    return {"counters": counters, "histograms": histograms}


def _counter_total(counters: dict, name: str) -> float:
    return sum(value for (metric, _), value in counters.items() if metric == name)


def summarize_trace(records) -> dict:
    """Aggregate trace records into a JSON-safe summary.

    Returns::

        {
          "records": int, "spans": int, "processes": int,
          "stages": {name: {count, total_s, mean_s, max_s}},
          "cells": {"total", "cached", "computed"} | None,
          "ledger": {"hits", "misses", "lookups", "hit_rate",
                     "puts", "gets"} | None,
          "solve_cache": {"hits", "misses"} | None,
        }

    ``stages`` covers every span name; the fit-plan stage names
    (``plan.graph`` … ``plan.solve``) are what the acceptance table
    reads. ``cells`` comes from the last ``spec.run`` span's attributes —
    exact, by construction, because :func:`repro.experiments.run_spec`
    stamps its :class:`~repro.experiments.RunReport` counts there.
    """
    stages: dict = {}
    pids = set()
    n_spans = 0
    cells = None
    for record in records:
        pid = record.get("pid")
        if pid is not None:
            pids.add(pid)
        if record.get("type") != "span":
            continue
        n_spans += 1
        name = str(record.get("name", "?"))
        duration = float(record.get("duration_s", 0.0))
        stage = stages.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stage["count"] += 1
        stage["total_s"] += duration
        stage["max_s"] = max(stage["max_s"], duration)
        if name == "spec.run":
            attrs = record.get("attrs", {})
            if "total" in attrs:
                cells = {
                    "total": int(attrs.get("total", 0)),
                    "cached": int(attrs.get("cached", 0)),
                    "computed": int(attrs.get("computed", 0)),
                }
    for stage in stages.values():
        stage["mean_s"] = stage["total_s"] / stage["count"]

    merged = _merged_metrics(records)
    counters = merged["counters"]
    ledger = None
    hits = _counter_total(counters, "ledger.hits")
    misses = _counter_total(counters, "ledger.misses")
    if hits or misses:
        lookups = hits + misses
        ledger = {
            "hits": int(hits),
            "misses": int(misses),
            "lookups": int(lookups),
            "hit_rate": hits / lookups if lookups else 0.0,
            "puts": int(_counter_total(counters, "ledger.puts")),
            "gets": int(_counter_total(counters, "ledger.gets")),
        }
    solve_cache = None
    solve_hits = _counter_total(counters, "plan.solve_cache.hits")
    solve_misses = _counter_total(counters, "plan.solve_cache.misses")
    if solve_hits or solve_misses:
        solve_cache = {"hits": int(solve_hits), "misses": int(solve_misses)}

    return {
        "records": len(records),
        "spans": n_spans,
        "processes": len(pids),
        "stages": stages,
        "cells": cells,
        "ledger": ledger,
        "solve_cache": solve_cache,
    }


def format_trace_summary(summary: dict) -> str:
    """Flat-text rendering of :func:`summarize_trace` (the CLI table)."""
    from ..experiments.report import render_table

    lines = [
        f"{summary['records']} records, {summary['spans']} spans, "
        f"{summary['processes']} process(es)"
    ]
    if summary["stages"]:
        rows = [
            [
                name,
                stage["count"],
                f"{stage['total_s']:.6f}",
                f"{stage['mean_s']:.6f}",
                f"{stage['max_s']:.6f}",
            ]
            for name, stage in sorted(
                summary["stages"].items(),
                key=lambda item: -item[1]["total_s"],
            )
        ]
        lines.append(render_table(
            ["stage", "calls", "total_s", "mean_s", "max_s"], rows
        ))
    cells = summary.get("cells")
    if cells:
        lines.append(
            f"cells: {cells['total']} total — {cells['cached']} cached, "
            f"{cells['computed']} computed"
        )
    ledger = summary.get("ledger")
    if ledger:
        lines.append(
            f"ledger: {ledger['hits']}/{ledger['lookups']} lookups hit "
            f"({ledger['hit_rate']:.0%}), {ledger['puts']} puts"
        )
    solve = summary.get("solve_cache")
    if solve:
        lines.append(
            f"solve cache: {solve['hits']} hits, {solve['misses']} misses"
        )
    return "\n".join(lines)


_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, suffix: str = "") -> str:
    """A legal Prometheus metric name: ``repro_`` + sanitized + suffix."""
    return f"repro_{_PROM_BAD_CHARS.sub('_', str(name))}{suffix}"


def _prom_labels(labels: dict, extra: tuple = ()) -> str:
    """Render a label dict (plus extra (k, v) pairs) as ``{k="v",...}``."""
    items = [*sorted((str(k), str(v)) for k, v in labels.items()), *extra]
    if not items:
        return ""
    escaped = ",".join(
        key + '="'
        + value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        + '"'
        for key, value in items
    )
    return "{" + escaped + "}"


def format_prometheus(snapshot: dict) -> str:
    """Prometheus text-format rendering of a registry snapshot.

    This is what a serving replica's ``GET /metrics`` endpoint returns:
    counters become ``repro_<name>_total``, gauges map straight through,
    and the deterministic log-bucket histograms are exported as summaries
    (``quantile`` labels for p50/p90/p99 plus ``_count``/``_sum``), since
    their quantiles are already exact functions of the observed values.
    Series order follows the snapshot (sorted), so two scrapes of
    identical state are byte-identical.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(metric: str, kind: str) -> None:
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for entry in snapshot.get("counters", ()):
        metric = _prom_name(entry["name"], "_total")
        _type_line(metric, "counter")
        lines.append(f"{metric}{_prom_labels(entry['labels'])} {entry['value']:g}")
    for entry in snapshot.get("gauges", ()):
        metric = _prom_name(entry["name"])
        _type_line(metric, "gauge")
        lines.append(f"{metric}{_prom_labels(entry['labels'])} {entry['value']:g}")
    for entry in snapshot.get("histograms", ()):
        metric = _prom_name(entry["name"])
        _type_line(metric, "summary")
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            label_text = _prom_labels(
                entry["labels"], extra=(("quantile", quantile),)
            )
            lines.append(f"{metric}{label_text} {entry[key]:g}")
        label_text = _prom_labels(entry["labels"])
        lines.append(f"{metric}_count{label_text} {entry['count']:g}")
        lines.append(f"{metric}_sum{label_text} {entry['sum']:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def format_metrics(snapshot: dict) -> str:
    """Flat-text rendering of a :meth:`MetricsRegistry.snapshot`."""
    lines = []

    def _label_text(labels: dict) -> str:
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return "{" + inner + "}"

    for entry in snapshot.get("counters", ()):
        lines.append(
            f"counter {entry['name']}{_label_text(entry['labels'])} "
            f"= {entry['value']:g}"
        )
    for entry in snapshot.get("gauges", ()):
        lines.append(
            f"gauge {entry['name']}{_label_text(entry['labels'])} "
            f"= {entry['value']:g}"
        )
    for entry in snapshot.get("histograms", ()):
        lines.append(
            f"histogram {entry['name']}{_label_text(entry['labels'])} "
            f"count={entry['count']} sum={entry['sum']:.6f} "
            f"mean={entry['mean']:.6f} p50={entry['p50']:.6f} "
            f"p90={entry['p90']:.6f} p99={entry['p99']:.6f} "
            f"max={entry['max']:.6f}"
        )
    return "\n".join(lines) if lines else "(no metrics recorded)"
