"""Thread-safe metrics: counters, gauges, and streaming histograms.

One :class:`MetricsRegistry` holds every metric of a process (or of one
component — :class:`~repro.serving.TransformService` owns a private one so
two services never mix their latency distributions). Metrics are keyed by
``(name, sorted label items)``, so ``inc("ledger.hits", root="/a")`` and
``inc("ledger.hits", root="/b")`` are independent series that
:meth:`MetricsRegistry.total` can still sum.

Histograms use **fixed log-spaced buckets** (16 per decade from 100 ns to
1000 s), so their quantile estimates are a pure function of the observed
values — deterministic across runs, machines and thread interleavings,
unlike reservoir sampling. p50/p90/p99 are read off the cumulative bucket
counts with log-linear interpolation inside the crossing bucket; the
exact ``count``/``sum``/``min``/``max`` are tracked alongside (the sum
Kahan-compensated, so a million tiny latencies don't drift the way the
old ``seconds += dt`` serving counter did).

Everything here is stdlib-only and cheap: one lock acquisition plus a
dict lookup per operation. Telemetry must never feed digests or results —
registries deliberately have no ``__hash__`` hook into the store layer.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

# 16 buckets per decade spanning 1e-7 s .. 1e3 s: fine enough that the
# log-interpolated p99 of a unimodal latency distribution lands within
# ~15% of the true value, coarse enough that a histogram is 161 ints.
_BUCKETS_PER_DECADE = 16
_LOW_EXP = -7
_HIGH_EXP = 3
_N_BUCKETS = (_HIGH_EXP - _LOW_EXP) * _BUCKETS_PER_DECADE

#: Upper bound of bucket ``i`` (the last bucket is an overflow catch-all).
_BOUNDS = tuple(
    10.0 ** (_LOW_EXP + (i + 1) / _BUCKETS_PER_DECADE)
    for i in range(_N_BUCKETS)
)


def _bucket_index(value: float) -> int:
    """Deterministic bucket for ``value`` (clamped to the edge buckets)."""
    if value <= _BOUNDS[0]:
        return 0
    if value >= _BOUNDS[-1]:
        return _N_BUCKETS  # overflow bucket
    # log10(value) in [_LOW_EXP, _HIGH_EXP); ceil to the first bound >= value.
    position = (math.log10(value) - _LOW_EXP) * _BUCKETS_PER_DECADE
    index = int(math.ceil(position)) - 1
    # Guard float rounding at bucket edges: the invariant is
    # _BOUNDS[index-1] < value <= _BOUNDS[index].
    while index > 0 and value <= _BOUNDS[index - 1]:
        index -= 1
    while value > _BOUNDS[index]:
        index += 1
    return index


class Histogram:
    """Streaming log-bucket histogram of non-negative observations.

    Not thread-safe on its own — the owning :class:`MetricsRegistry`
    serializes access under its lock.
    """

    __slots__ = ("counts", "count", "_sum", "_comp", "min", "max")

    def __init__(self):
        self.counts = [0] * (_N_BUCKETS + 1)
        self.count = 0
        self._sum = 0.0
        self._comp = 0.0  # Kahan compensation term
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0 or value != value:  # negative or NaN: clamp to zero
            value = 0.0
        self.counts[_bucket_index(value)] += 1
        self.count += 1
        # Kahan summation: exact-ish total even for many tiny latencies.
        y = value - self._comp
        t = self._sum + y
        self._comp = (t - self._sum) - y
        self._sum = t
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate from the bucket counts.

        Log-linear interpolation inside the bucket where the cumulative
        count crosses ``q * count``; exact ``min``/``max`` are used for
        q=0/q=1 and to clip the estimate, so a single-value histogram
        reports that value for every quantile.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lower = _BOUNDS[index - 1] if index > 0 else _BOUNDS[0] / 10.0
                upper = _BOUNDS[index] if index < _N_BUCKETS else self.max
                if upper <= lower:
                    estimate = upper
                else:
                    fraction = (target - previous) / bucket_count
                    estimate = lower * (upper / lower) ** fraction
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def summary(self) -> dict:
        """JSON-safe summary: count, sum, mean, min/max, p50/p90/p99."""
        count = self.count
        return {
            "count": count,
            "sum": self._sum,
            "mean": self._sum / count if count else 0.0,
            "min": self.min if count else 0.0,
            "max": self.max if count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


def _key(name: str, labels: dict) -> tuple:
    return (str(name), tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class MetricsRegistry:
    """Thread-safe home for counters, gauges and histograms.

    Every operation takes the metric ``name`` plus free-form ``labels``;
    distinct label sets are distinct series. All methods are safe to call
    from many threads — the concurrency suite holds N threads × M
    increments to exact totals.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # ------------------------------------------------------------- writes
    def inc(self, name: str, value: float = 1.0, /, **labels) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, /, **labels) -> None:
        """Record one observation into the histogram ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    # -------------------------------------------------------------- reads
    def counter_value(self, name: str, /, **labels) -> float:
        """Current value of one counter series (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, /, **labels) -> float | None:
        """Current value of one gauge series (None if never set)."""
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_summary(self, name: str, /, **labels) -> dict:
        """Summary dict of one histogram series (zeros if never observed)."""
        with self._lock:
            histogram = self._histograms.get(_key(name, labels))
            return histogram.summary() if histogram else Histogram().summary()

    def total(self, name: str) -> float:
        """Sum of a counter across *all* of its label sets."""
        name = str(name)
        with self._lock:
            return sum(
                value for (metric, _labels), value in self._counters.items()
                if metric == name
            )

    # ---------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Drop every series (tests and CLI runs scope metrics with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """JSON-safe snapshot of every series.

        ``{"counters": [{name, labels, value}], "gauges": [...],
        "histograms": [{name, labels, **summary}]}`` — label items sorted,
        series sorted by (name, labels), so two snapshots of identical
        state serialize identically.
        """
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            histograms = [
                {"name": name, "labels": dict(labels), **hist.summary()}
                for (name, labels), hist in sorted(self._histograms.items())
            ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: Process-global default registry: the library's built-in instrumentation
#: (fit plan, run ledger, executor) records here unless told otherwise.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
