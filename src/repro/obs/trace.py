"""Nested span tracing with pluggable sinks.

A *span* is one timed region of work::

    from repro.obs import span

    with span("plan.solve", gamma=0.5) as s:
        ...            # monotonic-clock timed
        s.set(d=8)     # attach attributes mid-flight

Spans nest: each thread keeps its own stack, so a span opened inside
another records the outer span's id as ``parent_id`` and a trace viewer
can rebuild the call tree. Records go to every attached *sink*:

* :class:`RingBufferSink` — the last N records in memory, for tests and
  live inspection;
* :class:`JSONLSink` — one JSON object per line, appended with a single
  ``os.write`` to an ``O_APPEND`` descriptor. POSIX append semantics make
  each line land whole, so concurrent worker *processes* writing the same
  file never interleave corrupt lines, and a crash loses at most the
  record in flight — the append-side analogue of
  :func:`repro.io.atomic_write`.

**Zero cost when off.** :func:`span` checks the sink list first and
returns one shared no-op context manager when tracing is disabled — the
hot paths of the fit plan, the ledger and the serving layer pay a global
load, a truth test and a constant return. Tracing must never influence
results: span records carry wall-clock and pid fields that would poison
content digests, so telemetry is forbidden (by construction — nothing in
:mod:`repro.store.digests` can see it) from feeding task digests.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "JSONLSink",
    "RingBufferSink",
    "add_sink",
    "attach_worker_sinks",
    "emit_event",
    "emit_metrics",
    "jsonl_paths",
    "remove_sink",
    "set_sinks",
    "sinks",
    "span",
    "trace_enabled",
    "tracing",
]

#: Trace record schema version, stamped on every record.
_TRACE_FORMAT = 1


class RingBufferSink:
    """Keep the last ``capacity`` records in memory."""

    def __init__(self, capacity: int = 4096):
        self._records: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> list:
        """Snapshot of the buffered records, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def close(self) -> None:
        pass


class JSONLSink:
    """Append records to a JSONL file, one whole line per ``os.write``.

    The descriptor is opened lazily with ``O_APPEND`` and each record is
    serialized to a single line written in one call — the kernel applies
    appends atomically, so records from concurrent processes and threads
    never shear into each other. ``sort_keys`` keeps lines byte-stable
    for identical records.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fd: int | None = None
        self._lock = threading.Lock()

    def _descriptor(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666
            )
        return self._fd

    def emit(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            os.write(self._descriptor(), line.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


# -- sink management --------------------------------------------------------
#
# The sink list is the tracing on/off switch: an empty tuple means off, and
# span() bails before building any record. Stored as an immutable tuple so
# readers never see a half-updated list; mutations swap the whole tuple
# under a lock.

_SINKS: tuple = ()
_SINKS_LOCK = threading.Lock()


def trace_enabled() -> bool:
    """Whether any sink is attached (the hot-path guard)."""
    return bool(_SINKS)


def sinks() -> tuple:
    """The attached sinks (immutable snapshot)."""
    return _SINKS


def add_sink(sink) -> None:
    """Attach a sink; tracing turns on with the first one."""
    global _SINKS
    with _SINKS_LOCK:
        _SINKS = _SINKS + (sink,)


def remove_sink(sink) -> None:
    """Detach one sink (no error if it was never attached)."""
    global _SINKS
    with _SINKS_LOCK:
        _SINKS = tuple(s for s in _SINKS if s is not sink)


def set_sinks(new_sinks) -> None:
    """Replace the whole sink set (worker initialization uses this)."""
    global _SINKS
    with _SINKS_LOCK:
        _SINKS = tuple(new_sinks)


def jsonl_paths() -> tuple:
    """Paths of the attached JSONL sinks — the worker-propagable config."""
    return tuple(str(s.path) for s in _SINKS if isinstance(s, JSONLSink))


def attach_worker_sinks(paths) -> None:
    """Point this (worker) process's tracing at the parent's JSONL files.

    Replaces any inherited sinks with fresh ``O_APPEND`` descriptors —
    ring buffers cannot cross processes, and a forked descriptor is
    better reopened than shared. No-op config (empty ``paths``) turns
    tracing off in the worker.
    """
    set_sinks(JSONLSink(path) for path in paths)


def _emit(record: dict) -> None:
    for sink in _SINKS:
        sink.emit(record)


# -- spans ------------------------------------------------------------------

_IDS = itertools.count(1)
_STACK = threading.local()


def _parent_id() -> str | None:
    stack = getattr(_STACK, "spans", None)
    return stack[-1] if stack else None


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One in-flight traced region; created by :func:`span`."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start", "_ts")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = f"{os.getpid():x}-{next(_IDS):x}"
        self.parent_id = None
        self._start = 0.0
        self._ts = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)

    def __enter__(self):
        self.parent_id = _parent_id()
        stack = getattr(_STACK, "spans", None)
        if stack is None:
            stack = _STACK.spans = []
        stack.append(self.span_id)
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._start
        stack = getattr(_STACK, "spans", None)
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "format": _TRACE_FORMAT,
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self._ts,
            "duration_s": duration,
            "pid": os.getpid(),
            "status": "error" if exc_type is not None else "ok",
        }
        if self.attrs:
            record["attrs"] = self.attrs
        _emit(record)
        return False


def span(name: str, /, **attrs):
    """Open a traced region; returns a context manager.

    With no sink attached this is a near-free no-op (shared null context
    manager); with sinks, the region is timed on the monotonic clock and
    one ``span`` record is emitted at exit, ``status="error"`` if the
    body raised.
    """
    if not _SINKS:
        return _NULL_SPAN
    return Span(str(name), attrs)


# -- non-span records -------------------------------------------------------

def emit_event(name: str, /, **attrs) -> None:
    """Emit a point-in-time ``event`` record (no duration)."""
    if not _SINKS:
        return
    _emit(
        {
            "format": _TRACE_FORMAT,
            "type": "event",
            "name": str(name),
            "ts": time.time(),
            "pid": os.getpid(),
            "attrs": attrs,
        }
    )


def emit_metrics(registry=None) -> None:
    """Emit a ``metrics`` record snapshotting a registry.

    Workers emit one after each task and the traced-CLI wrapper emits one
    at exit; consumers (``repro obs summary``) keep the *last* record per
    pid and sum across pids, so repeated snapshots overwrite rather than
    double-count.
    """
    if not _SINKS:
        return
    from .metrics import get_registry

    registry = registry if registry is not None else get_registry()
    _emit(
        {
            "format": _TRACE_FORMAT,
            "type": "metrics",
            "ts": time.time(),
            "pid": os.getpid(),
            "metrics": registry.snapshot(),
        }
    )


@contextmanager
def tracing(path, *, metrics: bool = True, registry=None):
    """Trace a block to a JSONL file (what the CLI ``--trace`` flag uses).

    Attaches a :class:`JSONLSink` on entry; on exit emits one final
    ``metrics`` record (so the trace is self-contained: spans *and* the
    counters/histograms they fed) and detaches the sink.
    """
    sink = JSONLSink(path)
    add_sink(sink)
    try:
        yield sink
    finally:
        try:
            if metrics:
                emit_metrics(registry)
        finally:
            remove_sink(sink)
            sink.close()
