"""Serving layer: model registry + high-throughput batched transforms.

The paper's deployability claim (§3.3) is that a fitted PFR maps unseen
individuals into the fair representation with no pairwise judgments at
test time — i.e. the fitted map is the artifact you put behind an online
service. This package operationalizes that claim:

* :class:`ModelRegistry` — versioned on-disk storage of fitted estimators
  (``register`` / resolve ``name@version`` / ``promote``) with manifests
  recording model type, hyper-parameters, library version, and input schema.
* :class:`BatchTransformer` / :class:`MicroBatcher` — bulk chunking and
  online request coalescing so throughput is bounded by the matmul, not
  per-row python overhead.
* :class:`LRUCache` — digest-keyed result cache for heavy-tailed traffic.
* :class:`TransformService` — the thread-safe façade tying the above
  together, with hit/miss/latency counters.
* :class:`ServingServer` — a stdlib asyncio HTTP front end over one
  shared service replica (``POST /transform``, model list/show/promote,
  ``/healthz``, Prometheus ``/metrics``), with bounded queues and
  per-request timeouts so overload degrades to 429/503; also the
  ``python -m repro serve`` CLI.

Quickstart::

    from repro.serving import ModelRegistry, TransformService

    registry = ModelRegistry("models/")
    registry.register("pfr-admissions", fitted_pfr)

    service = TransformService(registry)
    Z = service.transform("pfr-admissions@latest", X_new)
"""

from .batching import BatchTransformer, MicroBatcher
from .cache import LRUCache, matrix_digests, row_digest
from .http import ServingServer
from .registry import ModelRecord, ModelRegistry
from .service import TransformService

__all__ = [
    "BatchTransformer",
    "MicroBatcher",
    "LRUCache",
    "row_digest",
    "matrix_digests",
    "ModelRecord",
    "ModelRegistry",
    "ServingServer",
    "TransformService",
]
