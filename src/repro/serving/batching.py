"""Request batching for the transform service.

Two complementary batchers live here:

* :class:`BatchTransformer` — synchronous bulk path. One huge matrix is
  transformed in bounded-size chunks so peak memory stays
  ``O(chunk_size · max(m, d))`` instead of ``O(n · (m + d))`` for the
  intermediate buffers some transformers allocate (KernelPFR materializes
  an ``(n, n_train)`` kernel block, for example).
* :class:`MicroBatcher` — online path. Concurrent single-row ``transform``
  requests are coalesced by a background worker into one vectorized
  ``X @ V`` product, amortizing python/validation overhead across the
  batch. This is the classic inference-serving trick: per-row model calls
  are dominated by fixed overhead, so batching multiplies throughput
  without hurting tail latency more than ``max_wait``.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from ..exceptions import ValidationError

__all__ = ["BatchTransformer", "MicroBatcher"]


class BatchTransformer:
    """Chunked synchronous transform over an arbitrary fitted transformer.

    Parameters
    ----------
    model:
        Any fitted object exposing ``transform(X) -> ndarray``.
    chunk_size:
        Maximum number of rows passed to ``model.transform`` at once.
        Inputs at or below this size are forwarded in a single call.
    """

    def __init__(self, model, chunk_size: int = 8192):
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1; got {chunk_size}")
        self.model = model
        self.chunk_size = chunk_size

    def transform(self, X) -> np.ndarray:
        """Transform ``X`` chunk by chunk and concatenate the results."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional; got ndim={X.ndim}")
        n = X.shape[0]
        if n <= self.chunk_size:
            return np.asarray(self.model.transform(X))
        pieces = [
            np.asarray(self.model.transform(X[start:start + self.chunk_size]))
            for start in range(0, n, self.chunk_size)
        ]
        return np.concatenate(pieces, axis=0)


class _Request:
    """One pending single-row transform awaiting its batch."""

    __slots__ = ("row", "result", "error", "done")

    def __init__(self, row: np.ndarray):
        self.row = row
        self.result = None
        self.error = None
        self.done = threading.Event()


class MicroBatcher:
    """Coalesce concurrent single-row requests into vectorized transforms.

    A dedicated worker thread drains a queue: it blocks for the first
    request, then gathers more until either ``max_batch_size`` rows are in
    hand or ``max_wait`` seconds have elapsed since the batch opened, and
    finally runs one vectorized ``transform`` over the stacked rows.
    Results (or the batch's exception) are fanned back out to the blocked
    callers.

    Use as a context manager, or call :meth:`close` explicitly::

        with MicroBatcher(model.transform) as batcher:
            z = batcher.submit(x_row)       # blocks until the batch runs

    Parameters
    ----------
    transform_fn:
        Callable mapping a 2-D float matrix ``(b, m)`` to ``(b, d)``.
    max_batch_size:
        Upper bound on rows per vectorized call.
    max_wait:
        Seconds the worker waits for the batch to fill before flushing a
        partial batch. Bounds the latency a lone request pays for batching.
    n_features:
        Expected row width. When set, :meth:`submit` rejects wrong-width
        rows immediately — otherwise one bad row would make ``np.stack``
        fail for the whole coalesced batch, poisoning every concurrent
        caller that happened to share it.
    """

    def __init__(self, transform_fn, *, max_batch_size: int = 256,
                 max_wait: float = 0.002, n_features: int | None = None):
        if max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1; got {max_batch_size}"
            )
        if max_wait < 0:
            raise ValidationError(f"max_wait must be >= 0; got {max_wait}")
        self.transform_fn = transform_fn
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.n_features = n_features
        self._queue: queue.Queue[_Request | None] = queue.Queue()
        self._closed = False
        self._worker_error: BaseException | None = None
        # Makes the closed-check + enqueue atomic against close(): without
        # it a submit could slip its request onto the queue after the
        # shutdown sentinel and block forever on an event nobody will set.
        self._submit_lock = threading.Lock()
        self._n_batches = 0
        self._n_rows = 0
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------- client
    def submit(self, row) -> np.ndarray:
        """Block until ``row`` has been transformed; return its representation."""
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValidationError(
                f"submit expects a single 1-D feature row; got ndim={row.ndim}"
            )
        if self.n_features is not None and row.shape[0] != self.n_features:
            raise ValidationError(
                f"schema mismatch: row has {row.shape[0]} features but this "
                f"batcher expects {self.n_features}"
            )
        request = _Request(row)
        with self._submit_lock:
            if self._closed:
                if self._worker_error is not None:
                    raise ValidationError(
                        "MicroBatcher is closed: its worker died on "
                        f"{type(self._worker_error).__name__}: "
                        f"{self._worker_error}"
                    )
                raise ValidationError("MicroBatcher is closed")
            self._queue.put(request)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def close(self) -> None:
        """Stop the worker after draining in-flight requests. Idempotent."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)  # sentinel wakes the worker for shutdown
        self._worker.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    @property
    def stats(self) -> dict:
        """Batching effectiveness: batches flushed, rows, mean batch size."""
        batches, rows = self._n_batches, self._n_rows
        return {
            "n_batches": batches,
            "n_rows": rows,
            "mean_batch_size": rows / batches if batches else 0.0,
        }

    # ------------------------------------------------------------- worker
    def _gather(self) -> list[_Request] | None:
        """Collect the next batch; ``None`` means shutdown."""
        first = self._queue.get()
        if first is None:
            return None
        batch = [first]
        deadline = time.monotonic() + self.max_wait
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                # Re-enqueue the sentinel so the next _gather sees it after
                # this (final) batch has been flushed.
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _abort(self, cause: BaseException) -> None:
        """Mark the batcher dead and fail every queued request.

        Runs (on the worker thread) when the worker is about to die on a
        ``BaseException``. Holding ``_submit_lock`` across the close-mark
        *and* the queue drain means no ``submit`` can slip a request in
        between: it either enqueued before (and is drained and failed
        here) or checks ``_closed`` after (and raises immediately).
        """
        with self._submit_lock:
            self._closed = True
            self._worker_error = cause
            while True:
                try:
                    pending = self._queue.get_nowait()
                except queue.Empty:
                    break
                if pending is None:
                    continue  # shutdown sentinel from a concurrent close()
                pending.error = ValidationError(
                    "MicroBatcher worker died before serving this request "
                    f"({type(cause).__name__}: {cause})"
                )
                pending.done.set()

    def _run(self) -> None:
        while True:
            batch = self._gather()
            if batch is None:
                return
            try:
                stacked = np.stack([request.row for request in batch])
                results = np.asarray(self.transform_fn(stacked))
                if results.shape[0] != len(batch):
                    raise ValidationError(
                        f"transform_fn returned {results.shape[0]} rows for a "
                        f"batch of {len(batch)}"
                    )
                for request, result in zip(batch, results):
                    # Copy: a row view would pin the whole (b, d) batch
                    # array in memory for as long as any caller keeps its
                    # single-row result.
                    request.result = np.array(result)
            except BaseException as exc:  # fan the failure out to every caller
                # BaseException included: a KeyboardInterrupt/SystemExit
                # landing inside transform_fn used to escape this handler,
                # leaving the batch's callers a None result and — because
                # the worker thread died — every *future* submit() parked
                # forever on done.wait(). Now the batch still gets the
                # error, the batcher is marked closed with the queue
                # drained, and submit() raises instead of hanging.
                for request in batch:
                    request.error = exc
                if not isinstance(exc, Exception):
                    # The worker cannot survive a BaseException; die quietly
                    # (the exception already reached every caller via
                    # request.error, so re-raising would only spam the
                    # threading excepthook) after failing the queue.
                    self._abort(exc)
                    return
            finally:
                self._n_batches += 1
                self._n_rows += len(batch)
                for request in batch:
                    request.done.set()
