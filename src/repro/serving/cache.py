"""LRU result cache for the transform service.

Production traffic to a fairness-representation service is heavy-tailed:
the same individuals (active users, repeat applicants) are looked up far
more often than cold ones. Because a fitted transformer is a pure function
of its input row, the projected representation can be cached by a digest of
the raw feature vector and served without touching the matmul at all.

The cache is a plain ordered-dict LRU guarded by a lock — safe to share
between the micro-batcher worker thread and synchronous callers.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..exceptions import ValidationError

__all__ = ["LRUCache", "row_digest", "matrix_digests"]


def row_digest(row) -> bytes:
    """Stable digest of one feature row.

    The row is canonicalized to contiguous float64 before hashing so that
    logically equal inputs (lists, float32 views, non-contiguous slices)
    collide on purpose. blake2b is used for speed; 16 bytes of digest keep
    accidental collisions at the ``2^-64`` level, far below any numerical
    concern.
    """
    canonical = np.ascontiguousarray(row, dtype=np.float64)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(canonical.tobytes())
    return hasher.digest()


def matrix_digests(X: np.ndarray) -> list[bytes]:
    """Per-row digests of a 2-D matrix (one :func:`row_digest` per row)."""
    canonical = np.ascontiguousarray(X, dtype=np.float64)
    if canonical.ndim != 2:
        raise ValidationError(
            f"matrix_digests expects a 2-D matrix; got ndim={canonical.ndim}"
        )
    view = canonical.view(np.uint8).reshape(canonical.shape[0], -1)
    hasher = hashlib.blake2b
    return [hasher(row.tobytes(), digest_size=16).digest() for row in view]


def _frozen_copy(value):
    """Defensive, read-only copy of an array value (non-arrays pass through).

    ``put`` must not keep an alias into caller-owned memory: a caller that
    keeps mutating the array it inserted would silently corrupt the cache
    for every later request. The stored copy is marked non-writeable so
    the read-only contract survives round-trips.
    """
    if isinstance(value, np.ndarray):
        value = np.array(value)
        value.setflags(write=False)
    return value


def _readonly_view(value):
    """Read-only view of a cached array value (non-arrays pass through).

    ``get`` must not hand out the stored array itself: a caller mutating
    its result would corrupt the entry for every later hit. A view of the
    non-writeable stored copy cannot be flipped writeable (numpy refuses
    when the base is read-only), so caller mutation raises ``ValueError``
    instead of corrupting shared state — and no per-hit data copy is paid.
    """
    if isinstance(value, np.ndarray):
        return value.view()
    return value


class LRUCache:
    """Thread-safe least-recently-used cache with hit/miss accounting.

    Array values are stored as defensive read-only copies and served as
    read-only views: neither the inserting caller (by mutating its source
    array) nor a reading caller (by mutating a returned row) can alter a
    cached entry — attempted writes to a returned row raise ``ValueError``.

    Parameters
    ----------
    max_size:
        Maximum number of entries retained; the least recently *used*
        (read or written) entry is evicted first. ``max_size=0`` disables
        caching entirely (every lookup misses, nothing is stored).
    """

    def __init__(self, max_size: int = 100_000):
        if max_size < 0:
            raise ValidationError(f"max_size must be >= 0; got {max_size}")
        self.max_size = max_size
        self._entries: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: bytes):
        """Return the cached value (read-only) or ``None``.

        Updates recency and counters. Array values come back as read-only
        views — mutating one raises instead of corrupting the cache.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return _readonly_view(value)

    def put(self, key: bytes, value) -> None:
        """Insert/refresh an entry, evicting the oldest beyond ``max_size``.

        Array values are copied defensively; later mutation of the
        caller's array cannot alter the stored entry.
        """
        if self.max_size == 0:
            return
        value = _frozen_copy(value)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)

    def get_many(self, keys) -> list:
        """Vector lookup: one lock acquisition for a whole batch of keys.

        Hits come back read-only, exactly like :meth:`get`.
        """
        with self._lock:
            out = []
            for key in keys:
                value = self._entries.get(key)
                if value is None:
                    self._misses += 1
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    value = _readonly_view(value)
                out.append(value)
            return out

    def put_many(self, pairs) -> None:
        """Vector insert: one lock acquisition for a batch of (key, value).

        Array values are copied defensively, exactly like :meth:`put`.
        """
        if self.max_size == 0:
            return
        # Copy outside the lock: the copies are per-pair private work and
        # the generator's cost should not extend the critical section.
        frozen = [(key, _frozen_copy(value)) for key, value in pairs]
        with self._lock:
            for key, value in frozen:
                self._entries[key] = value
                self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def info(self) -> dict:
        """Counters snapshot: size, capacity, hits, misses, hit_rate."""
        with self._lock:
            hits, misses = self._hits, self._misses
            size = len(self._entries)
        total = hits + misses
        return {
            "size": size,
            "max_size": self.max_size,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }
