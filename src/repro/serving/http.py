"""Asyncio HTTP front end for :class:`~repro.serving.TransformService`.

This is the step from "library" to "service": everything in
:mod:`repro.serving` used to be in-process, which caps a fitted PFR at one
python process per consumer. :class:`ServingServer` puts the existing
thread-safe :class:`~repro.serving.service.TransformService` behind a
stdlib-only HTTP/1.1 server so any client on the network can transform
rows, inspect the registry, and roll model versions forward or back.

Architecture
------------
One asyncio event loop owns the sockets: it accepts connections, parses
requests (keep-alive supported — the benchmark's persistent connections
depend on it) and writes responses. Request *work* — matmuls, registry
reads, promotion — runs on a pool of ``n_workers`` threads sharing one
read-only ``TransformService`` replica, so the loop never blocks on a
transform and slow requests cannot starve accepts.

Overload degrades, never balloons:

* request bodies above ``max_body_bytes`` are rejected with **413**
  before being read into memory;
* at most ``max_queue`` requests are admitted concurrently (running +
  queued); the excess is refused immediately with **429**;
* a request that exceeds ``request_timeout`` seconds answers **503**
  (its worker thread finishes in the background — the client just stops
  waiting);
* malformed JSON, schema mismatches and wrong shapes map to **400**,
  unknown models/versions to **404**.

Hot swap: ``name`` / ``name@latest`` specs re-resolve through the
registry on *every* request, so ``POST /models/<name>/promote`` takes
effect for the next request while in-flight requests drain on the version
they already resolved — the versioned transform API guarantees each
response's ``model`` label and rows come from a single resolution, never
a torn mix.

Endpoints (all JSON unless noted)::

    POST /transform                  {"model": spec, "row": [...]} or
                                     {"model": spec, "rows": [[...], ...]}
    GET  /models                     registered models (latest each)
    GET  /models/<spec>              one record, all versions
    POST /models/<name>/promote      {"version": N} -> record
    GET  /drift                      per-model drift snapshots
    GET  /healthz                    {"status": "ok", ...}   (never queued)
    GET  /metrics                    Prometheus text format  (never queued)

Lifecycle: construct the shared service with ``drift=True`` and
``GET /drift`` reports each warm model's windowed fidelity statistics
(see :class:`repro.lifecycle.DriftMonitor`). An optional
``refresh_hook`` — any zero-argument callable, typically wrapping a
:class:`repro.lifecycle.LifecycleController` — runs on a background
thread every ``refresh_interval`` seconds while the server is up; a
hook that registers + promotes a refreshed version takes effect on the
next request through the existing hot-swap path, no restart.

Run it from the CLI (``python -m repro serve --registry DIR``) or embed::

    from repro.serving import ModelRegistry, ServingServer, TransformService

    service = TransformService(ModelRegistry("models/"))
    with ServingServer(service, port=8321) as server:
        ...  # server.url -> "http://127.0.0.1:8321"
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import unquote

import numpy as np

from ..exceptions import ValidationError
from ..obs.export import format_prometheus
from ..obs.trace import span, trace_enabled
from .service import TransformService

__all__ = ["ServingServer"]

#: Maximum bytes in one request/header line (start_server's stream limit).
_LINE_LIMIT = 64 * 1024
_MAX_HEADERS = 100
#: Seconds a keep-alive connection may sit idle before the server closes it.
_IDLE_TIMEOUT = 300.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """A request failure with a definite HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _json_bytes(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def _validation_status(exc: ValidationError) -> int:
    """Map a service/registry ValidationError to 404 (unknown) or 400."""
    message = str(exc)
    if (
        "unknown model" in message
        or "has no version" in message
        or "has no promoted version" in message
    ):
        return 404
    return 400


def _record_json(record) -> dict:
    """JSON view of a :class:`~repro.serving.registry.ModelRecord`."""
    return {
        "name": record.name,
        "version": record.version,
        "spec": record.spec,
        "model_type": record.model_type,
        "library_version": record.library_version,
        "n_features_in": record.n_features_in,
        "excluded_columns": list(record.excluded_columns),
        "landmarks": record.landmarks,
        "params": record.params,
        "stage_digests": dict(record.stage_digests),
        "created_at": record.created_at,
        "is_latest": record.is_latest,
    }


def _parse_json_body(body: bytes) -> dict:
    if not body:
        raise _HttpError(400, "request body must be a JSON object")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise _HttpError(400, "request body must be a JSON object")
    return payload


def _numeric_array(value, *, ndim: int, field: str) -> np.ndarray:
    """Coerce a JSON value to a float array of the expected rank, or 400."""
    try:
        array = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise _HttpError(
            400, f"{field!r} must be numeric: {exc}"
        ) from exc
    if array.ndim != ndim or array.size == 0 and ndim == 2:
        shape = "a flat array of numbers" if ndim == 1 else (
            "a non-empty array of equal-length number arrays"
        )
        raise _HttpError(400, f"{field!r} must be {shape}")
    return array


class ServingServer:
    """Stdlib asyncio HTTP server over one shared ``TransformService``.

    Parameters
    ----------
    service:
        The :class:`TransformService` replica every worker shares, or a
        registry/path handed to one.
    host, port:
        Bind address. ``port=0`` picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    n_workers:
        Threads executing request work off the event loop.
    max_queue:
        Bound on concurrently admitted requests (running + waiting for a
        worker). Excess requests are refused with 429 instead of queueing
        unboundedly.
    max_body_bytes:
        Request bodies above this answer 413 before the body is read.
    request_timeout:
        Seconds before an admitted request answers 503.
    refresh_hook:
        Optional zero-argument callable run every ``refresh_interval``
        seconds on a dedicated background thread (started with the
        server, stopped with it). Exceptions are swallowed into the
        ``http.refresh_hook_errors`` counter — a broken hook must never
        take serving down.
    refresh_interval:
        Seconds between ``refresh_hook`` invocations.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        n_workers: int = 8,
        max_queue: int = 512,
        max_body_bytes: int = 8 * 1024 * 1024,
        request_timeout: float = 30.0,
        refresh_hook=None,
        refresh_interval: float = 30.0,
    ):
        if not isinstance(service, TransformService):
            service = TransformService(service)
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1; got {n_workers}")
        if max_queue < 1:
            raise ValidationError(f"max_queue must be >= 1; got {max_queue}")
        if max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1; got {max_body_bytes}"
            )
        if request_timeout <= 0:
            raise ValidationError(
                f"request_timeout must be > 0; got {request_timeout}"
            )
        if refresh_hook is not None and not callable(refresh_hook):
            raise ValidationError(
                f"refresh_hook must be callable; got {type(refresh_hook).__name__}"
            )
        if refresh_interval <= 0:
            raise ValidationError(
                f"refresh_interval must be > 0; got {refresh_interval}"
            )
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self.n_workers = int(n_workers)
        self.max_queue = int(max_queue)
        self.max_body_bytes = int(max_body_bytes)
        self.request_timeout = float(request_timeout)
        self.refresh_hook = refresh_hook
        self.refresh_interval = float(refresh_interval)
        self._refresh_thread: threading.Thread | None = None
        self._refresh_stop: threading.Event | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._bound_port: int | None = None
        self._inflight = 0  # touched only on the event-loop thread

    # ---------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._bound_port is None:
            return self._requested_port
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServingServer":
        """Bind the socket and serve from a background thread; returns self."""
        if self._thread is not None:
            raise ValidationError("ServingServer is already running")
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-http"
        )
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        startup_error: list[BaseException] = []

        def _main() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._open())
            except BaseException as exc:  # bind failure -> re-raised in start()
                startup_error.append(exc)
                ready.set()
                return
            ready.set()
            try:
                self._loop.run_forever()
            finally:
                self._loop.run_until_complete(self._shutdown())
                self._loop.close()

        self._thread = threading.Thread(
            target=_main, name="repro-http-loop", daemon=True
        )
        self._thread.start()
        ready.wait()
        if startup_error:
            self._thread.join()
            self._pool.shutdown(wait=False)
            self._thread = self._loop = self._pool = None
            raise startup_error[0]
        if self.refresh_hook is not None:
            self._refresh_stop = threading.Event()
            self._refresh_thread = threading.Thread(
                target=self._refresh_loop, name="repro-http-refresh", daemon=True
            )
            self._refresh_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, tear down connections and workers. Idempotent."""
        if self._thread is None:
            return
        if self._refresh_thread is not None:
            self._refresh_stop.set()
            self._refresh_thread.join()
            self._refresh_thread = self._refresh_stop = None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._thread = self._loop = self._server = self._pool = None
        self._bound_port = None

    def _refresh_loop(self) -> None:
        """Run ``refresh_hook`` every ``refresh_interval`` s until close()."""
        while not self._refresh_stop.wait(self.refresh_interval):
            try:
                self.refresh_hook()
            except Exception:
                self.service.metrics.inc("http.refresh_hook_errors")

    def serve_forever(self) -> None:
        """Blocking serve (the CLI path); Ctrl-C shuts down cleanly."""
        self.start()
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def __enter__(self) -> "ServingServer":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def _open(self) -> None:
        self._server = await asyncio.start_server(
            self._client_connected,
            self.host,
            self._requested_port,
            limit=_LINE_LIMIT,
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        current = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not current]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # --------------------------------------------------------- connection
    async def _client_connected(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Protocol-level failure: answer if the socket still
                    # works, then drop the connection (its framing is gone).
                    await self._write_response(
                        writer, exc.status, "application/json",
                        _json_bytes({"error": exc.message}), keep_alive=False,
                    )
                    return
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    ValueError,
                ):
                    return  # idle timeout, client hangup or oversized line
                if request is None:
                    return  # clean EOF between requests
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                status, content_type, payload = await self._dispatch(
                    method, path, body
                )
                await self._write_response(
                    writer, status, content_type, payload, keep_alive
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(self, reader):
        """Parse one request; ``None`` on clean EOF; raises ``_HttpError``."""
        request_line = await asyncio.wait_for(
            reader.readline(), _IDLE_TIMEOUT
        )
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise _HttpError(431, "too many request headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise _HttpError(501, "chunked request bodies are not supported")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length header") from None
        if length < 0:
            raise _HttpError(400, "malformed Content-Length header")
        if length > self.max_body_bytes:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self, writer, status: int, content_type: str, payload: bytes,
        keep_alive: bool,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        with contextlib.suppress(ConnectionError):
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()

    # ----------------------------------------------------------- dispatch
    async def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request; returns ``(status, content_type, payload)``."""
        start = time.perf_counter()
        route = "other"
        content_type = "application/json"
        try:
            route, handler, needs_worker = self._route(method, path, body)
            if needs_worker:
                result = await self._run_on_worker(route, handler)
            else:
                result = handler()
            if isinstance(result, tuple):
                status, content_type, payload = result
            else:
                status, payload = 200, _json_bytes(result)
        except _HttpError as exc:
            status, payload = exc.status, _json_bytes({"error": exc.message})
        except ValidationError as exc:
            status = _validation_status(exc)
            payload = _json_bytes({"error": str(exc)})
        except Exception as exc:  # worker bug: report, keep serving
            status = 500
            payload = _json_bytes(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
        self._account(route, status, time.perf_counter() - start)
        return status, content_type, payload

    async def _run_on_worker(self, route: str, handler):
        """Admit ``handler`` onto the worker pool, bounded and timed."""
        if self._inflight >= self.max_queue:
            raise _HttpError(
                429,
                f"server overloaded: {self._inflight} requests already "
                f"admitted (max_queue={self.max_queue}); retry later",
            )
        self._inflight += 1
        try:
            call = self._traced(route, handler)
            return await asyncio.wait_for(
                asyncio.get_running_loop().run_in_executor(self._pool, call),
                self.request_timeout,
            )
        except (asyncio.TimeoutError, TimeoutError):
            raise _HttpError(
                503,
                f"request timed out after {self.request_timeout:g}s; "
                "the server is saturated — retry later",
            ) from None
        finally:
            self._inflight -= 1

    def _traced(self, route: str, handler):
        """Wrap worker execution in an ``http.request`` span when tracing."""
        if not trace_enabled():
            return handler

        def call():
            with span("http.request", route=route):
                return handler()

        return call

    def _route(self, method: str, path: str, body: bytes):
        """Resolve ``(route_label, handler, needs_worker)`` or raise 404/405."""
        path = path.split("?", 1)[0]
        if path == "/healthz":
            self._require(method, "GET", path)
            return "/healthz", self._do_health, False
        if path == "/metrics":
            self._require(method, "GET", path)
            return "/metrics", self._do_metrics, False
        if path == "/transform":
            self._require(method, "POST", path)
            return "/transform", lambda: self._do_transform(body), True
        if path == "/drift":
            # On the worker pool (unlike /metrics): drift_status takes the
            # service load lock, which a cold model load can hold for a
            # while — the event loop must never wait on it.
            self._require(method, "GET", path)
            return "/drift", self.service.drift_status, True
        if path == "/models":
            self._require(method, "GET", path)
            return "/models", self._do_models_list, True
        if path.startswith("/models/"):
            rest = unquote(path[len("/models/"):])
            segments = rest.split("/")
            if len(segments) == 1 and segments[0]:
                self._require(method, "GET", path)
                spec = segments[0]
                return "/models/{spec}", lambda: self._do_model_show(spec), True
            if len(segments) == 2 and segments[0] and segments[1] == "promote":
                self._require(method, "POST", path)
                name = segments[0]
                return (
                    "/models/{name}/promote",
                    lambda: self._do_promote(name, body),
                    True,
                )
        raise _HttpError(404, f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(
                405, f"{path} only accepts {expected}, not {method}"
            )

    # ----------------------------------------------------------- handlers
    def _do_health(self) -> dict:
        # Deliberately lock-free and never queued: health must answer even
        # while every worker is busy and a cold model is deserializing.
        return {
            "status": "ok",
            "inflight": self._inflight,
            "workers": self.n_workers,
            "max_queue": self.max_queue,
        }

    def _do_metrics(self):
        metrics = self.service.metrics
        metrics.set_gauge("http.inflight", float(self._inflight))
        metrics.set_gauge("http.max_queue", float(self.max_queue))
        payload = format_prometheus(metrics.snapshot()).encode("utf-8")
        return 200, "text/plain; version=0.0.4; charset=utf-8", payload

    def _do_transform(self, body: bytes) -> dict:
        payload = _parse_json_body(body)
        spec = payload.get("model")
        if not isinstance(spec, str) or not spec:
            raise _HttpError(400, "'model' must be a model spec string")
        has_row = "row" in payload
        has_rows = "rows" in payload
        if has_row == has_rows:
            raise _HttpError(
                400, "provide exactly one of 'row' (single) or 'rows' (batch)"
            )
        if has_row:
            row = _numeric_array(payload["row"], ndim=1, field="row")
            served_spec, z = self.service.transform_one_versioned(spec, row)
            return {"model": served_spec, "row": z.tolist()}
        rows = _numeric_array(payload["rows"], ndim=2, field="rows")
        served_spec, Z = self.service.transform_versioned(spec, rows)
        return {"model": served_spec, "rows": Z.tolist()}

    def _do_models_list(self) -> dict:
        records = self.service.registry.list_models()
        return {"models": [_record_json(record) for record in records]}

    def _do_model_show(self, spec: str) -> dict:
        registry = self.service.registry
        name, version = registry.resolve(spec)
        record = registry.record(name, version)
        out = _record_json(record)
        out["all_versions"] = [r.version for r in registry.versions(name)]
        return out

    def _do_promote(self, name: str, body: bytes) -> dict:
        payload = _parse_json_body(body)
        version = payload.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise _HttpError(400, "'version' must be an integer")
        record = self.service.registry.promote(name, version)
        return _record_json(record)

    # --------------------------------------------------------- accounting
    def _account(self, route: str, status: int, seconds: float) -> None:
        metrics = self.service.metrics
        metrics.inc("http.requests", route=route, status=str(status))
        metrics.observe("http.request_seconds", seconds, route=route)
