"""Versioned on-disk model registry.

The registry turns fitted estimators into *servable artifacts*: each
``register`` call persists the model through the pickle-free
:mod:`repro.io` layer and records a manifest entry carrying everything a
serving tier needs to admit or reject traffic without loading the model —
estimator class, hyper-parameters, the library ``__version__`` that wrote
it, the input schema (feature count plus protected/excluded columns), and —
for PFR-family models fitted through :class:`repro.core.SpectralFitPlan` —
the fit plan's stage digests, an auditable fingerprint of the graphs,
rescale mode and solver configuration that produced the representation.

Layout (one directory per model name)::

    <root>/
        <name>/
            manifest.json      # versions, metadata, "latest" pointer
            v0001.npz          # artifact written by repro.io.save_model
            v0002.npz

Versions are monotonically increasing integers. ``name@latest`` (or a bare
``name``) resolves through the "latest" pointer, which ``promote`` can
rewind to any existing version — the standard rollback story. Manifest
writes are atomic (tempfile + ``os.replace``) and in-process access is
serialized by a lock, so a registry instance can be shared across the
service's threads.
"""

from __future__ import annotations

import contextlib
import json
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

try:  # POSIX advisory locks guard cross-process writes; absent on Windows.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from .._version import __version__
from ..exceptions import NotFittedError, ValidationError
from ..io import _jsonable_params, atomic_write, load_model, save_model

__all__ = ["ModelRecord", "ModelRegistry"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class ModelRecord:
    """One registered model version, as described by the manifest."""

    name: str
    version: int
    model_type: str
    library_version: str
    n_features_in: int | None
    excluded_columns: list = field(default_factory=list)
    params: dict = field(default_factory=dict)
    # Stage digests of the SpectralFitPlan that produced the model (PFR
    # family): graph/laplacian/projection/solve SHA-256 fingerprints — for
    # landmark-Nyström fits additionally a "landmarks" digest covering the
    # selection — so the provenance of a servable artifact — graph
    # parameters, rescale mode, solver configuration, training inputs — is
    # auditable without loading it. Empty for estimators fitted outside
    # the plan pipeline.
    stage_digests: dict = field(default_factory=dict)
    # Landmark count of a nystrom-extension fit (None for exact fits):
    # tells a serving tier the model transforms *arbitrary* unseen rows
    # from an m-landmark solve without loading the artifact.
    landmarks: int | None = None
    created_at: float = 0.0
    path: str = ""
    is_latest: bool = False

    @property
    def spec(self) -> str:
        """The ``name@version`` string that resolves back to this record."""
        return f"{self.name}@{self.version}"

    def to_manifest_entry(self) -> dict:
        return {
            "model_type": self.model_type,
            "library_version": self.library_version,
            "n_features_in": self.n_features_in,
            "excluded_columns": list(self.excluded_columns),
            "params": self.params,
            "stage_digests": dict(self.stage_digests),
            "landmarks": self.landmarks,
            "created_at": self.created_at,
            "file": Path(self.path).name,
        }


def _stage_digests(model) -> dict:
    """Fit-plan provenance digests of a PFR-family estimator, if present.

    Estimators fitted through :class:`repro.core.SpectralFitPlan` carry a
    ``plan_digests_`` attribute (graph/laplacian/projection/solve SHA-256
    fingerprints). Anything else — baselines, models loaded from older
    artifacts — yields an empty dict.
    """
    digests = getattr(model, "plan_digests_", None)
    if not isinstance(digests, dict):
        return {}
    return {str(stage): str(value) for stage, value in digests.items()}


def _landmark_count(model) -> int | None:
    """Landmark count of a nystrom-extension fit, ``None`` for exact fits."""
    indices = getattr(model, "landmark_indices_", None)
    if indices is None:
        return None
    return int(np.asarray(indices).shape[0])


def _input_schema(model) -> tuple[int | None, list]:
    """Extract (n_features, excluded columns) from a fitted estimator.

    Transformers expose their fitted input width through the
    ``input_dim`` property (:class:`repro.ml.base.TransformerMixin`);
    other estimators fall back to the ``n_features_in_`` convention.
    Protected/excluded columns live under estimator-specific
    hyper-parameter names. Estimators without either (e.g.
    post-processors) yield ``None`` and an empty list — the service then
    skips the width check.
    """
    try:
        n_features = int(model.input_dim)
    except (AttributeError, NotFittedError):
        n_features = getattr(model, "n_features_in_", None)
        if n_features is not None:
            n_features = int(n_features)
    excluded = []
    for attr in ("exclude_columns", "protected_columns"):
        value = getattr(model, attr, None)
        if value is not None:
            excluded = [int(column) for column in list(value)]
            break
    return n_features, excluded


class ModelRegistry:
    """Register, resolve and load versioned model artifacts under ``root``.

    Parameters
    ----------
    root:
        Directory holding the registry; created on first ``register``.
    """

    def __init__(self, root):
        self.root = Path(root)
        self._lock = threading.Lock()
        # name -> (manifest inode, mtime_ns, size, latest version): lets the
        # hot-path "latest" resolution stat the manifest instead of
        # re-parsing it.
        self._latest_cache: dict[str, tuple[int, int, int, int]] = {}

    @staticmethod
    @contextlib.contextmanager
    def _dir_lock(model_dir: Path):
        """Exclusive cross-process lock on one model's directory.

        Two `repro models register` processes may race: both would read the
        same manifest, pick the same next version, and the loser's artifact
        would be silently overwritten. An advisory flock on a lock file
        serializes writers. No-op where fcntl is unavailable (in-process
        threading.Lock still applies).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(model_dir / ".lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # ---------------------------------------------------------- write API
    def register(self, name: str, model, *, promote: bool = True) -> ModelRecord:
        """Persist a fitted ``model`` as the next version of ``name``.

        Returns the new :class:`ModelRecord`. With ``promote=True`` (the
        default) the new version also becomes ``latest``; with
        ``promote=False`` the ``latest`` pointer never moves — on a brand
        new name the version then stays unpromoted (``name@latest`` will
        not resolve until :meth:`promote` is called), which is the canary
        workflow the flag exists for.
        """
        self._check_name(name)
        with self._lock:
            model_dir = self.root / name
            model_dir.mkdir(parents=True, exist_ok=True)
            with self._dir_lock(model_dir):
                manifest = self._read_manifest(model_dir)
                version = 1 + max(
                    (int(v) for v in manifest["versions"]), default=0
                )

                artifact = save_model(model, model_dir / f"v{version:04d}")
                n_features, excluded = _input_schema(model)
                record = ModelRecord(
                    name=name,
                    version=version,
                    model_type=type(model).__name__,
                    library_version=__version__,
                    n_features_in=n_features,
                    excluded_columns=excluded,
                    params=_jsonable(model.get_params()),
                    stage_digests=_stage_digests(model),
                    landmarks=_landmark_count(model),
                    created_at=time.time(),
                    path=str(artifact),
                    is_latest=promote,
                )
                manifest["versions"][str(version)] = record.to_manifest_entry()
                if promote:
                    manifest["latest"] = version
                self._write_manifest(model_dir, manifest)
            return record

    def register_from_ledger(
        self, ledger, digest: str, name: str, *, promote: bool = True
    ) -> ModelRecord:
        """Promote a run-ledger model entry straight into serving.

        ``ledger`` is a :class:`~repro.store.RunLedger` (or a store root
        path) and ``digest`` a ledger entry written with a model blob —
        e.g. by :meth:`repro.experiments.ExperimentHarness.export_model`.
        The blob is deserialized through :mod:`repro.io` and registered as
        the next version of ``name``; the resulting manifest carries the
        fit plan's stage digests exactly as a hand-registered artifact
        would, so experiment → serving promotion is this one call.
        """
        from ..store import coerce_ledger

        ledger = coerce_ledger(ledger)
        if ledger is None:
            raise ValidationError(
                "register_from_ledger needs a run ledger (directory or "
                "RunLedger)"
            )
        model = ledger.load_model(digest)
        return self.register(name, model, promote=promote)

    def promote(self, name: str, version: int) -> ModelRecord:
        """Point ``name@latest`` at an existing ``version`` (e.g. rollback)."""
        with self._lock:
            model_dir = self._existing_dir(name)
            with self._dir_lock(model_dir):
                manifest = self._read_manifest(model_dir)
                if str(version) not in manifest["versions"]:
                    raise ValidationError(
                        f"model {name!r} has no version {version}; available: "
                        f"{sorted(int(v) for v in manifest['versions'])}"
                    )
                manifest["latest"] = int(version)
                self._write_manifest(model_dir, manifest)
        return self.record(name, version)

    # ----------------------------------------------------------- read API
    def resolve(self, spec: str) -> tuple[str, int]:
        """Parse ``name``, ``name@latest`` or ``name@<version>`` into (name, version)."""
        name, _, selector = str(spec).partition("@")
        self._check_name(name)
        with self._lock:
            model_dir = self._existing_dir(name)
            if selector in ("", "latest"):
                # Latest-resolution is on the serving hot path; a stat is
                # far cheaper than re-parsing the manifest. st_ino is the
                # load-bearing part of the fingerprint: every manifest
                # write goes through os.replace of a fresh temp file (new
                # inode), whereas mtime can tie under coarse clocks and
                # size is unchanged when only the 'latest' digit flips.
                stat = (model_dir / _MANIFEST).stat()
                fingerprint = (stat.st_ino, stat.st_mtime_ns, stat.st_size)
                cached = self._latest_cache.get(name)
                if cached is None or cached[:3] != fingerprint:
                    manifest = self._read_manifest(model_dir)
                    latest = manifest["latest"]
                    self._latest_cache[name] = (*fingerprint, latest)
                else:
                    latest = cached[3]
                if latest is None:
                    raise ValidationError(
                        f"model {name!r} has no promoted version; "
                        "promote one with `repro models promote`"
                    )
                return name, int(latest)
            manifest = self._read_manifest(model_dir)
            try:
                version = int(selector)
            except ValueError:
                raise ValidationError(
                    f"bad version selector {selector!r} in {spec!r}; "
                    "use <name>, <name>@latest or <name>@<integer>"
                ) from None
            if str(version) not in manifest["versions"]:
                raise ValidationError(
                    f"model {name!r} has no version {version}; "
                    f"available: {sorted(int(v) for v in manifest['versions'])}"
                )
            return name, version

    def record(self, name: str, version: int | None = None) -> ModelRecord:
        """The :class:`ModelRecord` for ``name`` (``latest`` when version is None)."""
        if version is None:
            name, version = self.resolve(name)
        with self._lock:
            model_dir = self._existing_dir(name)
            manifest = self._read_manifest(model_dir)
            entry = manifest["versions"].get(str(version))
            if entry is None:
                raise ValidationError(f"model {name!r} has no version {version}")
            return self._entry_to_record(name, version, entry, manifest)

    def load(self, spec: str):
        """Resolve ``spec`` and deserialize the fitted estimator."""
        name, version = self.resolve(spec)
        record = self.record(name, version)
        return load_model(record.path)

    def list_models(self) -> list[ModelRecord]:
        """The latest record of every registered name, sorted by name."""
        if not self.root.is_dir():
            return []
        records = []
        for model_dir in sorted(self.root.iterdir()):
            if not (model_dir / _MANIFEST).is_file():
                continue
            with self._lock:
                manifest = self._read_manifest(model_dir)
            # Unpromoted-only names (canary registrations) still show up,
            # represented by their highest version.
            shown = manifest["latest"]
            if shown is None:
                if not manifest["versions"]:
                    continue
                shown = max(int(v) for v in manifest["versions"])
            entry = manifest["versions"][str(shown)]
            records.append(
                self._entry_to_record(model_dir.name, int(shown), entry, manifest)
            )
        return records

    def versions(self, name: str) -> list[ModelRecord]:
        """Every registered version of ``name``, ascending."""
        with self._lock:
            model_dir = self._existing_dir(name)
            manifest = self._read_manifest(model_dir)
        return [
            self._entry_to_record(name, int(v), entry, manifest)
            for v, entry in sorted(
                manifest["versions"].items(), key=lambda item: int(item[0])
            )
        ]

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_PATTERN.match(name or ""):
            raise ValidationError(
                f"bad model name {name!r}; use letters, digits, '.', '_', '-' "
                "(no '@' — it separates the version selector)"
            )

    def _existing_dir(self, name: str) -> Path:
        # May be called with self._lock held — must not re-acquire it.
        self._check_name(name)
        model_dir = self.root / name
        if not (model_dir / _MANIFEST).is_file():
            known = sorted(
                d.name for d in self.root.iterdir()
                if (d / _MANIFEST).is_file()
            ) if self.root.is_dir() else []
            raise ValidationError(
                f"unknown model {name!r}; registered models: {known or 'none'}"
            )
        return model_dir

    def _entry_to_record(
        self, name: str, version: int, entry: dict, manifest: dict
    ) -> ModelRecord:
        return ModelRecord(
            name=name,
            version=version,
            model_type=entry["model_type"],
            library_version=entry["library_version"],
            n_features_in=entry["n_features_in"],
            excluded_columns=list(entry.get("excluded_columns", [])),
            params=dict(entry.get("params", {})),
            stage_digests=dict(entry.get("stage_digests", {})),
            landmarks=entry.get("landmarks"),
            created_at=float(entry.get("created_at", 0.0)),
            path=str(self.root / name / entry["file"]),
            is_latest=manifest["latest"] == version,
        )

    @staticmethod
    def _read_manifest(model_dir: Path) -> dict:
        path = model_dir / _MANIFEST
        if not path.is_file():
            return {"latest": None, "versions": {}}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValidationError(f"corrupt registry manifest {path}: {exc}") from exc
        manifest.setdefault("latest", None)
        manifest.setdefault("versions", {})
        return manifest

    @staticmethod
    def _write_manifest(model_dir: Path, manifest: dict) -> None:
        # Atomic replace so a concurrent reader never sees a torn manifest.
        def write(handle):
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

        atomic_write(model_dir / _MANIFEST, write, mode="w")


def _jsonable(params: dict) -> dict:
    """Best-effort JSON view of hyper-parameters for the manifest.

    Delegates to the io layer's lossless conversion (ndarray -> list,
    numpy scalars -> python scalars) per key; only values that layer
    cannot serialize fall back to ``repr`` — registration must not fail
    over an exotic hyper-parameter.
    """
    out = {}
    for key, value in params.items():
        if isinstance(value, np.ndarray) and value.size > 64:
            # Manifests describe artifacts cheaply; training-set-sized
            # params (e.g. side_information) live in the artifact itself.
            out[key] = f"<array shape={value.shape}>"
            continue
        try:
            out.update(_jsonable_params({key: value}))
        except ValidationError:
            out[key] = repr(value)
    return out
