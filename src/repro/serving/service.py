"""`TransformService` — the façade tying registry, batching and cache together.

This is the object an online decision-making system would hold: it resolves
``name@version`` specs against a :class:`~repro.serving.registry.ModelRegistry`,
keeps the deserialized estimators warm in memory, routes bulk requests
through the chunked :class:`~repro.serving.batching.BatchTransformer`,
serves repeated rows straight from a per-model
:class:`~repro.serving.cache.LRUCache`, and counts everything so operators
can see hit rates and throughput.

The service is thread-safe: model loading is double-checked under a lock,
caches lock internally, and the counters are guarded separately, so many
request threads can call :meth:`transform` concurrently — the intended
deployment shape behind an HTTP or RPC front end.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..io import load_model
from ..obs.metrics import MetricsRegistry
from ..obs.trace import span, trace_enabled
from .batching import BatchTransformer, MicroBatcher
from .cache import LRUCache, matrix_digests, row_digest
from .registry import ModelRegistry, ModelRecord

__all__ = ["TransformService"]


@dataclass
class _ServedModel:
    """A loaded model plus its serving machinery."""

    record: ModelRecord
    model: object
    batcher: BatchTransformer
    cache: LRUCache
    # Drift accounting (None unless the service opted in AND the artifact
    # carries landmark coordinates): a per-row scorer rebuilt from the
    # loaded model and the windowed monitor its samples feed.
    scorer: object = None
    monitor: object = None


class TransformService:
    """Serve transforms for every model in a registry.

    Parameters
    ----------
    registry:
        A :class:`ModelRegistry` instance, or a path handed to one.
    cache_size:
        Per-model LRU capacity in rows; ``0`` disables result caching.
    chunk_size:
        Bulk requests are fed to the model at most this many rows at a
        time to bound peak memory.
    max_batch_size, max_wait:
        Defaults handed to :meth:`microbatcher` instances.
    metrics:
        The :class:`~repro.obs.MetricsRegistry` request accounting lands
        in. Defaults to a private registry per service, so two services
        in one process never mix their latency distributions; pass
        :func:`repro.obs.get_registry` to publish into the process-global
        one instead.
    drift:
        Opt-in per-request drift accounting. When True, every served
        batch has up to ``drift_sample`` rows re-scored through
        :func:`repro.lifecycle.scorer_for` (parametric map vs.
        graph-smoothing extension over the artifact's landmarks) into a
        per-model :class:`repro.lifecycle.DriftMonitor`; read the
        aggregate through :meth:`drift_status` or ``GET /drift``. Models
        whose artifacts carry no landmark coordinates serve normally but
        report no drift.
    drift_sample:
        Max rows scored per request (stride-sampled — bounds the hot-path
        overhead regardless of batch size).
    drift_window, drift_floor:
        Handed to each model's :class:`DriftMonitor`: rows scoring below
        ``drift_floor`` count as drifted, over a window of
        ``drift_window`` recent scores.
    """

    def __init__(
        self,
        registry,
        *,
        cache_size: int = 100_000,
        chunk_size: int = 8192,
        max_batch_size: int = 256,
        max_wait: float = 0.002,
        metrics: MetricsRegistry | None = None,
        drift: bool = False,
        drift_sample: int = 32,
        drift_window: int = 4096,
        drift_floor: float = 0.5,
    ):
        self.registry = (
            registry if isinstance(registry, ModelRegistry) else ModelRegistry(registry)
        )
        self.cache_size = cache_size
        self.chunk_size = chunk_size
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if drift and drift_sample < 1:
            raise ValidationError(
                f"drift_sample must be >= 1 when drift is enabled; got "
                f"{drift_sample}"
            )
        self.drift = bool(drift)
        self.drift_sample = int(drift_sample)
        self.drift_window = int(drift_window)
        self.drift_floor = float(drift_floor)
        self._models: dict[tuple[str, int], _ServedModel] = {}
        # Pinned name@version specs are immutable, so their resolution is
        # memoized; bare names / @latest re-resolve through the registry
        # every call so promotions take effect immediately. The memo dict
        # has its own lock (not _load_lock): resolution must never wait on
        # a slow model deserialization, and every read-check-write on the
        # dict happens under it so concurrent first resolutions cannot
        # interleave a torn mutation.
        self._resolved: dict[str, tuple[str, int]] = {}
        self._resolve_lock = threading.Lock()
        self._load_lock = threading.Lock()

    # ------------------------------------------------------------ serving
    def transform(self, spec: str, X) -> np.ndarray:
        """Transform a batch of rows through the model resolved from ``spec``.

        ``spec`` is ``name``, ``name@latest`` or ``name@<version>``. ``X``
        is an ``(n, m)`` matrix whose width must match the registered input
        schema. Cached rows skip the model entirely.
        """
        return self._transform_batch(self._served(spec), X)

    def transform_versioned(self, spec: str, X) -> tuple[str, np.ndarray]:
        """Like :meth:`transform`, returning ``(resolved_spec, Z)``.

        ``resolved_spec`` is the pinned ``name@version`` that actually
        produced ``Z``. The spec is resolved exactly once, so under a
        concurrent ``promote`` the label and the rows can never disagree —
        the guarantee an HTTP front end surfaces to its clients.
        """
        served = self._served(spec)
        return served.record.spec, self._transform_batch(served, X)

    def _transform_batch(self, served: _ServedModel, X) -> np.ndarray:
        X = self._checked_matrix(served.record, X)
        start = time.perf_counter()
        if trace_enabled():
            with span("serving.transform", model=served.record.spec,
                      rows=int(X.shape[0])):
                result = self._transform_cached(served, X)
        else:
            result = self._transform_cached(served, X)
        self._account(served, X.shape[0], time.perf_counter() - start)
        self._observe_drift(served, X, result)
        return result

    def transform_one(self, spec: str, row) -> np.ndarray:
        """Transform a single 1-D feature row; returns its representation.

        Cache hits take a dedicated fast path (one digest, one lookup) —
        this is the per-request unit of the heavy-tailed online workload
        the cache exists for, so its overhead is kept minimal.

        The returned row is **read-only** (hit or miss alike — mutability
        must not depend on cache state); mutating it raises ``ValueError``
        instead of corrupting the cached entry. Copy it if you need a
        scratch buffer.
        """
        return self._transform_one(self._served(spec), row)

    def transform_one_versioned(self, spec: str, row) -> tuple[str, np.ndarray]:
        """Like :meth:`transform_one`, returning ``(resolved_spec, z)``.

        One resolution covers both the label and the computation, exactly
        like :meth:`transform_versioned`.
        """
        served = self._served(spec)
        return served.record.spec, self._transform_one(served, row)

    def _transform_one(self, served: _ServedModel, row) -> np.ndarray:
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValidationError(
                f"transform_one expects a 1-D row; got ndim={row.ndim}"
            )
        expected = served.record.n_features_in
        if expected is not None and row.shape[0] != expected:
            raise ValidationError(
                f"schema mismatch for {served.record.spec}: row has "
                f"{row.shape[0]} features but the registered "
                f"{served.record.model_type} expects {expected}"
            )
        if not self.cache_size:
            result = self._transform_batch(served, row[None, :])[0]
            # Freeze the no-cache path too: the documented contract is
            # that mutability must not depend on cache state, and a row
            # that is writable only when caching is off would let callers
            # grow a mutation habit that turns into ValueError (or silent
            # cache corruption) the day a cache is configured.
            result.setflags(write=False)
            return result
        start = time.perf_counter()
        key = row_digest(row)
        hit = served.cache.get(key)
        if hit is not None:
            self._account(served, 1, time.perf_counter() - start)
            # The cache returns a read-only view; a caller that tries to
            # mutate its result gets a ValueError instead of silently
            # corrupting the entry for every later request.
            return hit
        # Miss: compute here rather than falling back to transform(),
        # which would re-resolve the spec, re-hash the row, and record a
        # second miss for the same lookup.
        result = served.batcher.transform(row[None, :])[0]
        served.cache.put(key, result)
        # Score on the miss path only: a cache hit re-serves a row that
        # was already scored (or deliberately skipped) when computed.
        self._observe_drift(served, row[None, :], result[None, :])
        # Freeze the miss result too: hits are read-only cache views, and
        # a result whose mutability depends on cache state would turn
        # caller mutation into an intermittent, cache-warmth-dependent
        # crash instead of a deterministic one.
        result.setflags(write=False)
        self._account(served, 1, time.perf_counter() - start)
        return result

    def microbatcher(self, spec: str, *, max_batch_size: int | None = None,
                     max_wait: float | None = None) -> MicroBatcher:
        """A :class:`MicroBatcher` coalescing concurrent single-row requests.

        The returned batcher feeds whole coalesced batches through this
        service (so caching and accounting still apply), passing ``spec``
        through verbatim — a bare name or ``@latest`` keeps following
        promotions exactly like direct :meth:`transform` calls, so the two
        request paths of one service can never serve different versions.
        Close it when done.
        """
        served = self._served(spec)  # resolve + load eagerly, fail fast
        batcher = MicroBatcher(
            lambda X: self.transform(spec, X),
            max_batch_size=(
                self.max_batch_size if max_batch_size is None else max_batch_size
            ),
            max_wait=self.max_wait if max_wait is None else max_wait,
            n_features=served.record.n_features_in,
        )
        return batcher

    # ------------------------------------------------------ observability
    def stats(self) -> dict:
        """Aggregate and per-model serving statistics.

        Returns ``{"models": {spec: {...}}, "totals": {...}}``. Every
        model entry carries the original counters (``requests``, ``rows``,
        ``seconds``, ``rows_per_second``, ``cache``) plus the derived
        rates computed *here, once* from the latency histogram —
        ``rows_per_sec``, ``mean_latency_s`` and a ``latency`` summary
        with deterministic p50/p90/p99 — so callers stop re-deriving them
        (each subtly differently) from raw totals. ``seconds`` is the
        histogram's Kahan-compensated sum, so it no longer drifts the way
        the old ``+=`` accumulator did under millions of tiny requests.
        """
        # Snapshot the model table under the load lock — _served()/evict()
        # mutate the dict there, so an unguarded iteration would race
        # (RuntimeError: dict changed size). The metrics registry locks
        # internally.
        with self._load_lock:
            served_models = list(self._models.values())
        snapshot = {}
        for served in served_models:
            spec = served.record.spec
            latency = self.metrics.histogram_summary(
                "serving.request_seconds", model=spec
            )
            requests = latency["count"]
            rows = int(self.metrics.counter_value("serving.rows", model=spec))
            seconds = latency["sum"]
            rows_per_sec = rows / seconds if seconds else 0.0
            snapshot[spec] = {
                "model_type": served.record.model_type,
                "requests": requests,
                "rows": rows,
                "seconds": seconds,
                # Back-compat alias of rows_per_sec (pre-obs key).
                "rows_per_second": rows_per_sec,
                "rows_per_sec": rows_per_sec,
                "mean_latency_s": latency["mean"],
                "latency": latency,
                "cache": served.cache.info(),
            }
        total_rows = sum(entry["rows"] for entry in snapshot.values())
        total_seconds = sum(entry["seconds"] for entry in snapshot.values())
        total_requests = sum(entry["requests"] for entry in snapshot.values())
        totals = {
            "requests": total_requests,
            "rows": total_rows,
            "seconds": total_seconds,
            "rows_per_sec": total_rows / total_seconds if total_seconds else 0.0,
            "mean_latency_s": (
                total_seconds / total_requests if total_requests else 0.0
            ),
            "cache_hits": sum(entry["cache"]["hits"] for entry in snapshot.values()),
            "cache_misses": sum(
                entry["cache"]["misses"] for entry in snapshot.values()
            ),
        }
        return {"models": snapshot, "totals": totals}

    def loaded_models(self) -> list[str]:
        """Specs of the models currently warm in memory."""
        with self._load_lock:
            return sorted(
                f"{name}@{version}" for name, version in self._models
            )

    def evict(self, spec: str | None = None) -> None:
        """Drop warm models (all of them when ``spec`` is None)."""
        with self._load_lock:
            if spec is None:
                self._models.clear()
                return
            name, version = self.registry.resolve(spec)
            self._models.pop((name, version), None)

    # ------------------------------------------------------------ internal
    def _resolve(self, spec: str) -> tuple[str, int]:
        """Resolve ``spec``, memoizing pinned ``name@version`` forms.

        Every read and write of the ``_resolved`` memo happens under its
        dedicated lock — the registry round-trip for a cold spec runs
        outside it (so a slow resolve never serializes the hot path), and
        two threads racing the same first resolution both compute the
        same immutable answer, with ``setdefault`` keeping the insert
        atomic.
        """
        with self._resolve_lock:
            key = self._resolved.get(spec)
        if key is not None:
            return key
        key = self.registry.resolve(spec)
        selector = str(spec).partition("@")[2]
        if selector not in ("", "latest"):
            with self._resolve_lock:
                key = self._resolved.setdefault(spec, key)
        return key

    def _served(self, spec: str) -> _ServedModel:
        key = self._resolve(spec)
        name, version = key
        served = self._models.get(key)
        if served is not None:
            return served
        with self._load_lock:
            served = self._models.get(key)
            if served is None:
                record = self.registry.record(name, version)
                # Deserialize straight from the record's artifact path —
                # registry.load() would redundantly re-resolve and re-read
                # the manifest we just consulted.
                model = load_model(record.path)
                if not callable(getattr(model, "transform", None)):
                    raise ValidationError(
                        f"{record.spec} is a {record.model_type}, which has "
                        "no transform method and cannot be served by "
                        "TransformService"
                    )
                scorer = monitor = None
                if self.drift:
                    # Lazy import: lifecycle pulls in the numeric core,
                    # which a drift-free service never needs.
                    from ..lifecycle import DriftMonitor, scorer_for

                    scorer = scorer_for(model)
                    if scorer is not None:
                        monitor = DriftMonitor(
                            window=self.drift_window,
                            floor=self.drift_floor,
                            metrics=self.metrics,
                            name=record.spec,
                        )
                served = _ServedModel(
                    record=record,
                    model=model,
                    batcher=BatchTransformer(model, chunk_size=self.chunk_size),
                    cache=LRUCache(max_size=self.cache_size),
                    scorer=scorer,
                    monitor=monitor,
                )
                self._models[key] = served
        return served

    @staticmethod
    def _checked_matrix(record: ModelRecord, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(
                f"X must be a 2-D matrix; got ndim={X.ndim} "
                "(use transform_one for single rows)"
            )
        expected = record.n_features_in
        if expected is not None and X.shape[1] != expected:
            raise ValidationError(
                f"schema mismatch for {record.spec}: X has {X.shape[1]} "
                f"features but the registered {record.model_type} expects "
                f"{expected}"
            )
        return X

    def _transform_cached(self, served: _ServedModel, X: np.ndarray) -> np.ndarray:
        if self.cache_size == 0 or X.shape[0] == 0:
            return served.batcher.transform(X)

        digests = matrix_digests(X)
        cached = served.cache.get_many(digests)

        # Unique misses only: duplicated rows inside one request are
        # computed once, exactly like repeats across requests.
        miss_rows: list[int] = []
        miss_slot: dict[bytes, int] = {}
        for index, (digest, hit) in enumerate(zip(digests, cached)):
            if hit is None and digest not in miss_slot:
                miss_slot[digest] = len(miss_rows)
                miss_rows.append(index)

        if not miss_rows:
            return np.stack(cached)

        computed = served.batcher.transform(X[miss_rows])
        # The cache copies on put, so these row views never alias the
        # `computed` array returned to the caller below, and no row pins
        # the whole batch in memory past eviction.
        served.cache.put_many(
            (digests[index], computed[slot])
            for slot, index in enumerate(miss_rows)
        )
        if len(miss_rows) == X.shape[0]:
            # Everything missed and no within-request duplicates: `computed`
            # is already in request order — skip the assembly copy.
            return computed
        width = computed.shape[1]
        out = np.empty((X.shape[0], width), dtype=computed.dtype)
        for index, (digest, hit) in enumerate(zip(digests, cached)):
            out[index] = hit if hit is not None else computed[miss_slot[digest]]
        return out

    def _account(self, served: _ServedModel, rows: int, seconds: float) -> None:
        spec = served.record.spec
        self.metrics.inc("serving.requests", model=spec)
        self.metrics.inc("serving.rows", float(rows), model=spec)
        self.metrics.observe("serving.request_seconds", seconds, model=spec)

    def _observe_drift(self, served: _ServedModel, X, Z) -> None:
        """Fold a stride-sample of a served batch into the drift monitor.

        Never raises: a scoring failure increments
        ``serving.drift_errors`` and the request succeeds regardless —
        drift accounting is observability, not a serving dependency.
        """
        monitor = served.monitor
        if monitor is None:
            return
        n = X.shape[0]
        if n == 0:
            return
        step = max(1, n // self.drift_sample)
        idx = np.arange(0, n, step)[: self.drift_sample]
        try:
            scores = served.scorer(X[idx], Z[idx])
            monitor.observe(scores)
        except Exception:
            self.metrics.inc("serving.drift_errors", model=served.record.spec)

    def drift_status(self) -> dict:
        """Per-model drift snapshots for the warm models.

        ``{"enabled": bool, "models": {spec: DriftMonitor.snapshot()}}``;
        models without landmark coordinates (no scorer) are reported with
        ``None``.
        """
        with self._load_lock:
            served_models = list(self._models.values())
        models = {}
        for served in served_models:
            spec = served.record.spec
            models[spec] = (
                served.monitor.snapshot() if served.monitor is not None else None
            )
        return {"enabled": self.drift, "models": models}
