"""Content-addressed run ledger: resumable, incremental experiment storage.

``repro.store`` persists every completed experiment cell — method
evaluations, sweep points, tuned grid scores, fitted model artifacts —
under the SHA-256 digest of a canonical task descriptor. The experiments
layer reads and writes through a :class:`RunLedger`
(``ExperimentHarness(..., store=...)``, the ``repeat_*`` functions, and
the spec runner :func:`repro.experiments.run_spec`), which makes any
interrupted sweep resumable and any finished grid extensible at the cost
of only the new cells. See the README's "Resumable experiments & the run
ledger" section for the workflow.
"""

from .digests import (
    array_digest,
    canonical_json,
    dataset_fingerprint,
    task_digest,
)
from .codecs import (
    decode_group_rates,
    decode_method_result,
    encode_group_rates,
    encode_method_result,
)
from .ledger import LedgerEntry, RunLedger, coerce_ledger, default_store_root
from .merge import MergeReport, merge_stores

__all__ = [
    "RunLedger",
    "LedgerEntry",
    "coerce_ledger",
    "default_store_root",
    "MergeReport",
    "merge_stores",
    "task_digest",
    "canonical_json",
    "array_digest",
    "dataset_fingerprint",
    "encode_method_result",
    "decode_method_result",
    "encode_group_rates",
    "decode_group_rates",
]
