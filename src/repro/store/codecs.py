"""JSON codecs for the experiment result types the ledger persists.

The ledger stores payloads as JSON, so every result type needs a lossless
round-trip: ``decode(encode(x))`` must reproduce *exactly* the numbers of
``x``. Python's ``json`` serializes floats via ``repr``, which round-trips
every finite float64 bit-for-bit (and ``NaN``/``Infinity`` are emitted in
the non-strict default mode), so float exactness is free; the work here is
the *keys* — :class:`~repro.metrics.group.GroupRates` and ``auc_by_group``
are keyed by protected-group values that may be ints, floats or strings,
and JSON object keys are always strings. Keys are therefore stored as
``[tag, value]`` pairs (``"i"``/``"f"``/``"s"``/``"b"``) so the decoded
dicts are indexable exactly like the originals (the figure drivers index
``rates.positive_rate[0]`` with an *int*).

This exactness is what lets an interrupted run, resumed from the ledger,
produce aggregates bitwise identical to an uninterrupted one.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..metrics.group import GroupRates

__all__ = [
    "encode_method_result",
    "decode_method_result",
    "encode_group_rates",
    "decode_group_rates",
]


def _tag_key(key):
    if isinstance(key, (bool, np.bool_)):
        return ["b", bool(key)]
    if isinstance(key, (int, np.integer)):
        return ["i", int(key)]
    if isinstance(key, (float, np.floating)):
        return ["f", float(key)]
    if isinstance(key, str):
        return ["s", key]
    raise ValidationError(
        f"cannot encode a {type(key).__name__} group key for the ledger"
    )


def _untag_key(tagged):
    tag, value = tagged
    if tag == "b":
        return bool(value)
    if tag == "i":
        return int(value)
    if tag == "f":
        return float(value)
    if tag == "s":
        return str(value)
    raise ValidationError(f"unknown key tag {tag!r} in ledger payload")


def _encode_keyed(mapping: dict) -> list:
    """Order-preserving ``[[tagged_key, value], ...]`` view of a dict."""
    return [[_tag_key(key), value] for key, value in mapping.items()]


def _decode_keyed(pairs: list) -> dict:
    return {_untag_key(tagged): value for tagged, value in pairs}


def encode_group_rates(rates: GroupRates) -> dict:
    """JSON-safe encoding of per-group confusion rates."""
    groups = list(rates.groups)
    return {
        "groups": [_tag_key(group) for group in groups],
        "positive_rate": [float(rates.positive_rate[g]) for g in groups],
        "fpr": [float(rates.fpr[g]) for g in groups],
        "fnr": [float(rates.fnr[g]) for g in groups],
        "counts": [int(rates.counts[g]) for g in groups],
    }


def decode_group_rates(payload: dict) -> GroupRates:
    groups = tuple(_untag_key(tagged) for tagged in payload["groups"])
    return GroupRates(
        groups=groups,
        positive_rate=dict(zip(groups, payload["positive_rate"])),
        fpr=dict(zip(groups, payload["fpr"])),
        fnr=dict(zip(groups, payload["fnr"])),
        counts=dict(zip(groups, payload["counts"])),
    )


def encode_method_result(result) -> dict:
    """JSON-safe encoding of a :class:`~repro.experiments.MethodResult`."""
    extras = {}
    for key, value in result.extras.items():
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            value = value.item()
        if not isinstance(value, (bool, int, float, str, type(None))):
            raise ValidationError(
                f"MethodResult extra {key!r} of type {type(value).__name__} "
                "cannot be persisted to the ledger"
            )
        extras[str(key)] = value
    return {
        "method": result.method,
        "dataset": result.dataset,
        "auc": float(result.auc),
        "consistency_wx": float(result.consistency_wx),
        "consistency_wf": float(result.consistency_wf),
        "rates": encode_group_rates(result.rates),
        "auc_by_group": _encode_keyed(
            {key: float(value) for key, value in result.auc_by_group.items()}
        ),
        "extras": extras,
    }


def decode_method_result(payload: dict):
    """Rebuild a :class:`~repro.experiments.MethodResult` from its encoding."""
    from ..experiments.harness import MethodResult

    return MethodResult(
        method=payload["method"],
        dataset=payload["dataset"],
        auc=payload["auc"],
        consistency_wx=payload["consistency_wx"],
        consistency_wf=payload["consistency_wf"],
        rates=decode_group_rates(payload["rates"]),
        auc_by_group=_decode_keyed(payload["auc_by_group"]),
        extras=dict(payload.get("extras", {})),
    )
