"""Canonical task digests: the content addresses of the run ledger.

Every ledger entry is keyed by the SHA-256 of a *canonical JSON* encoding
of its task descriptor — a plain dict naming everything the result is a
function of (dataset content, harness configuration, method, parameters,
seed, fold layout). Two tasks collide on a digest exactly when they would
produce the same result, which is what makes resume, incremental grid
extension, and cross-process deduplication free: the digest *is* the
cache key, and it is stable across processes, machines and sessions.

Canonicalization rules:

* dict keys are sorted, separators are fixed (no whitespace variance);
* numpy scalars collapse to their python equivalents, tuples to lists —
  the same logical task always serializes to the same bytes;
* floats round-trip through ``repr`` (exact for finite float64), so a
  γ of ``0.30000000000000004`` and ``0.3`` are — correctly — different
  tasks.

Dataset content is fingerprinted by hashing the actual arrays
(:func:`dataset_fingerprint`), not the generator arguments, so a task is
keyed by *what the data is*, never by how it was produced.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from .._version import __version__
from ..exceptions import ValidationError

__all__ = [
    "canonical_json",
    "task_digest",
    "array_digest",
    "dataset_fingerprint",
]

#: Bump when the canonicalization rules or entry layout change
#: incompatibly; it is folded into every digest so stale-format entries
#: can never be mistaken for hits.
STORE_FORMAT = 1

_DIGEST_CACHE_KEY = "_repro_content_digest"


def _plain(value):
    """Recursively convert ``value`` to canonical JSON-safe python types."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (str, type(None))):
        return value
    if isinstance(value, np.ndarray):
        return [_plain(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    raise ValidationError(
        f"cannot canonicalize a {type(value).__name__} for a task digest"
    )


def canonical_json(value) -> str:
    """Deterministic JSON text of ``value`` (sorted keys, fixed separators)."""
    return json.dumps(
        _plain(value), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def task_digest(task: dict) -> str:
    """SHA-256 hex digest of a canonical task descriptor.

    ``task`` must be a dict carrying a ``"kind"`` key (``"method_result"``,
    ``"tuned_point"``, ``"model"``, ...) — the kind namespaces the digest so
    that, e.g., a model artifact and the evaluation it came from can share
    the rest of their descriptor without colliding.
    """
    if not isinstance(task, dict) or "kind" not in task:
        raise ValidationError("a ledger task must be a dict with a 'kind' key")
    digest = hashlib.sha256()
    # The library version is part of the address: a result is a function of
    # the *code* as much as of the task, so entries written by one release
    # can never be served as hits by another — a version bump invalidates
    # the whole ledger by construction. (Numerics changes shipped without a
    # version bump are outside this contract; bump the version.)
    digest.update(f"repro-store-v{STORE_FORMAT}@{__version__}\n".encode())
    digest.update(canonical_json(task).encode("utf-8"))
    return digest.hexdigest()


def array_digest(*arrays) -> str:
    """SHA-256 hex digest of one or more numpy arrays (dtype + shape + bytes)."""
    digest = hashlib.sha256()
    for array in arrays:
        if array is None:
            digest.update(b"none")
            continue
        array = np.ascontiguousarray(array)
        digest.update(array.dtype.str.encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def dataset_fingerprint(dataset) -> dict:
    """Content-addressed fingerprint of a :class:`~repro.datasets.Dataset`.

    Hashes the arrays the experiments actually consume — features, labels,
    protected attribute, side information — plus the protected-column
    layout, so two datasets fingerprint identically iff every downstream
    result would be identical. The hash is cached in ``dataset.metadata``
    (the one mutable field of the frozen dataclass), so repeated task
    digests over the same dataset cost a dict lookup, not a re-hash.
    """
    cached = None
    if isinstance(dataset.metadata, dict):
        cached = dataset.metadata.get(_DIGEST_CACHE_KEY)
    if cached is None:
        digest = hashlib.sha256()
        digest.update(str(dataset.name).encode())
        digest.update(repr(tuple(dataset.protected_columns)).encode())
        digest.update(
            array_digest(
                dataset.X, dataset.y, dataset.s, dataset.side_information
            ).encode()
        )
        cached = digest.hexdigest()
        if isinstance(dataset.metadata, dict):
            dataset.metadata[_DIGEST_CACHE_KEY] = cached
    return {
        "name": str(dataset.name),
        "n_samples": int(dataset.n_samples),
        "sha256": cached,
    }
