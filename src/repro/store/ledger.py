"""Content-addressed, on-disk run ledger.

The ledger is the persistence substrate of every sweep, tuning grid and
cross-seed repetition: each completed cell (one
:class:`~repro.experiments.MethodResult`, one tuned grid point, one fitted
model artifact) is stored under the SHA-256 digest of its canonical task
descriptor (:func:`~repro.store.digests.task_digest`). Because the digest
is a pure function of the task, the ledger needs no coordination at all:

* **Resume is free** — an interrupted run re-derives the same digests and
  skips every cell already on disk.
* **Incremental extension is free** — adding one γ to a finished grid
  produces new digests only for the new cells.
* **Concurrent writers are safe** — two processes computing the same
  digest write byte-identical content; writes go to a temp file in the
  same directory followed by ``os.replace``, so readers never observe a
  torn entry and the losing writer's replace is a no-op.

Layout::

    <root>/
        objects/<aa>/<digest>.json   # entry: task + payload (+ metadata)
        models/<aa>/<digest>.npz     # optional fitted-estimator blob
                                     # (written by repro.io.save_model)

Entries are self-describing — there is no index file to corrupt or lock;
``ls`` walks the object tree, ``verify`` re-derives each digest from the
stored task and flags mismatches, and ``gc`` removes stray temp files,
orphaned model blobs, and (with filters) whole entries.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from .._version import __version__
from ..exceptions import ValidationError
from ..io import atomic_write, load_model, read_header, save_model
from ..obs.metrics import get_registry
from .digests import task_digest

__all__ = ["LedgerEntry", "RunLedger", "default_store_root"]

_OBJECTS = "objects"
_MODELS = "models"


def default_store_root() -> Path:
    """Ledger location: ``$REPRO_STORE`` or ``~/.repro/store``."""
    root = os.environ.get("REPRO_STORE")
    if root:
        return Path(root)
    return Path.home() / ".repro" / "store"


@dataclass(frozen=True)
class LedgerEntry:
    """One persisted run cell, as stored under its content address.

    ``parent`` links an incremental refit to the entry it was warm-started
    from (``None`` for root fits) — the refresh lineage the lifecycle
    layer records and :meth:`RunLedger.lineage` walks.
    """

    digest: str
    kind: str
    task: dict = field(repr=False)
    payload: dict = field(repr=False)
    created_at: float = 0.0
    library_version: str = ""
    has_model: bool = False
    path: str = ""
    parent: str | None = None


class RunLedger:
    """Content-addressed run ledger rooted at a directory.

    Instances are cheap (a path plus nothing else) and picklable, so a
    ledger travels to worker processes with the task state and every
    worker writes through to the same store. All operations are safe
    under concurrent readers and writers — see the module docstring.
    """

    def __init__(self, root):
        self.root = Path(root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.root)!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, RunLedger) and self.root == other.root

    # -------------------------------------------------------- observability
    #
    # Every lookup/write records into the process-global metrics registry,
    # labeled by the ledger root so two ledgers in one process keep
    # separate series. Counters live in the registry (not on the
    # instance): a RunLedger is pickled to worker processes, and in-object
    # counters would silently reset on every fan-out.

    def _account_lookup(self, hit: bool) -> None:
        name = "ledger.hits" if hit else "ledger.misses"
        get_registry().inc(name, root=str(self.root))

    def stats(self) -> dict:
        """Hit/miss and latency accounting for *this process's* use of
        this ledger root.

        Returns ``hits``/``misses``/``lookups``/``hit_rate`` (both
        :meth:`contains` and :meth:`get` count as lookups), ``gets``,
        ``puts``, ``gc_runs``, and ``read_seconds``/``write_seconds``
        histogram summaries (count/sum/mean/p50/p90/p99). Counters are
        per-process: worker processes accumulate their own (visible in a
        JSONL trace via their ``metrics`` records), so a parent asking
        after a fan-out sees the lookups *it* performed — which is exactly
        what the pre-dispatch skip logic and the CI cache-hit assertion
        measure.
        """
        registry = get_registry()
        root = str(self.root)
        hits = registry.counter_value("ledger.hits", root=root)
        misses = registry.counter_value("ledger.misses", root=root)
        lookups = hits + misses
        return {
            "hits": int(hits),
            "misses": int(misses),
            "lookups": int(lookups),
            "hit_rate": hits / lookups if lookups else 0.0,
            "gets": int(registry.counter_value("ledger.gets", root=root)),
            "puts": int(registry.counter_value("ledger.puts", root=root)),
            "gc_runs": int(registry.counter_value("ledger.gc_runs", root=root)),
            "read_seconds": registry.histogram_summary(
                "ledger.read_seconds", root=root
            ),
            "write_seconds": registry.histogram_summary(
                "ledger.write_seconds", root=root
            ),
        }

    # ------------------------------------------------------------- paths
    def _object_path(self, digest: str) -> Path:
        return self.root / _OBJECTS / digest[:2] / f"{digest}.json"

    def model_path(self, digest: str) -> Path:
        """Path of the model blob attached to ``digest`` (may not exist)."""
        return self.root / _MODELS / digest[:2] / f"{digest}.npz"

    # --------------------------------------------------------- write API
    def put(
        self, task: dict, payload: dict, *, model=None, parent: str | None = None
    ) -> LedgerEntry:
        """Persist one completed cell; returns its :class:`LedgerEntry`.

        ``task`` is the canonical descriptor (must carry ``"kind"``) that
        keys the entry; ``payload`` is the JSON-safe result. ``model``, if
        given, is a fitted estimator persisted alongside the entry through
        :func:`repro.io.save_model` — the blob a
        :meth:`~repro.serving.ModelRegistry.register_from_ledger` call
        promotes into serving. ``parent``, if given, is the digest of the
        entry this cell was incrementally derived from (a warm-started
        landmark refresh); it is stored as entry metadata — *not* part of
        the task — so the content address stays a pure function of the
        task while ``verify``/``gc`` still see the lineage.
        """
        if not isinstance(payload, dict):
            raise ValidationError(
                f"ledger payloads must be dicts; got {type(payload).__name__}"
            )
        if parent is not None and not (
            isinstance(parent, str) and len(parent) == 64
        ):
            raise ValidationError(
                f"parent must be a 64-hex entry digest; got {parent!r}"
            )
        start = time.perf_counter()
        digest = task_digest(task)
        if parent == digest:
            raise ValidationError("an entry cannot be its own parent")
        path = self._object_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        if model is not None:
            model_file = self.model_path(digest)
            model_file.parent.mkdir(parents=True, exist_ok=True)
            save_model(model, model_file)
        entry = {
            "digest": digest,
            "kind": str(task["kind"]),
            "task": task,
            "payload": payload,
            "created_at": time.time(),
            "library_version": __version__,
            "has_model": model is not None,
        }
        if parent is not None:
            entry["parent"] = parent
        text = json.dumps(entry, sort_keys=True, allow_nan=True) + "\n"
        atomic_write(path, lambda handle: handle.write(text), mode="w")
        registry = get_registry()
        root = str(self.root)
        registry.inc("ledger.puts", root=root)
        registry.observe(
            "ledger.write_seconds", time.perf_counter() - start, root=root
        )
        return self._entry_from_dict(entry, path)

    # ---------------------------------------------------------- read API
    def contains(self, digest: str) -> bool:
        """Whether an entry for ``digest`` is on disk."""
        hit = self._object_path(digest).is_file()
        self._account_lookup(hit)
        return hit

    def get(self, digest: str) -> LedgerEntry | None:
        """The entry stored under ``digest``, or ``None`` if absent."""
        path = self._object_path(digest)
        start = time.perf_counter()
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            get_registry().inc("ledger.gets", root=str(self.root))
            self._account_lookup(False)
            return None
        registry = get_registry()
        root = str(self.root)
        registry.inc("ledger.gets", root=root)
        registry.observe(
            "ledger.read_seconds", time.perf_counter() - start, root=root
        )
        self._account_lookup(True)
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"corrupt ledger entry {path}: {exc}; "
                "run `repro store verify` / `repro store gc`"
            ) from exc
        return self._entry_from_dict(data, path)

    def get_task(self, task: dict) -> LedgerEntry | None:
        """Shorthand for ``get(task_digest(task))``."""
        return self.get(task_digest(task))

    def load_model(self, digest: str):
        """Deserialize the fitted estimator attached to ``digest``."""
        entry = self.get(digest)
        if entry is None:
            raise ValidationError(f"no ledger entry for digest {digest!r}")
        if not entry.has_model:
            raise ValidationError(
                f"ledger entry {digest[:12]}… ({entry.kind}) carries no "
                "model artifact"
            )
        return load_model(self.model_path(digest))

    def ls(self, *, kind: str | None = None) -> list[LedgerEntry]:
        """Every readable entry (optionally filtered by kind), oldest first.

        Corrupt object files are skipped — they are unreadable anyway, and
        raising here would make the maintenance commands (``gc`` by kind,
        ``repro store ls``) unusable on the very ledgers that need them.
        :meth:`verify` reports them; :meth:`gc` sweeps them.
        """
        entries = []
        objects = self.root / _OBJECTS
        if not objects.is_dir():
            return []
        for path in sorted(objects.glob("??/*.json")):
            try:
                entry = self.get(path.stem)
            except ValidationError:
                continue
            if entry is None:  # pragma: no cover - racing gc
                continue
            if kind is not None and entry.kind != kind:
                continue
            entries.append(entry)
        entries.sort(key=lambda e: (e.created_at, e.digest))
        return entries

    def children(self, digest: str) -> list[LedgerEntry]:
        """Entries whose ``parent`` link points at ``digest``, oldest first."""
        return [entry for entry in self.ls() if entry.parent == digest]

    def lineage(self, digest: str) -> list[LedgerEntry]:
        """The refresh chain ending at ``digest``, root first.

        Walks ``parent`` links until a root (no parent) or a dangling link
        (parent entry gone — ``verify`` reports those) is reached. Cycles
        are impossible on honestly written ledgers (a parent must exist
        before a child references it) but a visited-set guard keeps
        hand-edited stores from hanging the walk.
        """
        chain: list[LedgerEntry] = []
        seen: set[str] = set()
        current: str | None = digest
        while current is not None and current not in seen:
            seen.add(current)
            entry = self.get(current)
            if entry is None:
                break
            chain.append(entry)
            current = entry.parent
        chain.reverse()
        return chain

    # -------------------------------------------------------- maintenance
    def gc(
        self,
        *,
        kind: str | None = None,
        older_than: float | None = None,
        dry_run: bool = False,
        orphan_grace: float = 60.0,
    ) -> dict:
        """Collect garbage; returns per-category lists of what was removed.

        Always sweeps three kinds of debris: stray ``.tmp`` files (crashed
        writers), *corrupt* object files (unreadable JSON — in a
        content-addressed store the content can always be recomputed, so
        garbage bytes have no value; this is the repair path ``verify``
        points at), and model blobs with no matching entry. Blob orphan
        checks skip blobs younger than ``orphan_grace`` seconds —
        :meth:`put` writes the blob *before* the entry, so a concurrent
        writer's fresh blob must not be mistaken for an orphan. Healthy
        entries are removed only when a filter says so: ``kind`` selects a
        payload kind, ``older_than`` an age in seconds (filters compose
        with AND). Entries that surviving children link to as ``parent``
        are never removed (reported under ``kept_parents`` instead), so a
        filter sweep cannot sever a live refresh lineage. ``dry_run``
        reports without touching disk.
        """
        get_registry().inc("ledger.gc_runs", root=str(self.root))
        removed, orphans, tmp_files, corrupt = [], [], [], []
        now = time.time()
        for directory in (self.root / _OBJECTS, self.root / _MODELS):
            if directory.is_dir():
                for tmp in directory.glob("**/.*.tmp"):
                    # The same grace that protects fresh model blobs: a
                    # young .tmp may be a concurrent atomic_write mid-
                    # flight, and unlinking it would crash that writer's
                    # os.replace. Only crashed writers' leftovers age.
                    try:
                        if now - tmp.stat().st_mtime < orphan_grace:
                            continue
                    except OSError:  # pragma: no cover - racing writer
                        continue
                    tmp_files.append(str(tmp))
                    if not dry_run:
                        tmp.unlink(missing_ok=True)
        objects = self.root / _OBJECTS
        if objects.is_dir():
            for path in sorted(objects.glob("??/*.json")):
                try:
                    json.loads(path.read_text(encoding="utf-8"))
                except (json.JSONDecodeError, OSError):
                    corrupt.append(path.stem)
                    if not dry_run:
                        path.unlink(missing_ok=True)
                        self.model_path(path.stem).unlink(missing_ok=True)
        select_entries = kind is not None or older_than is not None
        kept_parents: list[str] = []
        if select_entries:
            everything = self.ls()
            matching = [
                entry
                for entry in everything
                if (kind is None or entry.kind == kind)
                and (
                    older_than is None or now - entry.created_at >= older_than
                )
            ]
            # Lineage protection: an entry that a *surviving* child links
            # to stays — deleting it would leave the child's refresh
            # provenance dangling. (A selected parent whose whole subtree
            # is also selected goes out together with it.)
            doomed = {entry.digest for entry in matching}
            survivors_parents = {
                entry.parent
                for entry in everything
                if entry.parent is not None and entry.digest not in doomed
            }
            for entry in matching:
                if entry.digest in survivors_parents:
                    kept_parents.append(entry.digest)
                    continue
                removed.append(entry.digest)
                if not dry_run:
                    Path(entry.path).unlink(missing_ok=True)
                    self.model_path(entry.digest).unlink(missing_ok=True)
        models = self.root / _MODELS
        if models.is_dir():
            for blob in sorted(models.glob("??/*.npz")):
                if self.contains(blob.stem):
                    continue
                try:
                    age = now - blob.stat().st_mtime
                except OSError:  # pragma: no cover - racing writer
                    continue
                if age < orphan_grace:
                    continue
                orphans.append(blob.stem)
                if not dry_run:
                    blob.unlink(missing_ok=True)
        return {
            "removed": removed,
            "corrupt": corrupt,
            "orphans": orphans,
            "tmp_files": tmp_files,
            "kept_parents": kept_parents,
        }

    def counts(self) -> dict:
        """On-disk inventory: entries per kind, model blobs, corrupt files.

        Unlike :meth:`stats` (this process's hit/miss counters), this
        walks the store itself, so it answers "what is in this ledger?"
        for any process — the ``repro store stats`` subcommand and the
        merge benchmark's dedupe-rate report. Reads bypass :meth:`get` on
        purpose: taking an inventory must not skew the hit-rate counters
        the resume logic is measured by.
        """
        by_kind: dict[str, int] = {}
        entries = 0
        with_model = 0
        corrupt = 0
        objects = self.root / _OBJECTS
        if objects.is_dir():
            for path in sorted(objects.glob("??/*.json")):
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (json.JSONDecodeError, OSError):
                    corrupt += 1
                    continue
                entries += 1
                kind = str(data.get("kind", "")) if isinstance(data, dict) else ""
                by_kind[kind] = by_kind.get(kind, 0) + 1
                if isinstance(data, dict) and data.get("has_model"):
                    with_model += 1
        models = self.root / _MODELS
        model_blobs = (
            sum(1 for _ in models.glob("??/*.npz")) if models.is_dir() else 0
        )
        return {
            "entries": entries,
            "by_kind": dict(sorted(by_kind.items())),
            "with_model": with_model,
            "model_blobs": model_blobs,
            "corrupt": corrupt,
        }

    def verify(self) -> dict:
        """Integrity check; returns ``{"checked", "problems"}``.

        For every object file: the JSON must parse, the stored digest must
        match the filename, the digest re-derived from the stored task
        must match (content-address integrity), the payload must be a
        dict, and a claimed model blob must exist with a readable header.
        """
        checked = 0
        problems = []
        objects = self.root / _OBJECTS
        if not objects.is_dir():
            return {"checked": 0, "problems": []}
        for path in sorted(objects.glob("??/*.json")):
            checked += 1
            name = path.stem
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError) as exc:
                problems.append({"digest": name, "error": f"unreadable: {exc}"})
                continue
            if not isinstance(data, dict) or not isinstance(
                data.get("payload"), dict
            ):
                problems.append({"digest": name, "error": "malformed entry"})
                continue
            if data.get("digest") != name:
                problems.append(
                    {"digest": name, "error": "stored digest mismatches filename"}
                )
                continue
            try:
                derived = task_digest(data.get("task"))
            except ValidationError as exc:
                problems.append({"digest": name, "error": f"bad task: {exc}"})
                continue
            if derived != name:
                problems.append(
                    {
                        "digest": name,
                        "error": "task does not hash to the stored digest",
                    }
                )
                continue
            if data.get("has_model"):
                try:
                    read_header(self.model_path(name))
                except ValidationError as exc:
                    problems.append(
                        {"digest": name, "error": f"model blob: {exc}"}
                    )
                    continue
            parent = data.get("parent")
            if parent is not None:
                if not (isinstance(parent, str) and len(parent) == 64):
                    problems.append(
                        {"digest": name, "error": f"malformed parent link: {parent!r}"}
                    )
                elif not self._object_path(parent).is_file():
                    problems.append(
                        {
                            "digest": name,
                            "error": (
                                f"dangling parent link {parent[:12]}… "
                                "(refresh lineage broken)"
                            ),
                        }
                    )
        return {"checked": checked, "problems": problems}

    # ------------------------------------------------------------ helpers
    def _entry_from_dict(self, data: dict, path: Path) -> LedgerEntry:
        return LedgerEntry(
            digest=str(data.get("digest", path.stem)),
            kind=str(data.get("kind", "")),
            task=dict(data.get("task", {})),
            payload=dict(data.get("payload", {})),
            created_at=float(data.get("created_at", 0.0)),
            library_version=str(data.get("library_version", "")),
            has_model=bool(data.get("has_model", False)),
            path=str(path),
            parent=(
                str(data["parent"]) if data.get("parent") is not None else None
            ),
        )


def coerce_ledger(store) -> RunLedger | None:
    """Interpret a call site's ``store`` argument.

    ``None`` stays ``None`` (no persistence); a :class:`RunLedger` is used
    as-is; anything path-like opens a ledger at that directory. Anything
    else — and a path that exists but is not a directory — raises a
    :class:`ValidationError` that names the offending value, so a typo'd
    ``--store`` fails at the call site instead of deep inside a worker's
    ``mkdir``.
    """
    if store is None:
        return None
    if isinstance(store, RunLedger):
        return store
    try:
        root = Path(store)
    except TypeError as exc:
        raise ValidationError(
            f"store must be None, a RunLedger, or a directory path; got "
            f"{type(store).__name__}: {store!r}"
        ) from exc
    if root.exists() and not root.is_dir():
        raise ValidationError(
            f"store path {root} exists but is not a directory; a run ledger "
            "needs a directory root"
        )
    return RunLedger(root)
