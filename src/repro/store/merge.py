"""Union content-addressed run ledgers: the scale-out merge step.

A sharded sweep runs each shard on its own machine against its own
:class:`~repro.store.RunLedger`; :func:`merge_stores` unions those
ledgers back into one. Because every entry is keyed by the SHA-256 of its
canonical task descriptor, the union needs no coordination and no
ordering:

* **idempotent** — an entry already in the destination with the same
  content is a dedupe, not a copy, so re-merging a source (or merging two
  sources that shared cells) changes nothing;
* **conflict-detecting** — a digest present on both sides with a
  *different* task or payload can only mean non-deterministic compute or
  a corrupted store; it is reported (the destination's entry is kept,
  never silently overwritten);
* **atomic** — entries and model blobs are copied byte-for-byte through
  the same temp-file + ``os.replace`` discipline as
  :meth:`~repro.store.RunLedger.put`, blob before entry, so a reader of
  the destination never observes a torn or model-less entry;
* **lineage-preserving** — ``parent`` links ride inside the entry bytes,
  so refresh lineages survive the union (and a source's dangling parent
  is visible to a post-merge ``verify``).

Torn source files — stray ``.*.tmp`` writers and unreadable JSON — are
skipped and reported, never copied: merging must not propagate damage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ValidationError
from ..io import atomic_write
from ..obs.metrics import get_registry
from ..obs.trace import span
from .digests import canonical_json
from .ledger import _MODELS, _OBJECTS, RunLedger, coerce_ledger

__all__ = ["MergeReport", "merge_stores"]


@dataclass(frozen=True)
class MergeReport:
    """What one :func:`merge_stores` call did (or, dry-run, would do).

    Attributes
    ----------
    dest:
        Destination ledger root.
    sources:
        Source roots, in merge order (self-merges excluded).
    copied:
        Digests newly copied into the destination.
    deduped:
        Digests already present with identical content (no-ops).
    conflicts:
        ``{"digest", "source", "error"}`` dicts for digest-key collisions
        whose task/payload differ from the destination's entry — the
        destination's version is kept.
    skipped:
        ``{"path", "reason"}`` dicts for source files that were not
        mergeable (torn temp files, unreadable JSON, digest/filename
        mismatches).
    models_copied:
        Digests whose model blob was copied alongside the entry.
    missing_models:
        Digests whose entry claims a model blob the source does not have
        (the entry is still copied; ``verify`` on the destination flags
        it).
    self_merges:
        Source roots skipped because they *are* the destination.
    dry_run:
        True when nothing was written.
    """

    dest: str
    sources: list = field(default_factory=list)
    copied: list = field(default_factory=list)
    deduped: list = field(default_factory=list)
    conflicts: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    models_copied: list = field(default_factory=list)
    missing_models: list = field(default_factory=list)
    self_merges: list = field(default_factory=list)
    dry_run: bool = False

    @property
    def n_copied(self) -> int:
        return len(self.copied)

    @property
    def n_deduped(self) -> int:
        return len(self.deduped)

    @property
    def n_conflicts(self) -> int:
        return len(self.conflicts)

    @property
    def dedupe_rate(self) -> float:
        """Fraction of mergeable source entries already in the destination."""
        total = len(self.copied) + len(self.deduped)
        return len(self.deduped) / total if total else 0.0

    def to_json(self) -> dict:
        """Machine-readable summary (what ``--json`` prints)."""
        return {
            "dest": self.dest,
            "sources": list(self.sources),
            "copied": len(self.copied),
            "deduped": len(self.deduped),
            "conflicts": list(self.conflicts),
            "skipped": list(self.skipped),
            "models_copied": len(self.models_copied),
            "missing_models": list(self.missing_models),
            "self_merges": list(self.self_merges),
            "dedupe_rate": self.dedupe_rate,
            "dry_run": self.dry_run,
        }


def _entry_content_key(data: dict) -> str:
    """The merge-equality view of an entry: everything that *means* something.

    ``created_at`` is wall-clock noise and differs between two honest
    writers of the same cell; everything else — task, payload, kind,
    model flag, parent link, library version — must agree for two entries
    under one digest to be the same result.
    """
    return canonical_json(
        {
            "kind": data.get("kind"),
            "task": data.get("task"),
            "payload": data.get("payload"),
            "has_model": data.get("has_model", False),
            "parent": data.get("parent"),
            "library_version": data.get("library_version"),
        }
    )


def _same_store(a: Path, b: Path) -> bool:
    """Whether two roots name the same directory on disk."""
    try:
        return a.resolve() == b.resolve()
    except OSError:  # pragma: no cover - unresolvable exotic paths
        return a == b


def merge_stores(dest, *sources, dry_run: bool = False) -> MergeReport:
    """Union one or more source ledgers into ``dest``; returns a report.

    Arguments are ledger directories or :class:`~repro.store.RunLedger`
    instances. See the module docstring for the guarantees; in short:
    identical digests dedupe, differing payloads under one digest are
    reported as conflicts (destination wins), torn source files are
    skipped, model blobs travel with their entries, and the whole
    operation is idempotent. ``dry_run`` reports without writing.
    """
    dest_ledger = coerce_ledger(dest)
    if dest_ledger is None:
        raise ValidationError("merge needs a destination store; got None")
    if not sources:
        raise ValidationError("merge needs at least one source store")

    report = MergeReport(dest=str(dest_ledger.root), dry_run=dry_run)
    registry = get_registry()
    root_label = str(dest_ledger.root)
    with span("store.merge", dest=root_label, n_sources=len(sources)):
        for source in sources:
            src_ledger = coerce_ledger(source)
            if src_ledger is None:
                raise ValidationError(
                    "merge sources must be store paths or RunLedgers; got None"
                )
            if _same_store(src_ledger.root, dest_ledger.root):
                # Merging a store into itself is definitionally a no-op;
                # walking it would at best dedupe every entry against
                # itself and at worst copy entries over their own open
                # files.
                report.self_merges.append(str(src_ledger.root))
                continue
            report.sources.append(str(src_ledger.root))
            _merge_one(src_ledger, dest_ledger, report, dry_run=dry_run)
    registry.inc("merge.copied", len(report.copied), dest=root_label)
    registry.inc("merge.deduped", len(report.deduped), dest=root_label)
    registry.inc("merge.conflicts", len(report.conflicts), dest=root_label)
    registry.inc("merge.skipped", len(report.skipped), dest=root_label)
    registry.inc(
        "merge.models_copied", len(report.models_copied), dest=root_label
    )
    return report


def _merge_one(
    src: RunLedger, dest: RunLedger, report: MergeReport, *, dry_run: bool
) -> None:
    objects = src.root / _OBJECTS
    if not objects.is_dir():
        return

    # Anything that is not a committed object file is a crashed writer's
    # leftover; report it so the operator knows the source was dirty.
    for tmp in sorted((src.root).glob(f"{_OBJECTS}/**/.*.tmp")) + sorted(
        (src.root).glob(f"{_MODELS}/**/.*.tmp")
    ):
        report.skipped.append(
            {"path": str(tmp), "reason": "stray temp file (torn writer)"}
        )

    for path in sorted(objects.glob("??/*.json")):
        digest = path.stem
        try:
            raw = path.read_text(encoding="utf-8")
            data = json.loads(raw)
        except (OSError, json.JSONDecodeError) as exc:
            report.skipped.append(
                {"path": str(path), "reason": f"unreadable entry: {exc}"}
            )
            continue
        if not isinstance(data, dict) or data.get("digest") != digest:
            report.skipped.append(
                {
                    "path": str(path),
                    "reason": "stored digest mismatches filename",
                }
            )
            continue

        dest_path = dest._object_path(digest)
        if dest_path.is_file():
            try:
                dest_data = json.loads(dest_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # The destination's copy is torn; the source's is whole.
                # Treat it as absent and let the healthy bytes win.
                dest_data = None
            if dest_data is not None:
                if _entry_content_key(dest_data) == _entry_content_key(data):
                    report.deduped.append(digest)
                else:
                    report.conflicts.append(
                        {
                            "digest": digest,
                            "source": str(src.root),
                            "error": (
                                "digest collision with differing content; "
                                "kept the destination's entry"
                            ),
                        }
                    )
                continue

        # Model blob before entry — the same ordering RunLedger.put uses —
        # so a concurrent reader of dest never sees an entry whose claimed
        # blob is not there yet.
        if data.get("has_model"):
            src_blob = src.model_path(digest)
            if src_blob.is_file():
                if not dry_run:
                    blob_bytes = src_blob.read_bytes()
                    dest_blob = dest.model_path(digest)
                    dest_blob.parent.mkdir(parents=True, exist_ok=True)
                    atomic_write(dest_blob, lambda h: h.write(blob_bytes))
                report.models_copied.append(digest)
            else:
                report.missing_models.append(digest)
        if not dry_run:
            dest_path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write(dest_path, lambda h: h.write(raw), mode="w")
        report.copied.append(digest)
