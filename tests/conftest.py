"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import simulate_admissions, simulate_compas, simulate_crime
from repro.graphs import between_group_quantile_graph, knn_graph


@pytest.fixture
def rng():
    """Deterministic random generator for ad-hoc data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_X(rng):
    """A small well-conditioned feature matrix."""
    return rng.normal(size=(40, 5))


@pytest.fixture
def binary_problem(rng):
    """A linearly separable-ish binary classification problem."""
    n = 200
    X = rng.normal(size=(n, 4))
    w = np.array([1.5, -2.0, 0.5, 0.0])
    logits = X @ w + 0.3
    y = (logits + rng.normal(scale=0.5, size=n) > 0).astype(np.int64)
    return X, y


@pytest.fixture(scope="session")
def admissions():
    """Paper-sized synthetic admissions dataset."""
    return simulate_admissions(300, seed=7)


@pytest.fixture(scope="session")
def small_admissions():
    """Small admissions dataset for fast estimator tests."""
    return simulate_admissions(60, seed=3)


@pytest.fixture(scope="session")
def small_compas():
    """Scaled-down COMPAS simulation."""
    return simulate_compas(250, 270, seed=5)


@pytest.fixture(scope="session")
def small_crime():
    """Scaled-down Crime & Communities simulation."""
    return simulate_crime(220, 90, seed=5)


@pytest.fixture
def quantile_graph_setup(rng):
    """Scores, groups, and the resulting quantile fairness graph."""
    n = 80
    groups = np.repeat([0, 1], n // 2)
    scores = rng.random(n)
    W = between_group_quantile_graph(scores, groups, n_quantiles=4)
    return scores, groups, W


@pytest.fixture
def knn_setup(rng):
    """A feature matrix and its k-NN graph."""
    X = rng.normal(size=(50, 3))
    return X, knn_graph(X, n_neighbors=5)
