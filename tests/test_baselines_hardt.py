"""Tests for repro.baselines.hardt — equalized-odds post-processing."""

import numpy as np
import pytest

from repro.baselines import EqualizedOddsPostProcessor
from repro.exceptions import ValidationError
from repro.metrics import group_rates


@pytest.fixture
def biased_predictor(rng):
    """A base predictor with very different error profiles per group."""
    n = 4000
    s = rng.integers(0, 2, n)
    y = (rng.random(n) < 0.4 + 0.2 * s).astype(int)
    # group 0: accurate; group 1: systematically over-predicted
    flip_up = (s == 1) & (rng.random(n) < 0.35)
    noise = rng.random(n) < 0.1
    y_pred = np.where(flip_up, 1, y)
    y_pred = np.where(noise, 1 - y_pred, y_pred).astype(int)
    return y, y_pred, s


class TestFit:
    def test_mixing_probabilities_are_probabilities(self, biased_predictor):
        y, y_pred, s = biased_predictor
        post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)
        for p0, p1 in post.mix_probabilities_.values():
            assert 0.0 <= p0 <= 1.0
            assert 0.0 <= p1 <= 1.0

    def test_equalizes_training_odds_in_expectation(self, biased_predictor):
        # Compute the *expected* post-processed TPR/FPR per group from the
        # mixing probabilities; the LP constrains them to be exactly equal.
        y, y_pred, s = biased_predictor
        post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)
        expected_rates = {}
        for group in (0, 1):
            members = s == group
            p0, p1 = post.mix_probabilities_[group]
            base_tpr = y_pred[members & (y == 1)].mean()
            base_fpr = y_pred[members & (y == 0)].mean()
            tpr = p1 * base_tpr + p0 * (1 - base_tpr)
            fpr = p1 * base_fpr + p0 * (1 - base_fpr)
            expected_rates[group] = (tpr, fpr)
        assert expected_rates[0][0] == pytest.approx(expected_rates[1][0], abs=1e-6)
        assert expected_rates[0][1] == pytest.approx(expected_rates[1][1], abs=1e-6)

    def test_shrinks_empirical_odds_gap(self, biased_predictor):
        y, y_pred, s = biased_predictor
        post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)
        fair_pred = post.predict(y_pred, s)
        before = group_rates(y, y_pred, s)
        after = group_rates(y, fair_pred, s)
        assert after.gap("fpr") < before.gap("fpr")
        assert after.gap("fnr") < before.gap("fnr")

    def test_expected_error_reported(self, biased_predictor):
        y, y_pred, s = biased_predictor
        post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)
        assert 0.0 <= post.expected_error_ <= 1.0
        # randomization-averaged empirical error should be close
        errors = [
            np.mean(post.predict(y_pred, s, rng=seed) != y) for seed in range(5)
        ]
        assert np.mean(errors) == pytest.approx(post.expected_error_, abs=0.05)

    def test_three_groups_supported(self, rng):
        n = 3000
        s = rng.integers(0, 3, n)
        y = (rng.random(n) < 0.5).astype(int)
        y_pred = np.where(rng.random(n) < 0.2, 1 - y, y)
        post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)
        assert len(post.mix_probabilities_) == 3


class TestPredict:
    def test_deterministic_given_seed(self, biased_predictor):
        y, y_pred, s = biased_predictor
        post = EqualizedOddsPostProcessor(seed=42).fit(y, y_pred, s)
        np.testing.assert_array_equal(
            post.predict(y_pred, s), post.predict(y_pred, s)
        )

    def test_proba_matches_mixing_table(self, biased_predictor):
        y, y_pred, s = biased_predictor
        post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)
        proba = post.predict_proba_positive(y_pred, s)
        i = 5
        expected = post.mix_probabilities_[int(s[i])][int(y_pred[i])]
        assert proba[i] == pytest.approx(expected)

    def test_unseen_group_rejected(self, biased_predictor):
        y, y_pred, s = biased_predictor
        post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)
        with pytest.raises(ValidationError, match="unseen"):
            post.predict(y_pred[:3], np.array([0, 1, 7]))

    def test_not_fitted(self):
        with pytest.raises(ValidationError, match="not fitted"):
            EqualizedOddsPostProcessor().predict_proba_positive([0, 1], [0, 1])


class TestValidation:
    def test_single_group_rejected(self):
        with pytest.raises(ValidationError, match="two groups"):
            EqualizedOddsPostProcessor().fit([0, 1], [0, 1], [0, 0])

    def test_group_missing_class_rejected(self):
        y = np.array([1, 1, 0, 1])
        y_pred = np.array([1, 0, 0, 1])
        s = np.array([0, 0, 1, 1])
        with pytest.raises(ValidationError, match="both classes"):
            EqualizedOddsPostProcessor().fit(y, y_pred, s)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            EqualizedOddsPostProcessor().fit([0, 1], [0, 1, 1], [0, 1])
