"""Tests for repro.baselines.ifair — the iFair baseline."""

import numpy as np
import pytest
import scipy.optimize

from repro.baselines import IFair
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture
def grouped_data(rng):
    n = 100
    s = np.repeat([0, 1], n // 2)
    X = np.column_stack(
        [
            rng.normal(size=n),
            rng.normal(size=n) * 0.5,
            s.astype(float),  # the protected column
        ]
    )
    return X, s


class TestGradient:
    def test_loss_grad_matches_finite_differences(self, rng):
        X = rng.normal(size=(12, 3))
        model = IFair(n_prototypes=3, lambda_util=0.7, mu_fair=1.3, seed=0)
        pairs = np.array([(0, 1), (2, 5), (7, 11), (3, 4)])
        target = rng.random(len(pairs)) * 2.0
        theta = np.concatenate(
            [rng.normal(size=3 * 3), rng.uniform(0.5, 1.5, size=3)]
        )
        error = scipy.optimize.check_grad(
            lambda t: model._loss_grad(t, X, pairs, target)[0],
            lambda t: model._loss_grad(t, X, pairs, target)[1],
            theta,
            seed=0,
        )
        magnitude = np.linalg.norm(model._loss_grad(theta, X, pairs, target)[1])
        assert error / max(magnitude, 1.0) < 1e-5


class TestFit:
    def test_transform_preserves_dimensionality(self, grouped_data):
        X, _ = grouped_data
        Z = IFair(n_prototypes=5, max_iter=40, seed=0).fit_transform(X)
        assert Z.shape == X.shape

    def test_fit_reduces_loss(self, grouped_data):
        X, _ = grouped_data
        short = IFair(n_prototypes=5, max_iter=1, seed=0).fit(X)
        long = IFair(n_prototypes=5, max_iter=120, seed=0).fit(X)
        assert long.loss_ <= short.loss_

    def test_reconstruction_dominates_with_large_lambda(self, grouped_data):
        X, _ = grouped_data
        model = IFair(
            n_prototypes=20, lambda_util=100.0, mu_fair=0.001, max_iter=150, seed=0
        ).fit(X)
        Z = model.transform(X)
        relative_error = np.linalg.norm(Z - X) / np.linalg.norm(X)
        assert relative_error < 0.5

    def test_obfuscation_hides_protected_differences(self, grouped_data):
        # Two individuals identical in everything but the protected column
        # should map (almost) to the same transported representation.
        X, _ = grouped_data
        model = IFair(
            n_prototypes=5,
            protected_columns=[2],
            mu_fair=5.0,
            max_iter=120,
            seed=0,
        ).fit(X)
        twin_a = np.array([[0.5, -0.2, 0.0]])
        twin_b = np.array([[0.5, -0.2, 1.0]])
        transported = np.linalg.norm(
            model.transform(twin_a) - model.transform(twin_b)
        )
        assert transported < 0.5  # raw distance is exactly 1.0

    def test_feature_weights_nonnegative(self, grouped_data):
        X, _ = grouped_data
        model = IFair(n_prototypes=4, max_iter=60, seed=0).fit(X)
        assert model.feature_weights_.min() >= 0.0

    def test_out_of_sample(self, grouped_data, rng):
        X, _ = grouped_data
        model = IFair(n_prototypes=4, max_iter=40, seed=0).fit(X)
        Z = model.transform(rng.normal(size=(7, 3)))
        assert Z.shape == (7, 3)
        assert np.all(np.isfinite(Z))

    def test_pair_subsampling_activates(self, rng):
        X = rng.normal(size=(300, 2))
        model = IFair(n_prototypes=3, max_pairs=500, max_iter=5, seed=0)
        pairs = model._sample_pairs(300, np.random.default_rng(0))
        assert len(pairs) <= 500
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_all_pairs_for_small_n(self):
        model = IFair(max_pairs=100)
        pairs = model._sample_pairs(10, np.random.default_rng(0))
        assert len(pairs) == 45  # C(10, 2)

    def test_deterministic(self, grouped_data):
        X, _ = grouped_data
        a = IFair(n_prototypes=4, max_iter=30, seed=9).fit(X)
        b = IFair(n_prototypes=4, max_iter=30, seed=9).fit(X)
        np.testing.assert_allclose(a.prototypes_, b.prototypes_)


class TestValidation:
    def test_invalid_prototypes(self, grouped_data):
        X, _ = grouped_data
        with pytest.raises(ValidationError, match="n_prototypes"):
            IFair(n_prototypes=0).fit(X)

    def test_negative_weights(self, grouped_data):
        X, _ = grouped_data
        with pytest.raises(ValidationError, match="non-negative"):
            IFair(lambda_util=-1.0).fit(X)

    def test_bad_protected_columns(self, grouped_data):
        X, _ = grouped_data
        with pytest.raises(ValidationError, match="protected_columns"):
            IFair(protected_columns=[99]).fit(X)

    def test_protecting_everything_rejected(self, grouped_data):
        X, _ = grouped_data
        with pytest.raises(ValidationError, match="every feature"):
            IFair(protected_columns=[0, 1, 2]).fit(X)

    def test_invalid_max_pairs(self, grouped_data):
        X, _ = grouped_data
        with pytest.raises(ValidationError, match="max_pairs"):
            IFair(max_pairs=0).fit(X)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            IFair().transform(np.ones((2, 2)))

    def test_transform_feature_mismatch(self, grouped_data):
        X, _ = grouped_data
        model = IFair(n_prototypes=3, max_iter=10, seed=0).fit(X)
        with pytest.raises(ValidationError, match="features"):
            model.transform(np.ones((2, 5)))
