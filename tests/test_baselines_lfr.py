"""Tests for repro.baselines.lfr — Zemel et al.'s LFR baseline."""

import numpy as np
import pytest
import scipy.optimize

from repro.baselines import LFR
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture
def grouped_problem(rng):
    n = 120
    s = np.repeat([0, 1], n // 2)
    X = rng.normal(size=(n, 3)) + 0.8 * s[:, None]
    y = (X[:, 0] + rng.normal(scale=0.5, size=n) > 0.4).astype(int)
    return X, y, s


class TestGradient:
    def test_loss_grad_matches_finite_differences(self, rng):
        X = rng.normal(size=(15, 3))
        y = rng.integers(0, 2, 15)
        y[:2] = [0, 1]
        s = np.array([0, 1] * 7 + [0])
        model = LFR(n_prototypes=4, a_x=0.3, a_y=1.0, a_z=2.0, seed=0)
        group_masks = (s == 0, s == 1)
        theta = rng.normal(size=4 * 3 + 4)
        theta[-4:] = np.clip(theta[-4:], 0.05, 0.95)

        error = scipy.optimize.check_grad(
            lambda t: model._loss_grad(t, X, y, group_masks)[0],
            lambda t: model._loss_grad(t, X, y, group_masks)[1],
            theta,
            seed=0,
        )
        magnitude = np.linalg.norm(model._loss_grad(theta, X, y, group_masks)[1])
        assert error / max(magnitude, 1.0) < 1e-5


class TestFit:
    def test_fit_reduces_loss(self, grouped_problem):
        X, y, s = grouped_problem
        short = LFR(n_prototypes=5, max_iter=1, seed=0).fit(X, y, s=s)
        long = LFR(n_prototypes=5, max_iter=150, seed=0).fit(X, y, s=s)
        assert long.loss_ <= short.loss_

    def test_transform_shape_and_simplex(self, grouped_problem):
        X, y, s = grouped_problem
        U = LFR(n_prototypes=6, seed=0).fit(X, y, s=s).transform(X)
        assert U.shape == (len(X), 6)
        np.testing.assert_allclose(U.sum(axis=1), 1.0, atol=1e-10)
        assert U.min() >= 0.0

    def test_parity_term_mixes_groups(self, grouped_problem):
        # With a huge parity weight, per-group mean occupancies must be
        # much closer than with no parity weight.
        X, y, s = grouped_problem

        def occupancy_gap(a_z):
            model = LFR(n_prototypes=5, a_x=0.01, a_y=0.1, a_z=a_z, seed=1)
            U = model.fit(X, y, s=s).transform(X)
            return np.abs(U[s == 0].mean(axis=0) - U[s == 1].mean(axis=0)).sum()

        assert occupancy_gap(200.0) < occupancy_gap(0.0)

    def test_label_predictor_informative(self, grouped_problem):
        X, y, s = grouped_problem
        model = LFR(n_prototypes=8, a_y=2.0, a_z=1.0, seed=0).fit(X, y, s=s)
        from repro.ml import roc_auc_score

        assert roc_auc_score(y, model.predict_proba_positive(X)) > 0.6

    def test_label_weights_in_unit_interval(self, grouped_problem):
        X, y, s = grouped_problem
        model = LFR(n_prototypes=5, seed=0).fit(X, y, s=s)
        assert model.label_weights_.min() >= 0.0
        assert model.label_weights_.max() <= 1.0

    def test_out_of_sample_transform(self, grouped_problem, rng):
        X, y, s = grouped_problem
        model = LFR(n_prototypes=4, seed=0).fit(X, y, s=s)
        U = model.transform(rng.normal(size=(10, 3)))
        assert U.shape == (10, 4)

    def test_deterministic_given_seed(self, grouped_problem):
        X, y, s = grouped_problem
        a = LFR(n_prototypes=4, seed=3).fit(X, y, s=s)
        b = LFR(n_prototypes=4, seed=3).fit(X, y, s=s)
        np.testing.assert_allclose(a.prototypes_, b.prototypes_)


class TestValidation:
    def test_requires_s(self, grouped_problem):
        X, y, _ = grouped_problem
        with pytest.raises(ValidationError, match="protected"):
            LFR().fit(X, y)

    def test_requires_two_groups(self, grouped_problem):
        X, y, _ = grouped_problem
        with pytest.raises(ValidationError, match="two groups"):
            LFR().fit(X, y, s=np.zeros(len(y)))

    def test_negative_weights_rejected(self, grouped_problem):
        X, y, s = grouped_problem
        with pytest.raises(ValidationError, match="non-negative"):
            LFR(a_x=-1.0).fit(X, y, s=s)

    def test_invalid_prototype_count(self, grouped_problem):
        X, y, s = grouped_problem
        with pytest.raises(ValidationError, match="n_prototypes"):
            LFR(n_prototypes=0).fit(X, y, s=s)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LFR().transform(np.ones((2, 2)))

    def test_transform_feature_mismatch(self, grouped_problem):
        X, y, s = grouped_problem
        model = LFR(n_prototypes=3, seed=0).fit(X, y, s=s)
        with pytest.raises(ValidationError, match="shape"):
            model.transform(np.ones((2, 5)))
