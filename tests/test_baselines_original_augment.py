"""Tests for repro.baselines.original and repro.baselines.augment."""

import numpy as np
import pytest

from repro.baselines import MaskedRepresentation, SideInformationAugmenter
from repro.exceptions import NotFittedError, ValidationError


class TestMaskedRepresentation:
    def test_drops_protected_columns(self, rng):
        X = rng.normal(size=(10, 4))
        Z = MaskedRepresentation(protected_columns=[1, 3]).fit_transform(X)
        np.testing.assert_allclose(Z, X[:, [0, 2]])

    def test_identity_when_nothing_protected(self, rng):
        X = rng.normal(size=(5, 3))
        Z = MaskedRepresentation().fit_transform(X)
        np.testing.assert_allclose(Z, X)

    def test_duplicate_indices_collapse(self, rng):
        X = rng.normal(size=(6, 3))
        Z = MaskedRepresentation(protected_columns=[2, 2]).fit_transform(X)
        assert Z.shape == (6, 2)

    def test_out_of_range_rejected(self, rng):
        with pytest.raises(ValidationError, match="protected_columns"):
            MaskedRepresentation(protected_columns=[5]).fit(rng.normal(size=(4, 3)))

    def test_masking_everything_rejected(self, rng):
        with pytest.raises(ValidationError, match="every column"):
            MaskedRepresentation(protected_columns=[0, 1]).fit(rng.normal(size=(4, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MaskedRepresentation().transform(np.ones((2, 2)))

    def test_transform_width_mismatch(self, rng):
        masker = MaskedRepresentation(protected_columns=[0]).fit(rng.normal(size=(4, 3)))
        with pytest.raises(ValidationError, match="features"):
            masker.transform(np.ones((2, 5)))


class TestSideInformationAugmenter:
    def test_train_gets_true_values(self, rng):
        X = rng.normal(size=(8, 2))
        side = np.arange(8, dtype=float)
        augmenter = SideInformationAugmenter(side_information=side)
        Z = augmenter.fit_transform(X)
        assert Z.shape == (8, 3)
        np.testing.assert_allclose(Z[:, 2], side)

    def test_test_gets_means(self, rng):
        X = rng.normal(size=(8, 2))
        side = np.arange(8, dtype=float)
        augmenter = SideInformationAugmenter(side_information=side).fit(X)
        X_new = rng.normal(size=(5, 2))
        Z = augmenter.transform(X_new)
        np.testing.assert_allclose(Z[:, 2], side.mean())

    def test_explicit_side_at_transform(self, rng):
        X = rng.normal(size=(4, 2))
        augmenter = SideInformationAugmenter(
            side_information=np.ones(4)
        ).fit(X)
        Z = augmenter.transform(X, side_information=np.full(4, 9.0))
        np.testing.assert_allclose(Z[:, 2], 9.0)

    def test_nan_imputed_with_observed_mean(self, rng):
        X = rng.normal(size=(4, 1))
        side = np.array([1.0, np.nan, 3.0, np.nan])
        Z = SideInformationAugmenter(side_information=side).fit_transform(X)
        np.testing.assert_allclose(Z[:, 1], [1.0, 2.0, 3.0, 2.0])

    def test_multicolumn_side(self, rng):
        X = rng.normal(size=(5, 2))
        side = rng.normal(size=(5, 3))
        Z = SideInformationAugmenter(side_information=side).fit_transform(X)
        assert Z.shape == (5, 5)

    def test_missing_side_rejected(self, rng):
        with pytest.raises(ValidationError, match="side_information"):
            SideInformationAugmenter().fit(rng.normal(size=(3, 2)))

    def test_row_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError, match="rows"):
            SideInformationAugmenter(side_information=np.ones(4)).fit(
                rng.normal(size=(3, 2))
            )

    def test_fully_missing_column_rejected(self, rng):
        side = np.full(3, np.nan)
        with pytest.raises(ValidationError, match="no observed"):
            SideInformationAugmenter(side_information=side).fit(rng.normal(size=(3, 2)))

    def test_transform_shape_check(self, rng):
        X = rng.normal(size=(4, 2))
        augmenter = SideInformationAugmenter(side_information=np.ones(4)).fit(X)
        with pytest.raises(ValidationError, match="shape"):
            augmenter.transform(X, side_information=np.ones((4, 2)))
