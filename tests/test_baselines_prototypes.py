"""Tests for repro.baselines._prototypes — the shared softmax machinery.

The analytic gradients power both the LFR and iFair optimizers, so they are
checked against finite differences exactly.
"""

import numpy as np
import pytest

from repro.baselines._prototypes import assignment_backprop, soft_assignments


@pytest.fixture
def setup(rng):
    X = rng.normal(size=(7, 4))
    V = rng.normal(size=(3, 4))
    alpha = rng.uniform(0.5, 2.0, size=4)
    return X, V, alpha


class TestForward:
    def test_rows_sum_to_one(self, setup):
        X, V, alpha = setup
        U, _ = soft_assignments(X, V, alpha)
        np.testing.assert_allclose(U.sum(axis=1), 1.0, atol=1e-12)

    def test_probabilities_positive(self, setup):
        X, V, alpha = setup
        U, _ = soft_assignments(X, V, alpha)
        assert U.min() > 0.0

    def test_nearest_prototype_dominates(self, rng):
        V = np.array([[0.0, 0.0], [10.0, 10.0]])
        X = np.array([[0.1, 0.0], [9.9, 10.0]])
        U, _ = soft_assignments(X, V)
        assert U[0, 0] > 0.99
        assert U[1, 1] > 0.99

    def test_unweighted_equals_unit_weights(self, setup):
        X, V, _ = setup
        U1, D1 = soft_assignments(X, V, None)
        U2, D2 = soft_assignments(X, V, np.ones(X.shape[1]))
        np.testing.assert_allclose(U1, U2)
        np.testing.assert_allclose(D1, D2)

    def test_distances_weighted(self, setup):
        X, V, alpha = setup
        _, D = soft_assignments(X, V, alpha)
        i, k = 2, 1
        expected = np.sum(alpha * (X[i] - V[k]) ** 2)
        assert D[i, k] == pytest.approx(expected)

    def test_stable_for_far_points(self):
        # Huge distances must not overflow the softmax.
        X = np.array([[1e4, 1e4]])
        V = np.array([[0.0, 0.0], [1.0, 1.0]])
        U, _ = soft_assignments(X, V)
        assert np.all(np.isfinite(U))
        np.testing.assert_allclose(U.sum(), 1.0)


def _numeric_grad(f, theta, eps=1e-6):
    grad = np.zeros_like(theta)
    for i in range(len(theta)):
        up = theta.copy()
        up[i] += eps
        down = theta.copy()
        down[i] -= eps
        grad[i] = (f(up) - f(down)) / (2 * eps)
    return grad


class TestBackprop:
    """Check ∂L/∂V and ∂L/∂α against finite differences for a loss that
    depends on U in a generic nonlinear way."""

    @staticmethod
    def _loss_through_U(X, Vflat, alpha, K, target):
        V = Vflat.reshape(K, X.shape[1])
        U, _ = soft_assignments(X, V, alpha)
        return float(np.sum((U - target) ** 2))

    def test_grad_V(self, setup):
        X, V, alpha = setup
        rng = np.random.default_rng(7)
        target = rng.random((X.shape[0], V.shape[0]))

        U, _ = soft_assignments(X, V, alpha)
        G = 2.0 * (U - target)  # ∂L/∂U for the squared loss
        grad_V, _ = assignment_backprop(X, V, U, G, alpha)

        numeric = _numeric_grad(
            lambda th: self._loss_through_U(X, th, alpha, V.shape[0], target),
            V.ravel(),
        ).reshape(V.shape)
        np.testing.assert_allclose(grad_V, numeric, atol=1e-5)

    def test_grad_alpha(self, setup):
        X, V, alpha = setup
        rng = np.random.default_rng(8)
        target = rng.random((X.shape[0], V.shape[0]))

        U, _ = soft_assignments(X, V, alpha)
        G = 2.0 * (U - target)
        _, grad_alpha = assignment_backprop(
            X, V, U, G, alpha, want_alpha_grad=True
        )

        def loss_of_alpha(a):
            U2, _ = soft_assignments(X, V, a)
            return float(np.sum((U2 - target) ** 2))

        numeric = _numeric_grad(loss_of_alpha, alpha.copy())
        np.testing.assert_allclose(grad_alpha, numeric, atol=1e-5)

    def test_grad_V_unweighted(self, setup):
        X, V, _ = setup
        rng = np.random.default_rng(9)
        target = rng.random((X.shape[0], V.shape[0]))
        U, _ = soft_assignments(X, V)
        G = 2.0 * (U - target)
        grad_V, none = assignment_backprop(X, V, U, G, None)
        assert none is None
        numeric = _numeric_grad(
            lambda th: self._loss_through_U(
                X, th, None, V.shape[0], target
            ),
            V.ravel(),
        ).reshape(V.shape)
        np.testing.assert_allclose(grad_V, numeric, atol=1e-5)
