"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale == 1.0
        assert args.seed == 0
        assert args.output is None

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "figure2", "--scale", "0.3", "--seed", "7", "--output", "x.txt"]
        )
        assert args.scale == 0.3
        assert args.seed == 7
        assert args.output == "x.txt"


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        for i in range(1, 11):
            assert f"figure{i}" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Base-rate" in out

    def test_run_figure2_small(self, capsys):
        assert main(["run", "figure2", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Consistency(WF)" in out
        assert "pfr" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "render.txt"
        assert main(
            ["run", "table1", "--scale", "0.05", "--output", str(target)]
        ) == 0
        capsys.readouterr()
        assert "Base-rate" in target.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "figure42"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err


class TestExperiments:
    def test_sweep_table_and_json_agree(self, capsys):
        argv = ["experiments", "sweep", "synthetic", "--scale", "0.2",
                "--gammas", "0.0,0.9"]
        assert main(argv) == 0
        table = capsys.readouterr().out
        assert "gamma" in table and "0.900" in table

        assert main(argv + ["--json", "--workers", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["gamma"] for entry in payload] == [0.0, 0.9]
        # --workers must not change the numbers (determinism guarantee).
        assert all(
            f"{entry['auc']:.3f}" in table for entry in payload
        )

    def test_tune_reports_operating_points(self, capsys):
        assert main(
            ["experiments", "tune", "synthetic", "--scale", "0.2",
             "--methods", "pfr", "--splits", "3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"pfr"}
        assert {"best_params", "best_score", "results"} <= set(payload["pfr"])

    def test_repeat_reports_error_bars(self, capsys):
        assert main(
            ["experiments", "repeat", "synthetic", "--scale", "0.2",
             "--methods", "original", "--seeds", "0,1", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "original" in out and "±" in out

    def test_repeat_seed_count_form_roots_at_seed(self, capsys):
        argv = ["experiments", "repeat", "synthetic", "--scale", "0.2",
                "--methods", "original", "--seeds", "2", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["original"]["n_runs"] == 2
        # --seed is the spawn root for the derived seeds, so it must steer
        # repeat just like it steers sweep and tune.
        assert main(argv + ["--seed", "1"]) == 0
        reseeded = json.loads(capsys.readouterr().out)
        assert reseeded["original"]["n_runs"] == 2
        assert reseeded["original"]["mean"] != payload["original"]["mean"]

    def test_empty_seeds_is_a_clean_error(self, capsys):
        assert main(
            ["experiments", "repeat", "synthetic", "--scale", "0.2",
             "--seeds", ","]
        ) == 2
        assert "two seeds" in capsys.readouterr().err

    def test_invalid_workers_is_a_clean_error(self, capsys):
        assert main(
            ["experiments", "sweep", "synthetic", "--scale", "0.2",
             "--gammas", "0.5", "--workers", "lots"]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        from repro._version import __version__
        assert out.strip() == f"repro {__version__}"


class TestExperimentsList:
    def test_lists_paper_experiment_registry(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        for i in range(1, 11):
            assert f"figure{i}" in out
        assert "benchmarks/bench_fig4_synthetic_gamma.py" in out


class TestExperimentsRunSpec:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "cli-smoke",
            "datasets": [{"name": "synthetic", "scale": 0.3}],
            "methods": ["original", "pfr"],
            "gammas": [0.0, 0.5],
            "seeds": [0, 1],
            "harness": {"n_components": 2},
        }))
        return path

    def test_cold_then_warm(self, spec_file, tmp_path, capsys):
        store = tmp_path / "ledger"
        assert main([
            "experiments", "run", str(spec_file), "--store", str(store)
        ]) == 0
        out = capsys.readouterr().out
        assert "8 cells" in out and "8 computed" in out
        assert main([
            "experiments", "run", str(spec_file), "--store", str(store)
        ]) == 0
        out = capsys.readouterr().out
        assert "8 cached, 0 computed" in out
        assert "hit rate 100%" in out

    def test_json_report(self, spec_file, tmp_path, capsys):
        assert main([
            "experiments", "run", str(spec_file),
            "--store", str(tmp_path / "ledger"), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "cli-smoke"
        assert payload["total"] == 8
        assert payload["cached"] == 0
        assert len(payload["cells"]) == 8

    def test_missing_spec_errors(self, tmp_path, capsys):
        assert main([
            "experiments", "run", str(tmp_path / "nope.yaml"),
            "--store", str(tmp_path / "ledger"),
        ]) == 2
        assert "not found" in capsys.readouterr().err

    def test_sharded_run_then_merge_matches_unsharded(
        self, spec_file, tmp_path, capsys
    ):
        # The whole distributed workflow through the CLI: two shards into
        # separate stores, `store merge` unions them, a report run over
        # the merged store finds every cell cached and its aggregates
        # equal the unsharded run's.
        assert main([
            "experiments", "run", str(spec_file),
            "--store", str(tmp_path / "full"), "--json",
        ]) == 0
        full = json.loads(capsys.readouterr().out)
        shards = []
        for i in range(2):
            assert main([
                "experiments", "run", str(spec_file),
                "--store", str(tmp_path / f"s{i}"),
                "--shard", f"{i}/2", "--json",
            ]) == 0
            shards.append(json.loads(capsys.readouterr().out))
        assert shards[1]["telemetry"]["shard"] == "1/2"
        assert shards[0]["total"] + shards[1]["total"] == full["total"]
        assert main([
            "store", "merge", str(tmp_path / "merged"),
            str(tmp_path / "s0"), str(tmp_path / "s1"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "experiments", "run", str(spec_file),
            "--store", str(tmp_path / "merged"), "--json",
        ]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["cached"] == merged["total"] == full["total"]
        assert merged["aggregates"] == full["aggregates"]
        # `cached` records this run's cold/warm state, not cell identity —
        # the merged-report run is (by design) fully warm.
        def _identity(cells):
            return [
                {k: v for k, v in cell.items() if k != "cached"}
                for cell in cells
            ]
        assert _identity(merged["cells"]) == _identity(full["cells"])
        assert main([
            "store", "verify", "--store", str(tmp_path / "merged"),
        ]) == 0

    def test_invalid_shard_errors(self, spec_file, tmp_path, capsys):
        assert main([
            "experiments", "run", str(spec_file),
            "--store", str(tmp_path / "ledger"), "--shard", "2/2",
        ]) == 2
        assert "shard index" in capsys.readouterr().err


class TestSweepWithStore:
    def test_sweep_persists_and_resumes(self, tmp_path, capsys):
        store = str(tmp_path / "ledger")
        argv = ["experiments", "sweep", "synthetic", "--scale", "0.3",
                "--gammas", "0.0,0.5", "--store", store, "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        from repro.store import RunLedger
        assert len(RunLedger(store).ls(kind="method_result")) == 2
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second


class TestStoreCommands:
    @pytest.fixture
    def populated(self, tmp_path):
        from repro.store import RunLedger

        store = tmp_path / "ledger"
        ledger = RunLedger(store)
        ledger.put({"kind": "method_result", "method": "pfr",
                    "harness": {"dataset": {"name": "synthetic"}}}, {"x": 1})
        return store

    def test_ls(self, populated, capsys):
        assert main(["store", "ls", "--store", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "method_result" in out and "1 entries" in out
        assert "synthetic" in out

    def test_ls_json(self, populated, capsys):
        assert main(["store", "ls", "--store", str(populated), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kind"] == "method_result"

    def test_ls_empty(self, tmp_path, capsys):
        assert main(["store", "ls", "--store", str(tmp_path / "void")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_verify_ok(self, populated, capsys):
        assert main(["store", "verify", "--store", str(populated)]) == 0
        assert "ledger OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, populated, capsys):
        victim = next((populated / "objects").glob("??/*.json"))
        victim.write_text("{garbage")
        assert main(["store", "verify", "--store", str(populated)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_gc_dry_run(self, populated, capsys):
        assert main(["store", "gc", "--store", str(populated),
                     "--kind", "method_result", "--dry-run"]) == 0
        assert "would remove 1 entries" in capsys.readouterr().out
        assert main(["store", "ls", "--store", str(populated)]) == 0
        assert "1 entries" in capsys.readouterr().out

    def test_gc_removes(self, populated, capsys):
        assert main(["store", "gc", "--store", str(populated),
                     "--kind", "method_result"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_stats(self, populated, capsys):
        assert main(["store", "stats", "--store", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "entries:      1" in out
        assert "method_result" in out

    def test_stats_json(self, populated, capsys):
        assert main([
            "store", "stats", "--store", str(populated), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["entries"] == 1
        assert payload["counts"]["by_kind"] == {"method_result": 1}
        assert "hits" in payload["session"]

    def test_merge(self, populated, tmp_path, capsys):
        from repro.store import RunLedger

        src = tmp_path / "other"
        RunLedger(src).put({"kind": "method_result", "method": "kpfr"},
                           {"x": 2})
        dest = tmp_path / "union"
        assert main([
            "store", "merge", str(dest), str(populated), str(src),
        ]) == 0
        out = capsys.readouterr().out
        assert "copied 2 entries" in out
        assert len(RunLedger(dest).ls()) == 2
        # Idempotent re-merge through the CLI.
        assert main([
            "store", "merge", str(dest), str(populated), str(src), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["copied"] == 0
        assert payload["deduped"] == 2
        assert payload["dedupe_rate"] == 1.0

    def test_merge_conflict_exits_nonzero(self, populated, tmp_path, capsys):
        import json as _json
        from repro.store import RunLedger

        src = tmp_path / "conflicting"
        entry = RunLedger(src).put(
            {"kind": "method_result", "method": "pfr",
             "harness": {"dataset": {"name": "synthetic"}}}, {"x": 1},
        )
        path = next((src / "objects").glob("??/*.json"))
        data = _json.loads(path.read_text())
        data["payload"] = {"x": 999}
        path.write_text(_json.dumps(data))
        dest = tmp_path / "union"
        assert main([
            "store", "merge", str(dest), str(populated), str(src),
        ]) == 1
        out = capsys.readouterr().out
        assert f"CONFLICT {entry.digest[:16]}" in out


class TestRegisterFromLedger:
    def test_round_trip(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import ExperimentHarness, make_workload

        store = tmp_path / "ledger"
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2, store=store,
        )
        entry = harness.export_model("pfr", gamma=0.5)
        monkeypatch.setenv("REPRO_REGISTRY", str(tmp_path / "registry"))
        assert main([
            "models", "register", "synthetic-pfr",
            "--from-ledger", entry.digest, "--store", str(store),
        ]) == 0
        assert "registered synthetic-pfr@1" in capsys.readouterr().out
        assert main(["models", "show", "synthetic-pfr"]) == 0
        out = capsys.readouterr().out
        assert "PFR" in out and "stage_digests" in out

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["models", "register", "x"]) == 2
        assert "exactly one source" in capsys.readouterr().err
        assert main([
            "models", "register", "x", "artifact.npz",
            "--from-ledger", "f" * 64,
        ]) == 2
        assert "exactly one source" in capsys.readouterr().err


class TestLifecycleCommands:
    @pytest.fixture
    def bundle(self, tmp_path):
        import numpy as np

        from repro.graphs import knn_graph

        rng = np.random.default_rng(17)
        X = rng.normal(size=(250, 6))
        path = tmp_path / "bundle.npz"
        np.savez(
            path,
            X=X,
            w_fair=knn_graph(X, n_neighbors=6).toarray(),
            X_new=rng.normal(loc=4.0, size=(60, 6)),
        )
        return path, tmp_path

    def _flags(self, path, root):
        return [
            "--data", str(path),
            "--name", "pfr-cli",
            "--registry", str(root / "registry"),
            "--store", str(root / "ledger"),
            "--components", "3",
            "--landmarks", "64",
            "--min-rows", "16",
        ]

    def test_refresh_promotes_v2_with_lineage(self, bundle, capsys):
        path, root = bundle
        assert main(
            ["lifecycle", "refresh", *self._flags(path, root), "--json"]
        ) == 0
        event = json.loads(capsys.readouterr().out)
        assert event["refresh"] is not None
        assert event["refresh"]["version"] == 2
        assert not event["refresh"]["rolled_back"]
        assert main(
            [
                "lifecycle", "status", "pfr-cli",
                "--registry", str(root / "registry"),
                "--store", str(root / "ledger"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "v2" in out and "refreshed" in out

    def test_refresh_without_x_new_errors(self, bundle, capsys, tmp_path):
        import numpy as np

        path, root = bundle
        with np.load(path) as data:
            stripped = {k: data[k] for k in data.files if k != "X_new"}
        bad = tmp_path / "no-new.npz"
        np.savez(bad, **stripped)
        assert main(["lifecycle", "refresh", *self._flags(bad, root)]) != 0
        assert "X_new" in capsys.readouterr().err

    def test_missing_bundle_errors(self, tmp_path, capsys):
        assert main(
            ["lifecycle", "refresh", *self._flags(tmp_path / "ghost.npz", tmp_path)]
        ) != 0
        assert "not found" in capsys.readouterr().err
