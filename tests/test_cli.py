"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale == 1.0
        assert args.seed == 0
        assert args.output is None

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "figure2", "--scale", "0.3", "--seed", "7", "--output", "x.txt"]
        )
        assert args.scale == 0.3
        assert args.seed == 7
        assert args.output == "x.txt"


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        for i in range(1, 11):
            assert f"figure{i}" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Base-rate" in out

    def test_run_figure2_small(self, capsys):
        assert main(["run", "figure2", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Consistency(WF)" in out
        assert "pfr" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "render.txt"
        assert main(
            ["run", "table1", "--scale", "0.05", "--output", str(target)]
        ) == 0
        capsys.readouterr()
        assert "Base-rate" in target.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "figure42"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err


class TestExperiments:
    def test_sweep_table_and_json_agree(self, capsys):
        argv = ["experiments", "sweep", "synthetic", "--scale", "0.2",
                "--gammas", "0.0,0.9"]
        assert main(argv) == 0
        table = capsys.readouterr().out
        assert "gamma" in table and "0.900" in table

        assert main(argv + ["--json", "--workers", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["gamma"] for entry in payload] == [0.0, 0.9]
        # --workers must not change the numbers (determinism guarantee).
        assert all(
            f"{entry['auc']:.3f}" in table for entry in payload
        )

    def test_tune_reports_operating_points(self, capsys):
        assert main(
            ["experiments", "tune", "synthetic", "--scale", "0.2",
             "--methods", "pfr", "--splits", "3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"pfr"}
        assert {"best_params", "best_score", "results"} <= set(payload["pfr"])

    def test_repeat_reports_error_bars(self, capsys):
        assert main(
            ["experiments", "repeat", "synthetic", "--scale", "0.2",
             "--methods", "original", "--seeds", "0,1", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "original" in out and "±" in out

    def test_repeat_seed_count_form_roots_at_seed(self, capsys):
        argv = ["experiments", "repeat", "synthetic", "--scale", "0.2",
                "--methods", "original", "--seeds", "2", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["original"]["n_runs"] == 2
        # --seed is the spawn root for the derived seeds, so it must steer
        # repeat just like it steers sweep and tune.
        assert main(argv + ["--seed", "1"]) == 0
        reseeded = json.loads(capsys.readouterr().out)
        assert reseeded["original"]["n_runs"] == 2
        assert reseeded["original"]["mean"] != payload["original"]["mean"]

    def test_empty_seeds_is_a_clean_error(self, capsys):
        assert main(
            ["experiments", "repeat", "synthetic", "--scale", "0.2",
             "--seeds", ","]
        ) == 2
        assert "two seeds" in capsys.readouterr().err

    def test_invalid_workers_is_a_clean_error(self, capsys):
        assert main(
            ["experiments", "sweep", "synthetic", "--scale", "0.2",
             "--gammas", "0.5", "--workers", "lots"]
        ) == 2
        assert "error" in capsys.readouterr().err
