"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale == 1.0
        assert args.seed == 0
        assert args.output is None

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "figure2", "--scale", "0.3", "--seed", "7", "--output", "x.txt"]
        )
        assert args.scale == 0.3
        assert args.seed == 7
        assert args.output == "x.txt"


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        for i in range(1, 11):
            assert f"figure{i}" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Base-rate" in out

    def test_run_figure2_small(self, capsys):
        assert main(["run", "figure2", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Consistency(WF)" in out
        assert "pfr" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "render.txt"
        assert main(
            ["run", "table1", "--scale", "0.05", "--output", str(target)]
        ) == 0
        capsys.readouterr()
        assert "Base-rate" in target.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "figure42"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
